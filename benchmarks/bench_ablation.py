"""T10/T11 — regenerate the ablation tables."""


def bench_t10_t11_ablations(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T10")
    pivot = sorted(result.tables["pivot_ablation"], key=lambda r: r["log2_delta"])
    # Midpoint grows with log Δ; the ladder's growth is much smaller.
    mid_growth = pivot[-1]["midpoint_msgs_per_cycle"] - pivot[0]["midpoint_msgs_per_cycle"]
    ladder_growth = pivot[-1]["ladder_msgs_per_cycle"] - pivot[0]["ladder_msgs_per_cycle"]
    assert mid_growth > 2 * max(0.0, ladder_growth) + 5
    # The end-to-end gap widens with Δ.
    assert pivot[-1]["gap"] > pivot[0]["gap"]

    existence = sorted(result.tables["existence_ablation"], key=lambda r: r["n"])
    for row in existence:
        assert row["msgs_ipdps15"] >= row["msgs_cor33"], row
    # Each boundary re-probe costs Θ(log n): grows with n.
    assert existence[-1]["msgs_per_reprobe"] > existence[0]["msgs_per_reprobe"]
