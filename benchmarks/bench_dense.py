"""T6/F5 — regenerate the DENSEPROTOCOL scaling tables."""


def bench_t6_dense_protocol(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T6")
    table = result.tables["sigma_sweep"]
    rows = sorted(table, key=lambda r: r["sigma"])
    # Cost grows with σ ...
    assert rows[-1]["msgs_per_phase"] > rows[0]["msgs_per_phase"]
    # ... but stays under the Thm 5.8 bound shape by a wide margin.
    for row in rows:
        assert row["online_msgs"] <= 50 * row["thm58_bound"] * max(1, row["opt_lb"]), row
