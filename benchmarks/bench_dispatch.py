"""T9 — regenerate the dispatcher boundary table."""


def bench_t9_dispatcher(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T9")
    table = result.tables["dispatch"]
    eps = 0.1
    for row in table:
        if row["gap"] < 0.8 * eps:
            assert row["dense_fraction"] >= 0.9, row
        if row["gap"] > 1.2 * eps:
            assert row["dense_fraction"] <= 0.1, row
