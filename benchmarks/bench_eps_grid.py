"""T12 — regenerate the ε-sensitivity grid."""


def bench_t12_eps_grid(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T12")
    opt = result.tables["opt_phases"]
    phases = opt.column("opt_phases")
    assert phases == sorted(phases, reverse=True)  # OPT monotone in ε
    grid = result.tables["ratio_grid"]
    # For a fixed online run, a stronger (larger-ε) adversary means a
    # larger ratio: within each eps_online group ratios grow with eps_off.
    for eps_on in {r["eps_online"] for r in grid}:
        rows = sorted(
            (r for r in grid if r["eps_online"] == eps_on),
            key=lambda r: r["eps_offline"],
        )
        ratios = [r["ratio"] for r in rows]
        assert ratios == sorted(ratios)
