"""T3/F2 — regenerate the exact-monitoring comparison (Cor. 3.3 vs [6])."""


def bench_t3_exact_monitoring(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T3")
    table = result.tables["exact_sweep"]
    for row in table:
        # Cor. 3.3 never loses on the benign workload.
        assert row["msgs_cor33"] <= row["msgs_ipdps15"] * 1.02, row
    # The worst-case separation lives in the adversarial sweep: the gap
    # is substantial and grows with n (the Θ(log n) per-violation factor).
    chaser = sorted(result.tables["chaser_sweep"], key=lambda r: r["n"])
    assert chaser[-1]["gap"] >= 1.5, chaser[-1]
    assert chaser[-1]["gap"] > chaser[0]["gap"]
