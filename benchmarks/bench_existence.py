"""T1 — regenerate the EXISTENCE-protocol table and assert Lemma 3.1."""

from repro.experiments.exp_existence import PAPER_BOUND


def bench_t1_existence(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T1")
    table = result.tables["messages"]
    # Lemma 3.1: E[messages] bounded by a constant, for every (n, b).
    for row in table:
        assert row["mean_msgs"] <= PAPER_BOUND + 1.0, row
        assert row["max_rounds"] <= row["round_budget"], row
    # Flatness: the largest mean is within a small factor of the smallest.
    means = [r["mean_msgs"] for r in table if r["b"] > 0]
    assert max(means) <= 4 * min(means)
