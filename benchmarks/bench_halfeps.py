"""T7 — regenerate the Corollary 5.9 comparison."""


def bench_t7_halfeps(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T7")
    table = result.tables["halfeps_sweep"]
    for row in table:
        # One-round DENSE never costs more than the full machinery.
        assert row["halfeps_msgs"] <= row["dense_msgs"] * 1.05, row
        # Per-phase cost stays within a constant of the Cor. 5.9 shape.
        assert row["halfeps_per_phase"] <= 25 * row["cor59_bound"], row
