"""T5/F4 — regenerate the Theorem 5.1 lower-bound measurement."""


def bench_t5_lower_bound(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T5")
    table = result.tables["lower_bound"]
    for row in table:
        # No online algorithm may beat the Ω(σ/k) floor (small tolerance
        # for the first epoch's warm-up accounting).
        assert row["ratio_vs_explicit"] >= 0.85 * row["floor_sigma_over_k"], row
    # Ratio grows with σ at fixed k for the Thm 5.8 monitor.
    for k in {r["k"] for r in table}:
        rows = [r for r in table if r["k"] == k and r["algorithm"] == "approx-monitor"]
        rows.sort(key=lambda r: r["sigma"])
        assert rows[-1]["ratio_vs_explicit"] > rows[0]["ratio_vs_explicit"]
