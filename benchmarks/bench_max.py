"""T2 — regenerate the max-protocol table and assert Lemma 2.6."""


def bench_t2_max_protocol(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T2")
    table = result.tables["max_protocol"]
    # O(log n): messages per log2(n) stays within a constant band.
    per_log = [r["msgs_per_log_n"] for r in table]
    assert max(per_log) <= 3 * min(per_log)
    assert max(per_log) < 8.0
    # The top-(m) probe scales ~linearly in m.
    probe = result.tables["top_m_probe"]
    per_unit = [r["msgs_per_m_log_n"] for r in probe]
    assert max(per_unit) <= 3 * min(per_unit)
