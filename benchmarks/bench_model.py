"""T13/T14 — regenerate the model-ablation tables."""


def bench_t13_t14_model_ablations(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T13")
    pricing = result.tables["broadcast_pricing"]
    for algo in {r["algorithm"] for r in pricing}:
        rows = sorted((r for r in pricing if r["algorithm"] == algo),
                      key=lambda r: r["broadcast_cost"])
        costs = [r["total_cost"] for r in rows]
        assert costs == sorted(costs)  # dearer broadcasts, dearer bill
        assert rows[-1]["cost_vs_unit"] > 1.5  # the channel matters

    base = sorted(result.tables["existence_base"], key=lambda r: r["base"])
    rounds = [r["mean_rounds"] for r in base]
    assert rounds == sorted(rounds, reverse=True)  # rounds fall with b
    # b = 2 stays within the Lemma 3.1 message bound.
    b2 = next(r for r in base if r["base"] == 2.0)
    assert b2["mean_msgs"] <= 6.5
    # Very aggressive bases overshoot in messages.
    assert base[-1]["mean_msgs"] > b2["mean_msgs"]
