"""Micro-benchmarks of the hot paths (wall-clock, not message counts).

These time the simulator substrate itself: useful when optimizing and a
regression tripwire for the experiment harness's runtime.
"""

import numpy as np
import pytest

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.core.primitives import max_protocol, top_m_probe
from repro.model.channel import Channel
from repro.model.engine import MonitoringEngine
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.offline.opt import offline_opt
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct
from repro.streams.workloads import cluster_load, sensor_field


@pytest.fixture(scope="module")
def walk_trace():
    return make_distinct(random_walk(400, 64, high=2**16, step=256, rng=0))


@pytest.fixture(scope="module")
def dense_trace():
    return sensor_field(400, 64, 8, eps=0.1, band=24, rng=0)


def bench_existence_round(benchmark):
    nodes = NodeArray(4096)
    nodes.deliver(np.zeros(4096))
    mask = np.zeros(4096, dtype=bool)
    mask[::7] = True

    def round_():
        Channel(nodes, CostLedger(), 1).existence_any(mask)

    benchmark(round_)


def bench_max_protocol(benchmark):
    values = np.random.default_rng(0).permutation(4096).astype(float)
    nodes = NodeArray(4096)
    nodes.deliver(values)

    def find_max():
        return max_protocol(Channel(nodes, CostLedger(), 2))

    node, value = benchmark(find_max)
    assert value == 4095.0


def bench_top_m_probe(benchmark):
    values = np.random.default_rng(0).permutation(1024).astype(float)
    nodes = NodeArray(1024)
    nodes.deliver(values)

    def probe():
        return top_m_probe(Channel(nodes, CostLedger(), 3), 9)

    result = benchmark(probe)
    assert [v for _, v in result] == list(range(1023, 1014, -1))


def bench_engine_exact_monitor(benchmark, walk_trace):
    def run():
        algo = ExactTopKMonitor(8)
        return MonitoringEngine(walk_trace, algo, k=8, seed=0, record_outputs=False).run()

    result = benchmark(run)
    assert result.messages > 0


def bench_engine_dense_monitor(benchmark, dense_trace):
    def run():
        algo = ApproxTopKMonitor(8, 0.1)
        return MonitoringEngine(dense_trace, algo, k=8, eps=0.1, seed=0, record_outputs=False).run()

    result = benchmark(run)
    assert result.messages > 0


def bench_offline_opt(benchmark):
    trace = cluster_load(600, 64, rng=1)

    def compute():
        return offline_opt(trace, 8, 0.1)

    result = benchmark(compute)
    assert result.phases >= 1
