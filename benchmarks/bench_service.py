"""Throughput benchmark for the monitoring service layer.

Measures what serving costs and buys relative to the in-process engine:

- **single-session**: the same workload/algorithm run (a) in-process
  through ``MonitoringEngine.run()`` and (b) as a served session fed
  block-by-block over localhost TCP — the ratio is the protocol +
  transport overhead per step;
- **scaling**: N concurrent served sessions driven by the load
  generator at concurrency N — how aggregate steps/s behaves as the
  session count grows (on a single-CPU container this is flat by
  construction; the number is the honest baseline for bigger boxes).

Results go to ``BENCH_service.json`` at the repository root so
successive PRs leave a perf trajectory (CI runs the ``--ci`` variant on
every push; regenerate the committed file with the default sizes).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_service.py --ci       # small, fast
    PYTHONPATH=src python benchmarks/bench_service.py --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.model.engine import MonitoringEngine
from repro.service.algorithms import make_algorithm
from repro.service.cli import _spawn_server
from repro.service.client import ServiceClient
from repro.service.loadgen import run_loadgen
from repro.streams import registry

#: (T, n, k, eps, block_size) of the single-session comparison.
FULL_SINGLE = (20_000, 32, 4, 0.1, 512)
CI_SINGLE = (3_000, 32, 4, 0.1, 256)

#: (T per session, session counts) of the scaling sweep.
FULL_SCALING = (5_000, (1, 2, 4, 8))
CI_SCALING = (800, (1, 2, 4))

WORKLOAD = "zipf"
ALGORITHM = "approx-monitor"


def bench_in_process(T: int, n: int, k: int, eps: float, block: int) -> dict:
    source = registry.stream(WORKLOAD, T, n, block_size=block, rng=0)
    algorithm = make_algorithm(ALGORITHM, k, eps)
    engine = MonitoringEngine(
        source, algorithm, k=k, eps=eps, seed=1, record_outputs=False
    )
    start = time.perf_counter()
    result = engine.run()
    seconds = time.perf_counter() - start
    return {
        "T": T, "n": n, "seconds": round(seconds, 4),
        "steps_per_s": round(T / seconds),
        "messages": result.messages,
    }


def bench_served(host: str, port: int, T: int, n: int, k: int, eps: float, block: int) -> dict:
    source = registry.stream(WORKLOAD, T, n, block_size=block, rng=0)
    with ServiceClient(host, port) as client:
        sid = client.create_session(algorithm=ALGORITHM, n=n, k=k, eps=eps, seed=1)
        start = time.perf_counter()
        for chunk in source.iter_blocks():
            client.feed(sid, chunk)
        result = client.finalize(sid)
        seconds = time.perf_counter() - start
    return {
        "T": T, "n": n, "block_size": block, "seconds": round(seconds, 4),
        "steps_per_s": round(T / seconds),
        "messages": result["messages"],
    }


def bench_scaling(host: str, port: int, T: int, counts: tuple[int, ...],
                  n: int, k: int, eps: float, block: int) -> dict:
    out = {}
    for sessions in counts:
        report = asyncio.run(run_loadgen(
            host, port,
            workload=WORKLOAD, algorithm=ALGORITHM,
            sessions=sessions, concurrency=sessions,
            num_steps=T, n=n, k=k, eps=eps, block_size=block, seed=0,
        ))
        out[str(sessions)] = {
            "total_steps": report["total_steps"],
            "wall_seconds": report["wall_seconds"],
            "steps_per_s": report["steps_per_s"],
            "messages_per_step": report["messages_per_step"],
        }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_service.json",
    )
    args = parser.parse_args(argv)

    T, n, k, eps, block = CI_SINGLE if args.ci else FULL_SINGLE
    scale_T, counts = CI_SCALING if args.ci else FULL_SCALING

    t0 = time.perf_counter()
    in_process = bench_in_process(T, n, k, eps, block)

    process, port = _spawn_server()
    try:
        served = bench_served("127.0.0.1", port, T, n, k, eps, block)
        scaling = bench_scaling("127.0.0.1", port, scale_T, counts, n, k, eps, block)
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        process.wait(timeout=30)
        clean = process.returncode == 0
    except BaseException:
        process.kill()
        raise

    report = {
        "schema": 1,
        "mode": "ci" if args.ci else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workload": WORKLOAD,
        "algorithm": ALGORITHM,
        "single_session": {
            "in_process": in_process,
            "served": served,
            "serving_overhead_x": round(
                in_process["steps_per_s"] / served["steps_per_s"], 2
            ),
        },
        "scaling": scaling,
        "clean_shutdown": clean,
    }
    report["total_seconds"] = round(time.perf_counter() - t0, 2)

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({report['total_seconds']}s)")
    print(f"  in-process: {in_process['steps_per_s']:>9,} steps/s  (T={T}, n={n})")
    print(f"  served:     {served['steps_per_s']:>9,} steps/s  "
          f"({report['single_session']['serving_overhead_x']}x overhead)")
    for sessions, row in scaling.items():
        print(f"  {sessions:>2} sessions: {row['steps_per_s']:>9,} steps/s aggregate")
    print(f"  server shutdown: {'clean' if clean else 'UNCLEAN'}")
    return 0 if clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
