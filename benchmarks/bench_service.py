"""Throughput benchmark for the monitoring service layer.

Measures what serving costs and buys relative to the in-process engine:

- **single-session**: the same workload/algorithm run (a) in-process
  through ``MonitoringEngine.run()`` and (b) as a served session fed
  block-by-block over localhost TCP — the ratio is the protocol +
  transport overhead per step;
- **scaling**: N concurrent served sessions driven by the load
  generator at concurrency N — how aggregate steps/s behaves as the
  session count grows (on a single-CPU container this is flat by
  construction; the number is the honest baseline for bigger boxes);
- **shard_scaling**: the same loadgen sweep against the sharded
  supervisor (``serve --shards N``) at 1/2/4 shards — whether served
  aggregate steps/s scales with worker processes.  On a >= 4-core
  machine 4 shards should clear 2x the 1-shard aggregate at high
  session counts; on a 1-CPU container the curve is flat and the
  sweep is a correctness/no-regression gate instead.

Results go to ``BENCH_service.json`` at the repository root so
successive PRs leave a perf trajectory (CI runs the ``--ci`` variant on
every push; regenerate the committed file with the default sizes).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_service.py --ci       # small, fast
    PYTHONPATH=src python benchmarks/bench_service.py --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.model.engine import MonitoringEngine
from repro.service.algorithms import make_algorithm
from repro.service.cli import _spawn_server
from repro.service.client import ServiceClient
from repro.service.loadgen import run_loadgen
from repro.streams import registry

#: (T, n, k, eps, block_size) of the single-session comparison.  The CI
#: horizon stays large enough to amortize startup, and both modes use
#: the same n (the regression gate only compares equal-n cells).
FULL_SINGLE = (20_000, 32, 4, 0.1, 512)
CI_SINGLE = (8_000, 32, 4, 0.1, 256)

#: (T per session, session counts) of the scaling sweep.
FULL_SCALING = (5_000, (1, 2, 4, 8))
CI_SCALING = (2_500, (1, 2, 4))

#: (T per session, shard counts, session counts) of the shard sweep.
#: CI keeps T large enough that per-run fixed costs (connection setup,
#: worker warmup) amortize — the regression gate compares steps/s
#: against the committed full-size baseline, and sub-second cells are
#: too noisy to gate on.
FULL_SHARDS = (3_000, (1, 2, 4), (1, 2, 4, 8, 16))
CI_SHARDS = (2_500, (1, 2), (1, 4))

WORKLOAD = "zipf"
ALGORITHM = "approx-monitor"


def bench_in_process(T: int, n: int, k: int, eps: float, block: int) -> dict:
    # Warm numpy/engine first-call paths so the measured run is steady
    # state — small CI horizons would otherwise misreport the warmup as
    # a throughput regression.
    warm = registry.stream(WORKLOAD, 1_000, n, block_size=block, rng=9)
    MonitoringEngine(
        warm, make_algorithm(ALGORITHM, k, eps), k=k, eps=eps, seed=9,
        record_outputs=False,
    ).run()
    source = registry.stream(WORKLOAD, T, n, block_size=block, rng=0)
    algorithm = make_algorithm(ALGORITHM, k, eps)
    engine = MonitoringEngine(
        source, algorithm, k=k, eps=eps, seed=1, record_outputs=False
    )
    start = time.perf_counter()
    result = engine.run()
    seconds = time.perf_counter() - start
    return {
        "T": T, "n": n, "seconds": round(seconds, 4),
        "steps_per_s": round(T / seconds),
        "messages": result.messages,
    }


def bench_served(host: str, port: int, T: int, n: int, k: int, eps: float, block: int) -> dict:
    source = registry.stream(WORKLOAD, T, n, block_size=block, rng=0)
    with ServiceClient(host, port) as client:
        sid = client.create_session(algorithm=ALGORITHM, n=n, k=k, eps=eps, seed=1)
        start = time.perf_counter()
        for chunk in source.iter_blocks():
            client.feed(sid, chunk)
        result = client.finalize(sid)
        seconds = time.perf_counter() - start
    return {
        "T": T, "n": n, "block_size": block, "seconds": round(seconds, 4),
        "steps_per_s": round(T / seconds),
        "messages": result["messages"],
    }


def bench_scaling(host: str, port: int, T: int, counts: tuple[int, ...],
                  n: int, k: int, eps: float, block: int) -> dict:
    out = {}
    for sessions in counts:
        report = asyncio.run(run_loadgen(
            host, port,
            workload=WORKLOAD, algorithm=ALGORITHM,
            sessions=sessions, concurrency=sessions,
            num_steps=T, n=n, k=k, eps=eps, block_size=block, seed=0,
        ))
        out[str(sessions)] = {
            "total_steps": report["total_steps"],
            "wall_seconds": report["wall_seconds"],
            "steps_per_s": report["steps_per_s"],
            "messages_per_step": report["messages_per_step"],
        }
    return out


def _drain_or_kill(process, port: int) -> None:
    """Error-path teardown: graceful shutdown first, SIGKILL as last resort.

    A SIGKILLed sharded supervisor cannot reap its spawned worker
    processes (atexit never runs), so always try the shutdown op —
    it drains the whole worker fleet before the process exits.
    """
    try:
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        process.wait(timeout=15)
    except Exception:
        process.kill()
        try:
            process.wait(timeout=5)
        except Exception:
            pass


def bench_shard_scaling(T: int, shard_counts: tuple[int, ...],
                        session_counts: tuple[int, ...],
                        n: int, k: int, eps: float, block: int) -> dict:
    """Aggregate loadgen throughput per (shard count, session count)."""
    out = {}
    for shards in shard_counts:
        process, port = _spawn_server(shards)
        try:
            # Warm the freshly spawned workers (imports, allocator, numpy
            # first-call paths) so the measured runs compare across sizes;
            # 4 sessions per shard make it likely every worker gets hit
            # through the consistent-hash placement.
            asyncio.run(run_loadgen(
                "127.0.0.1", port,
                workload=WORKLOAD, algorithm=ALGORITHM,
                sessions=4 * shards, concurrency=4 * shards,
                num_steps=200, n=n, k=k, eps=eps, block_size=block, seed=1,
            ))
            per_sessions = {}
            for sessions in session_counts:
                report = asyncio.run(run_loadgen(
                    "127.0.0.1", port,
                    workload=WORKLOAD, algorithm=ALGORITHM,
                    sessions=sessions, concurrency=sessions,
                    num_steps=T, n=n, k=k, eps=eps, block_size=block, seed=0,
                ))
                per_sessions[str(sessions)] = {
                    "total_steps": report["total_steps"],
                    "wall_seconds": report["wall_seconds"],
                    "steps_per_s": report["steps_per_s"],
                    "messages_per_step": report["messages_per_step"],
                }
            with ServiceClient("127.0.0.1", port) as client:
                client.shutdown()
            process.wait(timeout=60)
            out[str(shards)] = {
                "sessions": per_sessions,
                "clean_shutdown": process.returncode == 0,
            }
        except BaseException:
            _drain_or_kill(process, port)
            raise
    return out


def _shard_speedup(shard_scaling: dict) -> float | None:
    """Aggregate steps/s of the largest vs the smallest shard count,
    at the largest common session count (the ISSUE-4 scaling gate)."""
    shard_counts = sorted(shard_scaling, key=int)
    if len(shard_counts) < 2:
        return None
    low, high = shard_counts[0], shard_counts[-1]
    sessions = sorted(shard_scaling[high]["sessions"], key=int)[-1]
    base = shard_scaling[low]["sessions"][sessions]["steps_per_s"]
    top = shard_scaling[high]["sessions"][sessions]["steps_per_s"]
    return round(top / base, 2) if base else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_service.json",
    )
    args = parser.parse_args(argv)

    T, n, k, eps, block = CI_SINGLE if args.ci else FULL_SINGLE
    scale_T, counts = CI_SCALING if args.ci else FULL_SCALING
    shard_T, shard_counts, shard_sessions = CI_SHARDS if args.ci else FULL_SHARDS

    t0 = time.perf_counter()
    in_process = bench_in_process(T, n, k, eps, block)

    process, port = _spawn_server()
    try:
        served = bench_served("127.0.0.1", port, T, n, k, eps, block)
        scaling = bench_scaling("127.0.0.1", port, scale_T, counts, n, k, eps, block)
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        process.wait(timeout=30)
        clean = process.returncode == 0
    except BaseException:
        _drain_or_kill(process, port)
        raise

    shard_scaling = bench_shard_scaling(
        shard_T, shard_counts, shard_sessions, n, k, eps, block
    )
    clean = clean and all(row["clean_shutdown"] for row in shard_scaling.values())

    report = {
        "schema": 2,
        "mode": "ci" if args.ci else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workload": WORKLOAD,
        "algorithm": ALGORITHM,
        "single_session": {
            "in_process": in_process,
            "served": served,
            "serving_overhead_x": round(
                in_process["steps_per_s"] / served["steps_per_s"], 2
            ),
        },
        "scaling": scaling,
        "shard_scaling": shard_scaling,
        "shard_speedup_x": _shard_speedup(shard_scaling),
        "clean_shutdown": clean,
    }
    report["total_seconds"] = round(time.perf_counter() - t0, 2)

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({report['total_seconds']}s)")
    print(f"  in-process: {in_process['steps_per_s']:>9,} steps/s  (T={T}, n={n})")
    print(f"  served:     {served['steps_per_s']:>9,} steps/s  "
          f"({report['single_session']['serving_overhead_x']}x overhead)")
    for sessions, row in scaling.items():
        print(f"  {sessions:>2} sessions: {row['steps_per_s']:>9,} steps/s aggregate")
    for shards, row in shard_scaling.items():
        for sessions, cell in row["sessions"].items():
            print(f"  {shards} shard(s) x {sessions:>2} sessions: "
                  f"{cell['steps_per_s']:>9,} steps/s aggregate")
    print(f"  shard speedup ({os.cpu_count()} CPUs): {report['shard_speedup_x']}x")
    print(f"  server shutdown: {'clean' if clean else 'UNCLEAN'}")
    return 0 if clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
