"""Throughput benchmark for the monitoring service layer.

Measures what serving costs and buys relative to the in-process engine:

- **wire_microbench**: raw codec throughput (MB/s of float64 payload)
  for the v1 JSON-lines encoding vs the v2 binary frames, encode and
  decode separately — the protocol tax with everything else removed;
- **single_session**: the same workload/algorithm run (a) in-process
  through ``MonitoringEngine.run()``, (b) as a served session fed
  block-by-block over localhost TCP with v1 lockstep framing, and
  (c) served over v2 binary frames with pipelined feeds — the ratios
  are the protocol + transport overhead per step, and
  ``v2_speedup_x`` / ``v2_vs_in_process_x`` are the headline wins;
- **scaling**: N concurrent served sessions driven by the load
  generator at concurrency N (v2 + pipelining, the serving default) —
  how aggregate steps/s behaves as the session count grows, with
  p50/p95/p99 request latency per cell;
- **session_batch**: the multi-tenant SessionBatch sweep — aggregate
  steps/s of 1/16/256/4096 same-cohort sessions advanced in vectorized
  ticks (in-process, feed region only), against a serial baseline that
  feeds the same 256 sessions one at a time; ``speedup_vs_serial_x``
  is the engine-layer batching win in isolation;
- **supervisor_hop**: loadgen throughput of one session against a
  single-process server vs a 1-shard supervisor, per wire version —
  ``overhead_x`` isolates what the extra supervisor hop costs, and the
  v2 pass-through (header-only routing, spliced payloads) should show
  a much smaller hop tax than v1's decode→re-encode;
- **metrics_overhead**: single-session served-v2 throughput with the
  ops plane toggled off vs instrumented under a live 1 Hz
  ``GET /metrics`` scraper — ``overhead_x`` is the telemetry tax the
  admin plane is held to (the regression gate caps it at 2%);
- **durability_overhead**: the same contrast for the write-ahead log —
  one server spawned with ``--wal-dir``, measured with WAL appends
  toggled off vs on (every acked feed flushed to the page cache before
  its ack, plus periodic checkpoints) — ``overhead_x`` is the
  durability tax of docs/OPERATIONS.md, gated by the regression check;
- **shard_scaling**: the same loadgen sweep against the sharded
  supervisor (``serve --shards N``) at 1/2/4 shards — whether served
  aggregate steps/s scales with worker processes.  On a >= 4-core
  machine 4 shards should clear 2x the 1-shard aggregate at high
  session counts; on a 1-CPU container the curve is flat and the
  sweep is a correctness/no-regression gate instead.

Results go to ``BENCH_service.json`` at the repository root so
successive PRs leave a perf trajectory (CI runs the ``--ci`` variant on
every push; regenerate the committed file with the default sizes).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_service.py --ci       # small, fast
    PYTHONPATH=src python benchmarks/bench_service.py --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import shutil
import statistics
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.model.engine import MonitoringEngine
from repro.service import wire
from repro.service.algorithms import make_algorithm
from repro.service.cli import _spawn_server
from repro.service.client import ServiceClient
from repro.service.loadgen import run_loadgen
from repro.service.session import SessionBatch, session_from_wire
from repro.streams import registry

#: (T, n, k, eps, block_size) of the single-session comparison.  The CI
#: variant shrinks only the horizon T — never n (the regression gate
#: only compares equal-n cells) and never the feed block size (the
#: per-request overhead share, and so steps/s, depends on it: a CI run
#: at a smaller block would compare against a committed full-size cell
#: measured under structurally lighter per-step protocol cost).
FULL_SINGLE = (20_000, 32, 4, 0.1, 512)
CI_SINGLE = (8_000, 32, 4, 0.1, 512)

#: (T per session, session counts) of the scaling sweep.
FULL_SCALING = (5_000, (1, 2, 4, 8))
CI_SCALING = (3_000, (1, 2, 4))

#: (T per session, shard counts, session counts) of the shard sweep.
#: CI keeps T large enough that per-run fixed costs (connection setup,
#: worker warmup) amortize — the regression gate compares steps/s
#: against the committed full-size baseline, and sub-second cells are
#: too noisy to gate on.
FULL_SHARDS = (3_000, (1, 2, 4), (1, 2, 4, 8, 16))
CI_SHARDS = (2_500, (1, 2), (1, 4))

#: T of the supervisor-hop comparison (sessions=1, per wire version).
FULL_HOP = 10_000
CI_HOP = 3_000

#: T of the metrics-overhead contrast (sessions=1, served v2 +
#: pipelining — the headline serving path) and the scrape cadence of
#: its background ``GET /metrics`` poller.  The ops-plane acceptance
#: gate reads this cell: instrumented + 1 Hz scraper must stay within
#: 2% of the uninstrumented rate.
FULL_METRICS_T = 20_000
CI_METRICS_T = 8_000
SCRAPE_INTERVAL_S = 1.0

#: Rounds of the metrics-overhead contrast.  Its gate is an absolute
#: ceiling (1.02x) rather than a 30%-drop ratio, so the estimate needs
#: tighter error bars than any other cell: a median over 5 interleaved
#: rounds is kept even in CI (each round costs well under a second at
#: the CI horizon — cheap insurance against a throttling blip landing
#: in exactly one variant of a 2-round run).
METRICS_ROUNDS = 5

#: Rounds of the durability-overhead contrast — a ratio gated by an
#: absolute ceiling, so it gets the same interleaved-median treatment
#: (and horizon) as the metrics cell.
DURABILITY_ROUNDS = 5

#: (T per session, session counts, n, k, eps, chunk) of the multi-tenant
#: SessionBatch sweep: aggregate steps/s of S same-cohort sessions
#: advanced in vectorized ticks, vs the same S sessions fed one at a
#: time on the serial path.  In-process on purpose — the cell isolates
#: the engine-layer batching win from transport and coalescing effects
#: (the scaling/shard sweeps keep covering those).  CI shrinks only T:
#: the session counts ARE the grid (per-session-count cells gate in the
#: regression check), and the chunk size shapes per-tick overhead.
FULL_BATCH = (1_000, (1, 16, 256, 4096), 8, 2, 0.1, 64)
CI_BATCH = (300, (1, 16, 256, 4096), 8, 2, 0.1, 64)

#: Session count of the serial baseline the batched sweep is judged
#: against (the acceptance gate: batched aggregate >= 5x serial here).
BATCH_BASELINE_SESSIONS = 256

#: In-flight feed window for pipelined (v2) cells.
PIPELINE = 16

#: Rounds per headline cell (single-session and supervisor-hop): each
#: round measures every variant once, interleaved, and the best round
#: per variant is reported.  Throttling (CI runners, burstable VMs)
#: only ever slows a cell down, so max-of-rounds is the denoised
#: estimate, and interleaving keeps slow windows from biasing the
#: v1-vs-v2 ratios the acceptance gates read.
FULL_ROUNDS = 3
CI_ROUNDS = 2

#: Extra rounds for the supervisor-hop contrast: overhead_x is a ratio
#: of two ~equal rates, so it needs more samples than a plain
#: throughput cell to sit stably inside host-noise bands.
FULL_HOP_ROUNDS = 5
CI_HOP_ROUNDS = 2


def _best(rows: list[dict]) -> dict:
    return max(rows, key=lambda row: row["steps_per_s"])

#: (rows, n) of the wire micro-benchmark block; shared by --ci and full
#: runs so the regression gate always finds matching cells.
WIRE_BLOCK = (512, 32)

WORKLOAD = "zipf"
ALGORITHM = "approx-monitor"


def bench_wire_microbench(repeats: int = 200) -> dict:
    """Codec-only MB/s (of raw float64 payload) for v1 vs v2 framing."""
    rows, n = WIRE_BLOCK
    block = np.random.default_rng(7).uniform(0.0, 1e6, size=(rows, n))
    mb = block.nbytes / 2**20

    def timed(fn) -> float:
        # Best of several timing batches (timeit-style): the v2 codec
        # is fast enough per call that a single scheduler blip inside
        # one batch would otherwise dominate the reported rate.
        fn()  # warm
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            best = min(best, (time.perf_counter() - start) / repeats)
        return best

    v1_line = wire.encode_line(
        {"id": 1, "op": "feed", "session": "s1", "values": wire.encode_values(block)}
    )
    v2_frame = wire.encode_frame(
        {"id": 1, "op": "feed", "session": "s1", "values": block}
    )
    v2_header = wire.parse_header(v2_frame)
    v2_meta = v2_frame[wire.HEADER_SIZE:wire.HEADER_SIZE + v2_header.meta_len]
    v2_payload = v2_frame[wire.HEADER_SIZE + v2_header.meta_len:]

    seconds = {
        "v1_encode": timed(lambda: wire.encode_line({
            "id": 1, "op": "feed", "session": "s1",
            "values": wire.encode_values(block),
        })),
        "v1_decode": timed(
            lambda: wire.decode_values(wire.decode_line(v1_line)["values"])
        ),
        "v2_encode": timed(lambda: wire.encode_frame({
            "id": 1, "op": "feed", "session": "s1", "values": block,
        })),
        "v2_decode": timed(
            lambda: wire.decode_frame(v2_header, v2_meta, v2_payload)
        ),
    }
    report = {
        "n": n,
        "rows": rows,
        "payload_bytes": block.nbytes,
        "bytes_on_wire": {"v1": len(v1_line), "v2": len(v2_frame)},
        "v1": {
            "encode_mb_per_s": round(mb / seconds["v1_encode"], 1),
            "decode_mb_per_s": round(mb / seconds["v1_decode"], 1),
        },
        "v2": {
            "encode_mb_per_s": round(mb / seconds["v2_encode"], 1),
            "decode_mb_per_s": round(mb / seconds["v2_decode"], 1),
        },
    }
    report["v2_codec_speedup_x"] = round(
        (seconds["v1_encode"] + seconds["v1_decode"])
        / (seconds["v2_encode"] + seconds["v2_decode"]),
        1,
    )
    return report


def bench_in_process(T: int, n: int, k: int, eps: float, block: int) -> dict:
    # Warm numpy/engine first-call paths so the measured run is steady
    # state — small CI horizons would otherwise misreport the warmup as
    # a throughput regression.
    warm = registry.stream(WORKLOAD, 1_000, n, block_size=block, rng=9)
    MonitoringEngine(
        warm, make_algorithm(ALGORITHM, k, eps), k=k, eps=eps, seed=9,
        record_outputs=False,
    ).run()
    source = registry.stream(WORKLOAD, T, n, block_size=block, rng=0)
    algorithm = make_algorithm(ALGORITHM, k, eps)
    engine = MonitoringEngine(
        source, algorithm, k=k, eps=eps, seed=1, record_outputs=False
    )
    start = time.perf_counter()
    result = engine.run()
    seconds = time.perf_counter() - start
    return {
        "T": T, "n": n, "seconds": round(seconds, 4),
        "steps_per_s": round(T / seconds),
        "messages": result.messages,
    }


def bench_served(host: str, port: int, T: int, n: int, k: int, eps: float,
                 block: int, *, wire_protocol: str = "v1",
                 pipeline: int = 0) -> dict:
    source = registry.stream(WORKLOAD, T, n, block_size=block, rng=0)
    with ServiceClient(
        host, port, wire_protocol=wire_protocol, window=max(pipeline, 1)
    ) as client:
        sid = client.create_session(algorithm=ALGORITHM, n=n, k=k, eps=eps, seed=1)
        start = time.perf_counter()
        if pipeline:
            for chunk in source.iter_blocks():
                client.feed_nowait(sid, chunk)
            client.flush()
        else:
            for chunk in source.iter_blocks():
                client.feed(sid, chunk)
        result = client.finalize(sid)
        seconds = time.perf_counter() - start
        negotiated = client.wire_version
    return {
        "T": T, "n": n, "block_size": block, "seconds": round(seconds, 4),
        "wire": negotiated, "pipeline": pipeline,
        "steps_per_s": round(T / seconds),
        "messages": result["messages"],
    }


def bench_scaling(host: str, port: int, T: int, counts: tuple[int, ...],
                  n: int, k: int, eps: float, block: int) -> dict:
    out = {}
    for sessions in counts:
        report = asyncio.run(run_loadgen(
            host, port,
            workload=WORKLOAD, algorithm=ALGORITHM,
            sessions=sessions, concurrency=sessions,
            num_steps=T, n=n, k=k, eps=eps, block_size=block, seed=0,
            wire_protocol="auto", pipeline=PIPELINE,
        ))
        out[str(sessions)] = {
            "total_steps": report["total_steps"],
            "wall_seconds": report["wall_seconds"],
            "steps_per_s": report["steps_per_s"],
            "messages_per_step": report["messages_per_step"],
            "latency_ms": report["latency_ms"],
        }
    return out


def bench_session_batch(
    T: int, counts: tuple[int, ...], n: int, k: int, eps: float, chunk: int
) -> dict:
    """Aggregate steps/s of S cohort sessions, batched vs fed serially.

    Every session monitors its own random-walk stream (rare jumps keep
    escalations ~1-2% of steps — the quiet-dominated regime batching is
    built for).  Generation happens outside the timed region; only the
    feed calls are on the clock, in ``chunk``-step blocks per session so
    a 4096-session cell never materializes its full horizon at once.
    The serial baseline feeds the *same* sessions the same blocks one at
    a time — the per-session results are bit-identical by the cohort
    law, so the ratio is pure dispatch overhead vs vectorization.
    """
    spec = {"algorithm": ALGORITHM, "n": n, "k": k, "eps": eps}

    def run(S: int, batched: bool) -> dict:
        sessions = [session_from_wire({**spec, "seed": i}) for i in range(S)]
        batch = SessionBatch(sessions[0].cohort_key)
        rng = np.random.default_rng(0)
        levels = np.full((S, n), 50.0)
        elapsed = 0.0
        for lo in range(0, T, chunk):
            rows = min(chunk, T - lo)
            walk = np.cumsum(rng.normal(0, 0.05, size=(rows, S, n)), axis=0)
            jumps = rng.uniform(20, 60, size=(rows, S, n))
            jumps *= rng.random((rows, S, n)) < 1 / 4096
            values = np.abs(levels[None] + walk + jumps)
            levels = values[-1]
            blocks = [np.ascontiguousarray(values[:, i, :]) for i in range(S)]
            start = time.perf_counter()
            if batched:
                batch.feed_batch(list(zip(sessions, blocks)))
            else:
                for session, rows_block in zip(sessions, blocks):
                    session.feed(rows_block, prevalidated=True)
            elapsed += time.perf_counter() - start
        total = S * T
        return {
            "n": n,
            "sessions": S,
            "total_steps": total,
            "seconds": round(elapsed, 4),
            "aggregate_steps_per_s": round(total / elapsed) if elapsed else None,
        }

    run(4, True)  # warm numpy/engine first-call paths off the clock
    cells = {str(S): run(S, True) for S in counts}
    baseline = run(BATCH_BASELINE_SESSIONS, False)
    report = {
        "T": T,
        "chunk": chunk,
        "sessions": cells,
        "serial_baseline": baseline,
    }
    batched_at_baseline = cells.get(str(BATCH_BASELINE_SESSIONS))
    if batched_at_baseline and baseline["aggregate_steps_per_s"]:
        report["speedup_vs_serial_x"] = round(
            batched_at_baseline["aggregate_steps_per_s"]
            / baseline["aggregate_steps_per_s"],
            2,
        )
    return report


def _drain_or_kill(process, port: int) -> None:
    """Error-path teardown: graceful shutdown first, SIGKILL as last resort.

    A SIGKILLed sharded supervisor cannot reap its spawned worker
    processes (atexit never runs), so always try the shutdown op —
    it drains the whole worker fleet before the process exits.
    """
    try:
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        process.wait(timeout=15)
    except Exception:
        process.kill()
        try:
            process.wait(timeout=5)
        except Exception:
            pass


def bench_supervisor_hop(
    T: int, n: int, k: int, eps: float, block: int, rounds: int
) -> dict:
    """One-session loadgen vs a single process and a 1-shard supervisor.

    The per-wire ``overhead_x`` (single-process steps/s divided by
    1-shard steps/s) is the cost of the extra supervisor hop alone —
    same worker code, same session, one more process in the path.  v1
    pays a JSON decode + re-encode per forwarded frame; v2 routes on
    the fixed header and splices the payload bytes through.
    """
    # Both topologies live at once and every (wire, topology) cell is
    # measured in every round; overhead_x is the median of the
    # *per-round* single/sharded ratios, so host-speed drift between
    # rounds cannot masquerade as hop overhead (the per-cell steps/s
    # still report each cell's best round).
    topologies = {"single_process": 0, "one_shard": 1}
    servers: dict[str, tuple] = {}
    rows: dict[tuple[str, str], list[dict]] = {}
    try:
        for label, shards in topologies.items():
            servers[label] = _spawn_server(shards)
        for label, (process, port) in servers.items():
            # Warm the topology (imports, allocator, numpy first-call).
            asyncio.run(run_loadgen(
                "127.0.0.1", port,
                workload=WORKLOAD, algorithm=ALGORITHM,
                sessions=1, concurrency=1,
                num_steps=500, n=n, k=k, eps=eps, block_size=block, seed=1,
            ))
        for _ in range(rounds):
            for wire_name, pipeline in (("v1", 0), ("v2", PIPELINE)):
                for label, (process, port) in servers.items():
                    report = asyncio.run(run_loadgen(
                        "127.0.0.1", port,
                        workload=WORKLOAD, algorithm=ALGORITHM,
                        sessions=1, concurrency=1,
                        num_steps=T, n=n, k=k, eps=eps, block_size=block, seed=0,
                        wire_protocol=wire_name, pipeline=pipeline,
                    ))
                    rows.setdefault((wire_name, label), []).append({
                        "n": n,
                        "steps_per_s": report["steps_per_s"],
                        "latency_ms": report["latency_ms"],
                    })
        for label, (process, port) in servers.items():
            with ServiceClient("127.0.0.1", port) as client:
                client.shutdown()
            process.wait(timeout=60)
    except BaseException:
        for process, port in servers.values():
            _drain_or_kill(process, port)
        raise
    out: dict = {}
    for (wire_name, label), cells in rows.items():
        out.setdefault(wire_name, {})[label] = _best(cells)
    for wire_name, cells in out.items():
        ratios = [
            single["steps_per_s"] / sharded["steps_per_s"]
            for single, sharded in zip(
                rows[(wire_name, "single_process")], rows[(wire_name, "one_shard")]
            )
            if sharded["steps_per_s"]
        ]
        cells["overhead_x"] = (
            round(statistics.median(ratios), 3) if ratios else None
        )
    return out


def _scrape_loop(admin_port: int, stop: threading.Event) -> int:
    """Poll ``GET /metrics`` once per SCRAPE_INTERVAL_S until stopped."""
    scrapes = 0
    url = f"http://127.0.0.1:{admin_port}/metrics"
    while not stop.is_set():
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                response.read()
            scrapes += 1
        except OSError:
            pass
        stop.wait(SCRAPE_INTERVAL_S)
    return scrapes


def bench_metrics_overhead(
    T: int, n: int, k: int, eps: float, block: int, rounds: int
) -> dict:
    """Single-session served-v2 throughput with the ops plane on vs off.

    One spawned server with an admin port; each round measures the
    uninstrumented rate (telemetry toggled off over the wire) and the
    instrumented rate under a live 1 Hz Prometheus scraper, interleaved.
    ``overhead_x`` is the median per-round uninstrumented/instrumented
    ratio — the same denoising the supervisor-hop cell uses, since this
    too is a ratio of two nearly equal rates.
    """
    process, port, admin_port = _spawn_server(admin=True)
    rows: dict[str, list[dict]] = {"off": [], "on": []}
    scrapes = 0
    try:
        # Warm the spawned server off the clock (see bench_supervisor_hop).
        bench_served("127.0.0.1", port, 2_000, n, k, eps, block,
                     wire_protocol="v2", pipeline=PIPELINE)
        for _ in range(rounds):
            for variant, enabled in (("off", False), ("on", True)):
                with ServiceClient("127.0.0.1", port) as client:
                    client.metrics(enabled=enabled)
                stop = threading.Event()
                scraper = None
                if enabled:
                    result: list[int] = []
                    scraper = threading.Thread(
                        target=lambda: result.append(_scrape_loop(admin_port, stop)),
                        daemon=True,
                    )
                    scraper.start()
                try:
                    rows[variant].append(
                        bench_served("127.0.0.1", port, T, n, k, eps, block,
                                     wire_protocol="v2", pipeline=PIPELINE)
                    )
                finally:
                    if scraper is not None:
                        stop.set()
                        scraper.join(timeout=10)
                        scrapes += result[0] if result else 0
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        process.wait(timeout=30)
    except BaseException:
        _drain_or_kill(process, port)
        raise
    ratios = [
        off["steps_per_s"] / on["steps_per_s"]
        for off, on in zip(rows["off"], rows["on"])
        if on["steps_per_s"]
    ]
    return {
        "uninstrumented": _best(rows["off"]),
        "instrumented": _best(rows["on"]),
        "scrape_interval_s": SCRAPE_INTERVAL_S,
        "scrapes": scrapes,
        "overhead_x": round(statistics.median(ratios), 3) if ratios else None,
    }


def bench_durability_overhead(
    T: int, n: int, k: int, eps: float, block: int, rounds: int
) -> dict:
    """Single-session served-v2 throughput with WAL appends on vs off.

    One spawned server with a (throwaway) ``--wal-dir``; each round
    toggles durability over the wire and measures both variants,
    interleaved.  The "on" variant pays the full serving-path tax:
    every acked feed is encoded, appended and flushed to the page cache
    before its ack, and checkpoints fire at the default threshold.
    ``overhead_x`` is the median per-round off/on ratio (same denoising
    as the other ratio cells).
    """
    wal_dir = tempfile.mkdtemp(prefix="repro-bench-wal-")
    process, port = _spawn_server(wal_dir=wal_dir)
    rows: dict[str, list[dict]] = {"off": [], "on": []}
    try:
        # Warm the spawned server off the clock (see bench_supervisor_hop).
        bench_served("127.0.0.1", port, 2_000, n, k, eps, block,
                     wire_protocol="v2", pipeline=PIPELINE)
        for _ in range(rounds):
            for variant, enabled in (("off", False), ("on", True)):
                with ServiceClient("127.0.0.1", port) as client:
                    client.durability(enabled)
                rows[variant].append(
                    bench_served("127.0.0.1", port, T, n, k, eps, block,
                                 wire_protocol="v2", pipeline=PIPELINE)
                )
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        process.wait(timeout=30)
    except BaseException:
        _drain_or_kill(process, port)
        raise
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
    ratios = [
        off["steps_per_s"] / on["steps_per_s"]
        for off, on in zip(rows["off"], rows["on"])
        if on["steps_per_s"]
    ]
    return {
        "undurable": _best(rows["off"]),
        "durable": _best(rows["on"]),
        "overhead_x": round(statistics.median(ratios), 3) if ratios else None,
    }


def bench_shard_scaling(T: int, shard_counts: tuple[int, ...],
                        session_counts: tuple[int, ...],
                        n: int, k: int, eps: float, block: int) -> dict:
    """Aggregate loadgen throughput per (shard count, session count)."""
    out = {}
    for shards in shard_counts:
        process, port = _spawn_server(shards)
        try:
            # Warm the freshly spawned workers (imports, allocator, numpy
            # first-call paths) so the measured runs compare across sizes;
            # 4 sessions per shard make it likely every worker gets hit
            # through the consistent-hash placement.
            asyncio.run(run_loadgen(
                "127.0.0.1", port,
                workload=WORKLOAD, algorithm=ALGORITHM,
                sessions=4 * shards, concurrency=4 * shards,
                num_steps=200, n=n, k=k, eps=eps, block_size=block, seed=1,
            ))
            per_sessions = {}
            for sessions in session_counts:
                report = asyncio.run(run_loadgen(
                    "127.0.0.1", port,
                    workload=WORKLOAD, algorithm=ALGORITHM,
                    sessions=sessions, concurrency=sessions,
                    num_steps=T, n=n, k=k, eps=eps, block_size=block, seed=0,
                    wire_protocol="auto", pipeline=PIPELINE,
                ))
                per_sessions[str(sessions)] = {
                    "total_steps": report["total_steps"],
                    "wall_seconds": report["wall_seconds"],
                    "steps_per_s": report["steps_per_s"],
                    "messages_per_step": report["messages_per_step"],
                    "latency_ms": report["latency_ms"],
                }
            with ServiceClient("127.0.0.1", port) as client:
                client.shutdown()
            process.wait(timeout=60)
            out[str(shards)] = {
                "sessions": per_sessions,
                "clean_shutdown": process.returncode == 0,
            }
        except BaseException:
            _drain_or_kill(process, port)
            raise
    return out


def _shard_speedup(shard_scaling: dict) -> float | None:
    """Aggregate steps/s of the largest vs the smallest shard count,
    at the largest common session count (the ISSUE-4 scaling gate)."""
    shard_counts = sorted(shard_scaling, key=int)
    if len(shard_counts) < 2:
        return None
    low, high = shard_counts[0], shard_counts[-1]
    sessions = sorted(shard_scaling[high]["sessions"], key=int)[-1]
    base = shard_scaling[low]["sessions"][sessions]["steps_per_s"]
    top = shard_scaling[high]["sessions"][sessions]["steps_per_s"]
    return round(top / base, 2) if base else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_service.json",
    )
    args = parser.parse_args(argv)

    T, n, k, eps, block = CI_SINGLE if args.ci else FULL_SINGLE
    scale_T, counts = CI_SCALING if args.ci else FULL_SCALING
    shard_T, shard_counts, shard_sessions = CI_SHARDS if args.ci else FULL_SHARDS
    batch_T, batch_counts, batch_n, batch_k, batch_eps, batch_chunk = (
        CI_BATCH if args.ci else FULL_BATCH
    )
    hop_T = CI_HOP if args.ci else FULL_HOP
    metrics_T = CI_METRICS_T if args.ci else FULL_METRICS_T
    rounds = CI_ROUNDS if args.ci else FULL_ROUNDS
    hop_rounds = CI_HOP_ROUNDS if args.ci else FULL_HOP_ROUNDS

    t0 = time.perf_counter()
    microbench = bench_wire_microbench(50 if args.ci else 200)

    process, port = _spawn_server()
    try:
        # Warm the freshly spawned server (imports, allocator, numpy
        # first-call paths) so the v1 cell measures steady state, not
        # process cold start — the v1-vs-v2 ratio is only honest if
        # both sides run warm.
        bench_served("127.0.0.1", port, 2_000, n, k, eps, block,
                     wire_protocol="v1", pipeline=0)
        single_rows: dict[str, list[dict]] = {
            "in_process": [], "served": [], "served_v2": [],
        }
        for _ in range(rounds):
            single_rows["in_process"].append(bench_in_process(T, n, k, eps, block))
            single_rows["served"].append(
                bench_served("127.0.0.1", port, T, n, k, eps, block,
                             wire_protocol="v1", pipeline=0)
            )
            single_rows["served_v2"].append(
                bench_served("127.0.0.1", port, T, n, k, eps, block,
                             wire_protocol="v2", pipeline=PIPELINE)
            )
        in_process = _best(single_rows["in_process"])
        served = _best(single_rows["served"])
        served_v2 = _best(single_rows["served_v2"])
        scaling = bench_scaling("127.0.0.1", port, scale_T, counts, n, k, eps, block)
        with ServiceClient("127.0.0.1", port) as client:
            client.shutdown()
        process.wait(timeout=30)
        clean = process.returncode == 0
    except BaseException:
        _drain_or_kill(process, port)
        raise

    session_batch = bench_session_batch(
        batch_T, batch_counts, batch_n, batch_k, batch_eps, batch_chunk
    )
    supervisor_hop = bench_supervisor_hop(hop_T, n, k, eps, block, hop_rounds)
    metrics_overhead = bench_metrics_overhead(
        metrics_T, n, k, eps, block, METRICS_ROUNDS
    )
    durability_overhead = bench_durability_overhead(
        metrics_T, n, k, eps, block, DURABILITY_ROUNDS
    )
    shard_scaling = bench_shard_scaling(
        shard_T, shard_counts, shard_sessions, n, k, eps, block
    )
    clean = clean and all(row["clean_shutdown"] for row in shard_scaling.values())

    report = {
        "schema": 6,
        "mode": "ci" if args.ci else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workload": WORKLOAD,
        "algorithm": ALGORITHM,
        "wire_microbench": microbench,
        "single_session": {
            "in_process": in_process,
            "served": served,
            "served_v2": served_v2,
            "serving_overhead_x": round(
                in_process["steps_per_s"] / served["steps_per_s"], 2
            ),
            "v2_speedup_x": round(
                served_v2["steps_per_s"] / served["steps_per_s"], 2
            ),
            "v2_vs_in_process_x": round(
                served_v2["steps_per_s"] / in_process["steps_per_s"], 2
            ),
        },
        "scaling": scaling,
        "session_batch": session_batch,
        "supervisor_hop": supervisor_hop,
        "metrics_overhead": metrics_overhead,
        "durability_overhead": durability_overhead,
        "shard_scaling": shard_scaling,
        "shard_speedup_x": _shard_speedup(shard_scaling),
        "clean_shutdown": clean,
    }
    if not args.ci:
        # Historical anchor: the served steps/s this repo shipped before
        # wire v2 (PR 4's committed full-size baseline, v1 lockstep as
        # the only protocol, same container lineage as the committed
        # file).  Full mode only — it matches this grid's (T, n, block),
        # and it is a same-lineage trajectory marker, not a portable
        # cross-machine metric.
        report["single_session"]["pr4_committed_v1_steps_per_s"] = 29_888
        report["single_session"]["v2_vs_pr4_committed_x"] = round(
            served_v2["steps_per_s"] / 29_888, 2
        )
    report["total_seconds"] = round(time.perf_counter() - t0, 2)

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({report['total_seconds']}s)")
    print(f"  wire codec:  v1 {microbench['v1']['encode_mb_per_s']}/"
          f"{microbench['v1']['decode_mb_per_s']} MB/s enc/dec, "
          f"v2 {microbench['v2']['encode_mb_per_s']}/"
          f"{microbench['v2']['decode_mb_per_s']} MB/s "
          f"({microbench['v2_codec_speedup_x']}x)")
    print(f"  in-process: {in_process['steps_per_s']:>9,} steps/s  (T={T}, n={n})")
    print(f"  served v1:  {served['steps_per_s']:>9,} steps/s  "
          f"({report['single_session']['serving_overhead_x']}x overhead)")
    print(f"  served v2:  {served_v2['steps_per_s']:>9,} steps/s  "
          f"({report['single_session']['v2_speedup_x']}x v1, "
          f"{report['single_session']['v2_vs_in_process_x']}x in-process, "
          f"pipeline {PIPELINE})")
    for wire_name, cells in supervisor_hop.items():
        print(f"  hop {wire_name}: single {cells['single_process']['steps_per_s']:,} "
              f"vs 1-shard {cells['one_shard']['steps_per_s']:,} steps/s "
              f"-> {cells['overhead_x']}x")
    print(f"  metrics: off {metrics_overhead['uninstrumented']['steps_per_s']:,} "
          f"vs on+scrape {metrics_overhead['instrumented']['steps_per_s']:,} steps/s "
          f"-> {metrics_overhead['overhead_x']}x "
          f"({metrics_overhead['scrapes']} scrapes)")
    print(f"  durability: off {durability_overhead['undurable']['steps_per_s']:,} "
          f"vs WAL on {durability_overhead['durable']['steps_per_s']:,} steps/s "
          f"-> {durability_overhead['overhead_x']}x")
    for sessions, row in scaling.items():
        print(f"  {sessions:>2} sessions: {row['steps_per_s']:>9,} steps/s aggregate")
    for sessions, cell in session_batch["sessions"].items():
        print(f"  batch x {sessions:>4} sessions: "
              f"{cell['aggregate_steps_per_s']:>11,} steps/s aggregate")
    print(f"  batch serial baseline ({BATCH_BASELINE_SESSIONS} sessions): "
          f"{session_batch['serial_baseline']['aggregate_steps_per_s']:,} steps/s "
          f"-> {session_batch.get('speedup_vs_serial_x')}x batched")
    for shards, row in shard_scaling.items():
        for sessions, cell in row["sessions"].items():
            print(f"  {shards} shard(s) x {sessions:>2} sessions: "
                  f"{cell['steps_per_s']:>9,} steps/s aggregate")
    print(f"  shard speedup ({os.cpu_count()} CPUs): {report['shard_speedup_x']}x")
    print(f"  server shutdown: {'clean' if clean else 'UNCLEAN'}")
    return 0 if clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
