"""Throughput benchmark for trace generation and streaming delivery.

Measures, for every registered workload, how fast a trace materializes
(values/s) and — for chunk-first workloads — how fast the streaming
source generates blocks and delivers per-step rows.  Results go to
``BENCH_streams.json`` at the repository root so successive PRs leave a
perf trajectory to compare against (CI runs the ``--ci`` variant on
every push; regenerate the committed file with the default sizes).

Usage::

    PYTHONPATH=src python benchmarks/bench_streams.py            # full sizes
    PYTHONPATH=src python benchmarks/bench_streams.py --ci       # small, fast
    PYTHONPATH=src python benchmarks/bench_streams.py --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.model.node import NodeArray
from repro.streams import registry

#: Per-workload materialization sizes: loop-bound generators get smaller
#: horizons so one run stays in seconds, vectorized ones show their reach.
FULL_SIZES = {"default": (100_000, 64), "walk": (20_000, 64), "sensor": (20_000, 64),
              "levels": (20_000, 64), "cluster": (50_000, 64)}
#: CI shrinks the horizon T but keeps the full n: per-step rates are
#: only comparable at equal node count (the regression gate matches
#: metrics by their (path, n) and skips cells measured at different n).
#: The loop-bound generators keep T >= 10k — they carry ~50ms of fixed
#: per-run setup, which a shorter horizon would misreport as a
#: throughput regression against the full-size baseline.
CI_SIZES = {"default": (10_000, 64), "walk": (10_000, 64), "sensor": (10_000, 64),
            "levels": (10_000, 64), "cluster": (10_000, 64)}

#: Streaming benchmark: generation scan + per-step delivery walk.
FULL_STREAM = (1_000_000, 64, 8192)
CI_STREAM = (100_000, 64, 8192)


def _best_of(fn, reps: int = 3) -> float:
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_generation(sizes: dict, reps: int) -> dict:
    out = {}
    for slug in registry.available():
        spec = registry.get(slug)
        if spec.example_params is None:  # replay needs an external file
            continue
        T, n = sizes.get(slug, sizes["default"])
        params = dict(spec.example_params)
        seconds = _best_of(lambda: registry.make(slug, T, n, rng=0, **params), reps)
        out[slug] = {
            "T": T, "n": n, "seconds": round(seconds, 4),
            "steps_per_s": round(T / seconds),
            "values_per_s": round(T * n / seconds),
        }
    return out


def measure_streaming(T: int, n: int, block_size: int, reps: int) -> dict:
    out = {}
    for slug in ("drift", "zipf", "iid"):
        # Generation scan: produce and validate every block once.
        src = registry.stream(slug, T, n, block_size=block_size, rng=0)
        seconds = _best_of(lambda: sum(b.shape[0] for b in src.iter_blocks()), reps)
        entry = {
            "T": T, "n": n, "block_size": block_size,
            "generate_seconds": round(seconds, 4),
            "generate_steps_per_s": round(T / seconds),
            "generate_values_per_s": round(T * n / seconds),
            "max_resident_rows": src.max_resident_rows,
        }
        # Delivery walk: the engine's access pattern (values(t) in order).
        walk_T = min(T, 200_000)
        walk_src = registry.stream(slug, walk_T, n, block_size=block_size, rng=0)
        nodes = NodeArray(n)

        def walk() -> None:
            walk_src.reset()
            for t in range(walk_T):
                walk_src.values(t, nodes)

        seconds = _best_of(walk, reps)
        entry["deliver_T"] = walk_T
        entry["deliver_seconds"] = round(seconds, 4)
        entry["deliver_steps_per_s"] = round(walk_T / seconds)
        out[slug] = entry
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ci", action="store_true", help="small sizes for CI")
    parser.add_argument("--reps", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_streams.json",
    )
    args = parser.parse_args(argv)

    sizes = CI_SIZES if args.ci else FULL_SIZES
    stream_T, stream_n, block = CI_STREAM if args.ci else FULL_STREAM

    t0 = time.perf_counter()
    report = {
        "schema": 1,
        "mode": "ci" if args.ci else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "generation": measure_generation(sizes, args.reps),
        "streaming": measure_streaming(stream_T, stream_n, block, args.reps),
    }
    report["total_seconds"] = round(time.perf_counter() - t0, 2)

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({report['total_seconds']}s)")
    for slug, row in report["generation"].items():
        print(f"  gen {slug:>11}: {row['values_per_s']:>12,} values/s  "
              f"(T={row['T']}, n={row['n']})")
    for slug, row in report["streaming"].items():
        print(f"  stream {slug:>8}: {row['generate_values_per_s']:>12,} values/s gen, "
              f"{row['deliver_steps_per_s']:>9,} steps/s delivery, "
              f"<= {row['max_resident_rows']} rows resident")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
