"""T8/F6 — regenerate the web-cluster timeline figure."""


def bench_t8_timeline(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T8")
    table = result.tables["totals"]
    totals = {r["algorithm"]: r["total_msgs"] for r in table}
    send_always = totals["send-always"]
    # The filter hierarchy: approximate < exact < naive; OPT below all.
    assert totals["exact-cor3.3"] < send_always
    assert totals["exact-cor3.3"] <= totals["exact-ipdps15"]
    approx = [v for name, v in totals.items() if name.startswith("approx")][0]
    halfeps = [v for name, v in totals.items() if name.startswith("halfeps")][0]
    assert approx < totals["exact-cor3.3"]
    assert halfeps < totals["exact-cor3.3"]
    opt = [v for name, v in totals.items() if name.startswith("OPT")][0]
    assert opt < min(approx, halfeps)
