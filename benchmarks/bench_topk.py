"""T4/F3 — regenerate the Theorem 4.5 ratio sweeps."""


def bench_t4_topk_protocol(run_experiment_benchmarked):
    result = run_experiment_benchmarked("T4")
    delta_table = result.tables["delta_sweep"]
    ratios = [r["ratio"] for r in delta_table]
    # log log Δ: ratio essentially flat while Δ spans many octaves.
    assert max(ratios) <= 2.0 * min(ratios)
    # Every ratio within a constant of the Thm 4.5 bound shape.
    for row in delta_table:
        assert row["ratio"] <= 40 * row["thm45_bound"], row
    eps_table = result.tables["eps_sweep"]
    # Shrinking ε can only make the (same-trace) run dearer or equal.
    msgs = [r["online_msgs"] for r in eps_table]
    assert msgs[0] <= msgs[-1] * 1.25  # eps sorted large -> small
