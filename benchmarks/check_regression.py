"""Benchmark regression gate: fresh BENCH_*.json vs the committed baseline.

CI regenerates ``/tmp/BENCH_streams.json`` / ``/tmp/BENCH_service.json``
on every push (``--ci`` sizes); this script compares every *throughput*
metric they share with the committed repo-root baselines and fails when
one dropped by more than the allowed ratio (default: 30%).

Design points, all in the name of CI-runner noise tolerance:

- only *per-step* throughput leaves are compared (``steps_per_s`` and
  friends) — wall-clock seconds and message counts are redundant or
  size-dependent, and per-*value* rates (``values_per_s``) are skipped
  because no single rate is size-invariant for every workload (cost per
  step scales with the node count ``n`` for vectorized generators, cost
  per value scales with ``1/n`` for per-step-bound ones);
- metrics are matched by their *path* into the JSON tree **plus the
  cell's node count**: a dict carrying an ``n`` sibling stamps its
  throughput leaves with ``(n=...)``, so a cell measured at a different
  ``n`` than the baseline simply does not overlap instead of comparing
  apples to oranges (the ``--ci`` benchmark grids therefore shrink the
  horizon ``T``, never ``n``);
- only paths present in both files count — the ``--ci`` runs use
  smaller sweep grids than the committed ``full`` baselines, so each
  side may have extra cells;
- the threshold is a ratio, not an absolute: a ``--min-ratio 0.7``
  gate trips only when fresh throughput falls below 70% of baseline
  (GitHub runners are faster than the container that produced the
  baselines, so headroom is real);
- zero overlapping metrics is an *error*, not a pass — a renamed
  schema must not silently disable the gate.

Two gates are absolute rather than relative: the fresh service report's
``metrics_overhead.overhead_x`` (the ops-plane telemetry tax) must stay
under ``--max-metrics-overhead`` (default 1.02, i.e. <= 2%), and its
``durability_overhead.overhead_x`` (the WAL append + checkpoint tax on
the served feed path) under ``--max-durability-overhead`` (default
1.25).  Both ratios are machine-normalized by construction — the two
sides of each division ran on the same host moments apart — so unlike
raw throughput they need no noise headroom, and a baseline that carries
a cell pins it: a fresh report missing it fails instead of silently
dropping the gate.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_service.json --fresh /tmp/BENCH_service.json

Exit codes: 0 ok, 1 regression (or no overlap), 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: JSON leaf keys that count as throughput (bigger is better).  The
#: ``*_steps_per_s`` family are per-step rates: per-value rates are
#: excluded because they scale with the workload's node count, which
#: differs between CI and full sizes.  The ``*_mb_per_s`` pair gates
#: the wire codec micro-benchmark, whose block shape is pinned
#: (``bench_service.WIRE_BLOCK``) so CI and full cells always match.
THROUGHPUT_KEYS = frozenset(
    {
        "steps_per_s",
        "aggregate_steps_per_s",
        "deliver_steps_per_s",
        "generate_steps_per_s",
        "encode_mb_per_s",
        "decode_mb_per_s",
    }
)


def collect_metrics(tree: object, prefix: str = "") -> dict[str, float]:
    """Flatten a report to ``{"a.b.steps_per_s(n=64)": value}`` leaves.

    Throughput leaves whose enclosing dict records a node count ``n``
    carry it in the key, so metrics measured at different sizes never
    pair up in :func:`compare`.
    """
    out: dict[str, float] = {}
    if isinstance(tree, dict):
        n = tree.get("n")
        stamp = f"(n={n})" if isinstance(n, int) else ""
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if key in THROUGHPUT_KEYS:
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    out[path + stamp] = float(value)
            else:
                out.update(collect_metrics(value, path))
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            out.update(collect_metrics(value, f"{prefix}[{index}]"))
    return out


def compare(
    baseline: dict[str, float], fresh: dict[str, float], min_ratio: float
) -> tuple[list[tuple[str, float, float, float]], list[str]]:
    """Shared-path comparison; returns (rows, failing paths)."""
    rows = []
    failures = []
    for path in sorted(set(baseline) & set(fresh)):
        base, new = baseline[path], fresh[path]
        ratio = new / base if base else float("inf")
        rows.append((path, base, new, ratio))
        if ratio < min_ratio:
            failures.append(path)
    return rows, failures


def check_overhead_cell(
    baseline_tree: object,
    fresh_tree: object,
    cell: str,
    ceiling: float,
    what: str,
) -> str | None:
    """Absolute gate on one fresh ``<cell>.overhead_x`` ratio, if present.

    Returns a failure message, or ``None`` when the gate passes (or
    neither report carries the cell — older baselines predate it).
    """
    fresh_cell = fresh_tree.get(cell) if isinstance(fresh_tree, dict) else None
    overhead = fresh_cell.get("overhead_x") if isinstance(fresh_cell, dict) else None
    if overhead is not None:
        print(f"  {cell}.overhead_x  x{overhead:.3f}  (max x{ceiling})")
        if overhead > ceiling:
            return (
                f"{what} overhead x{overhead:.3f} exceeds the x{ceiling} "
                f"ceiling ({what} must cost <= {(ceiling - 1) * 100:.0f}%)"
            )
        return None
    if isinstance(baseline_tree, dict) and cell in baseline_tree:
        return (
            f"baseline records {cell}.overhead_x but the fresh report "
            f"lacks it — the {what}-tax gate must not silently drop"
        )
    return None


def check_metrics_overhead(
    baseline_tree: object, fresh_tree: object, ceiling: float
) -> str | None:
    """The ops-plane telemetry tax (kept as a named wrapper: tests and
    CI reference it directly)."""
    return check_overhead_cell(
        baseline_tree, fresh_tree, "metrics_overhead", ceiling, "telemetry"
    )


def check_durability_overhead(
    baseline_tree: object, fresh_tree: object, ceiling: float
) -> str | None:
    """The WAL append + checkpoint tax on the served feed path."""
    return check_overhead_cell(
        baseline_tree, fresh_tree, "durability_overhead", ceiling, "durability"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.7,
        help="fail when fresh/baseline falls below this (default 0.7 = 30%% drop)",
    )
    parser.add_argument(
        "--max-metrics-overhead",
        type=float,
        default=1.02,
        help="fail when metrics_overhead.overhead_x exceeds this (default 1.02)",
    )
    parser.add_argument(
        "--max-durability-overhead",
        type=float,
        default=1.25,
        help="fail when durability_overhead.overhead_x exceeds this (default 1.25)",
    )
    args = parser.parse_args(argv)

    try:
        baseline_tree = json.loads(args.baseline.read_text())
        fresh_tree = json.loads(args.fresh.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read benchmark reports: {exc}", file=sys.stderr)
        return 2
    baseline = collect_metrics(baseline_tree)
    fresh = collect_metrics(fresh_tree)

    rows, failures = compare(baseline, fresh, args.min_ratio)
    if not rows:
        print(
            f"no overlapping throughput metrics between {args.baseline} and "
            f"{args.fresh} — the gate cannot run (schema drift?)",
            file=sys.stderr,
        )
        return 1

    width = max(len(path) for path, *_ in rows)
    for path, base, new, ratio in rows:
        flag = "  <-- REGRESSION" if path in failures else ""
        print(f"  {path:<{width}}  {base:>12,.0f} -> {new:>12,.0f}  x{ratio:.2f}{flag}")
    overhead_failures = [
        failure
        for failure in (
            check_metrics_overhead(
                baseline_tree, fresh_tree, args.max_metrics_overhead
            ),
            check_durability_overhead(
                baseline_tree, fresh_tree, args.max_durability_overhead
            ),
        )
        if failure
    ]
    print(
        f"{len(rows)} shared metrics, min allowed ratio {args.min_ratio}, "
        f"{len(failures)} below it"
    )
    if failures:
        print(
            f"throughput regression (>{(1 - args.min_ratio) * 100:.0f}% drop) in: "
            + ", ".join(failures),
            file=sys.stderr,
        )
    for failure in overhead_failures:
        print(failure, file=sys.stderr)
    return 1 if failures or overhead_failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
