"""Shared fixtures for the benchmark harness.

Every ``bench_*.py`` file regenerates one experiment of DESIGN.md §3: it
times the experiment body with pytest-benchmark, asserts the paper's
qualitative claim on the produced tables (who wins, what scales how), and
writes the tables/figures under ``results/`` so a benchmark run leaves
the same artifacts as ``python -m repro.experiments``.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.common import ExperimentResult, default_results_dir


@pytest.fixture
def run_experiment_benchmarked(benchmark):
    """Run one experiment under the benchmark clock and persist results."""

    def _run(exp_id: str, *, seed: int = 0) -> ExperimentResult:
        result = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"quick": True, "seed": seed},
            rounds=1,
            iterations=1,
        )
        # Quick-sweep artifacts go to their own subtree so a benchmark
        # run never clobbers the full-sweep results/ of EXPERIMENTS.md
        # (exp ids are T*, so results/quick/ cannot collide with them).
        outdir = result.write(default_results_dir() / "quick")
        benchmark.extra_info["results_dir"] = str(outdir)
        for note in result.notes:
            benchmark.extra_info.setdefault("notes", []).append(note)
        return result

    return _run
