#!/usr/bin/env python
"""Theorem 5.1 live: an adaptive adversary extracts Ω(σ/k) from anyone.

The adversary watches the online algorithm's filters and, every step,
drops one protected node's value out of its filter — the online algorithm
*must* react, while an offline player who knows the script pays (k+1) per
epoch.  Run it against the Theorem 5.8 monitor and watch the ratio climb
linearly with σ.

Usage::

    python examples/adversarial_lowerbound.py [--nodes 48] [--k 4]
"""

from __future__ import annotations

import argparse

from repro import ApproxTopKMonitor, MonitoringEngine, offline_opt
from repro.streams import LowerBoundAdversary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=48)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--eps", type=float, default=0.2)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print(f"n={args.nodes}, k={args.k}, ε={args.eps}, {args.epochs} epochs")
    print(f"\n{'σ':>4s} {'online msgs':>12s} {'forced drops':>13s} "
          f"{'offline (k+1)/epoch':>20s} {'ratio':>8s} {'Ω(σ/k) floor':>13s}")
    print("-" * 76)

    sigmas = [args.k + 2, args.nodes // 4, args.nodes // 2, args.nodes]
    for sigma in sorted(set(s for s in sigmas if s > args.k)):
        adversary = LowerBoundAdversary(
            args.nodes, args.k, sigma, eps=args.eps, epochs=args.epochs, rng=args.seed
        )
        monitor = ApproxTopKMonitor(args.k, args.eps)
        result = MonitoringEngine(
            adversary, monitor, k=args.k, eps=args.eps, seed=args.seed,
            record_outputs=False,
        ).run()
        offline = adversary.offline_reference_cost()
        floor = max(1.0, (sigma - args.k) / (args.k + 1))
        print(f"{sigma:>4d} {result.messages:>12d} {adversary.forced_drops:>13d} "
              f"{offline:>20d} {result.messages / offline:>8.1f} {floor:>13.1f}")

    # Sanity: the played instance really is cheap for an offline player.
    opt = offline_opt(adversary.trace, args.k, args.eps)
    print(f"\ngreedy OPT on the last played trace: {opt.phases} feasible windows "
          f"(≈ one per epoch), message lower bound {opt.message_lb}")
    print(
        "\nNo filter-based online algorithm can dodge this: while every\n"
        "filter set is valid, some protected node's filter forbids the\n"
        "drop the adversary is about to play (Thm 5.1's counting argument)."
    )


if __name__ == "__main__":
    main()
