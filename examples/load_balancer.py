#!/usr/bin/env python
"""The paper's motivating scenario: a cluster load balancer.

"Picture a scenario in which a central load balancer within a local
cluster of webservers is interested in keeping track of those nodes
which are facing the highest loads." (Sect. 1)

This example runs the whole algorithm zoo — naive baselines, exact
filter-based monitoring, and the ε-approximate monitors — on the same
flash-crowd workload and prints a communication league table plus an
ASCII timeline of cumulative cost.

Usage::

    python examples/load_balancer.py [--steps 800] [--nodes 64] [--k 8]
"""

from __future__ import annotations

import argparse

from repro import (
    ApproxTopKMonitor,
    ExactTopKMonitor,
    HalfEpsMonitor,
    MonitoringEngine,
    SendAlwaysMonitor,
    offline_opt,
)
from repro.core.naive import SendOnChangeMonitor
from repro.streams import cluster_load, make_distinct
from repro.util.ascii_plot import Series, line_plot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=800)
    parser.add_argument("--nodes", type=int, default=64)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--eps", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    raw = cluster_load(args.steps, args.nodes, noise=25.0, ar_coeff=0.96, rng=args.seed)
    distinct = make_distinct(raw)  # exact monitors need distinct values

    zoo = [
        ("send-always (no filters)", SendAlwaysMonitor(args.k), distinct, 0.0),
        ("send-on-change", SendOnChangeMonitor(args.k), distinct, 0.0),
        ("exact, [6]-style", ExactTopKMonitor(args.k, use_existence=False), distinct, 0.0),
        ("exact, Cor. 3.3", ExactTopKMonitor(args.k), distinct, 0.0),
        (f"ε-approx, Thm 5.8 (ε={args.eps})", ApproxTopKMonitor(args.k, args.eps), raw, args.eps),
        (f"ε-approx, Cor. 5.9 (ε={args.eps})", HalfEpsMonitor(args.k, args.eps), raw, args.eps),
    ]

    print(f"cluster: n={args.nodes} servers, k={args.k}, T={args.steps} steps\n")
    print(f"{'algorithm':38s} {'messages':>10s} {'per step':>9s}")
    print("-" * 60)
    curves = []
    for name, algo, trace, eps in zoo:
        res = MonitoringEngine(trace, algo, k=args.k, eps=eps, seed=args.seed,
                               record_outputs=False).run()
        print(f"{name:38s} {res.messages:>10d} {res.messages / args.steps:>9.2f}")
        stride = max(1, args.steps // 64)
        cum = res.cumulative_messages
        curves.append(Series(name.split(",")[0], list(range(0, args.steps, stride)),
                             cum[::stride].tolist()))

    opt = offline_opt(raw, args.k, args.eps)
    print("-" * 60)
    print(f"{'offline OPT(ε) — explicit':38s} {opt.explicit_cost:>10d} "
          f"{opt.explicit_cost / args.steps:>9.2f}")
    print(f"{'offline OPT(ε) — message lower bound':38s} {opt.message_lb:>10d}")

    print("\n" + line_plot(curves, title="cumulative communication",
                           xlabel="time step", ylabel="messages", height=18))


if __name__ == "__main__":
    main()
