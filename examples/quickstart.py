#!/usr/bin/env python
"""Quickstart: monitor the ε-top-k of simulated distributed streams.

Runs the Theorem 5.8 monitor on a small synthetic workload, prints the
communication bill, and compares it to the offline optimum — the
five-minute tour of the library's public API.

Usage::

    python examples/quickstart.py [--steps 1000] [--nodes 32] [--k 4]
"""

from __future__ import annotations

import argparse

from repro import ApproxTopKMonitor, MonitoringEngine, offline_opt
from repro.streams import cluster_load


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=1000)
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--eps", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # 1. A workload: n web servers reporting load once per time step.
    trace = cluster_load(args.steps, args.nodes, rng=args.seed)
    print(f"workload: T={trace.num_steps} steps, n={trace.n} nodes, Δ={trace.delta:.0f}")

    # 2. The online monitor (Theorem 5.8: TOP-K + DENSE dispatcher).
    monitor = ApproxTopKMonitor(k=args.k, eps=args.eps)
    engine = MonitoringEngine(trace, monitor, k=args.k, eps=args.eps, seed=args.seed)
    result = engine.run()

    print(f"\nonline algorithm: {monitor.name}")
    print(f"  messages total        : {result.messages}")
    print(f"  messages per step     : {result.messages / trace.num_steps:.2f}")
    print(f"  node→server / server→node / broadcast: "
          f"{result.ledger.node_to_server} / {result.ledger.server_to_node} / "
          f"{result.ledger.broadcasts}")
    print(f"  phases (TOP-K / DENSE): {monitor.topk_phases} / {monitor.dense_phases}")
    print(f"  output changes        : {result.output_changes}")
    print(f"  max protocol rounds between two steps: {result.ledger.max_rounds_per_step}")

    # 3. The offline optimum for the same instance (the paper's adversary).
    opt = offline_opt(trace, args.k, args.eps)
    print(f"\noffline optimum (error ε={args.eps}):")
    print(f"  feasible windows      : {opt.phases}")
    print(f"  OPT message lower bound: {opt.message_lb}")
    print(f"  explicit offline cost : {opt.explicit_cost}  ((k+1) per window)")
    print(f"\ncompetitive ratio (online / OPT lb): "
          f"{result.messages / opt.ratio_denominator:.1f}")

    # 4. What a no-filter design would have paid.
    naive = trace.num_steps * (trace.n + 1)
    print(f"for scale: central collection would cost {naive} messages "
          f"({naive / max(1, result.messages):.1f}× more)")


if __name__ == "__main__":
    main()
