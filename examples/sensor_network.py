#!/usr/bin/env python
"""The dense regime: sensors oscillating around the k-th largest value.

"Lots of nodes observe values oscillating around the k-th largest value
and ... this observation is not of any qualitative relevance for the
server." (Sect. 1)

This example sweeps the density σ (how many sensors share the
ε-neighborhood of the k-th value) and shows why Section 5 exists:

- the exact-style TOP-K-PROTOCOL alone melts down as σ grows,
- the Theorem 5.8 DENSE machinery keeps cost polynomial in σ per phase,
- the Corollary 5.9 one-round variant (if the comparison offline player
  is restricted to ε/2) is additively linear in σ.

Usage::

    python examples/sensor_network.py [--nodes 48] [--k 4] [--eps 0.15]
"""

from __future__ import annotations

import argparse

from repro import ApproxTopKMonitor, HalfEpsMonitor, MonitoringEngine, TopKMonitor, offline_opt
from repro.streams import sensor_field


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=400)
    parser.add_argument("--nodes", type=int, default=48)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--eps", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    print(f"sensor field: n={args.nodes}, k={args.k}, ε={args.eps}, T={args.steps}")
    print(f"\n{'σ':>4s} {'topk-only':>10s} {'thm 5.8':>10s} {'cor 5.9':>10s} "
          f"{'OPT(ε) lb':>10s} {'OPT(ε/2) lb':>11s}")
    print("-" * 60)

    bands = [args.k + 2, args.k * 2, args.k * 4, min(args.nodes, args.k * 8)]
    for band in sorted(set(bands)):
        trace = sensor_field(args.steps, args.nodes, args.k, eps=args.eps,
                             band=band, wobble=0.8, rng=args.seed + band)
        sigma = trace.sigma_max(args.k, args.eps)

        costs = {}
        for label, algo in [
            ("topk", TopKMonitor(args.k, args.eps)),
            ("dense", ApproxTopKMonitor(args.k, args.eps)),
            ("halfeps", HalfEpsMonitor(args.k, args.eps)),
        ]:
            res = MonitoringEngine(trace, algo, k=args.k, eps=args.eps,
                                   seed=args.seed, record_outputs=False).run()
            costs[label] = res.messages

        opt_full = offline_opt(trace, args.k, args.eps)
        opt_half = offline_opt(trace, args.k, args.eps / 2)
        print(f"{sigma:>4d} {costs['topk']:>10d} {costs['dense']:>10d} "
              f"{costs['halfeps']:>10d} {opt_full.message_lb:>10d} "
              f"{opt_half.message_lb:>11d}")

    print(
        "\nReading: 'topk-only' ignores the density and pays per oscillation;\n"
        "the Thm 5.8 dispatcher absorbs the neighborhood into DENSE phases;\n"
        "Cor. 5.9 classifies the band once per phase (cheapest), priced\n"
        "against the weaker OPT(ε/2)."
    )


if __name__ == "__main__":
    main()
