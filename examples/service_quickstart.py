"""Tour of the monitoring service layer: sessions, serving, checkpoints.

Walks the full service story in one runnable script:

1. an **in-process session** — feed a workload in blocks, query the
   live ``F(t)`` and the communication bill between blocks;
2. a **checkpoint/resume** — snapshot mid-stream, restore, and verify
   the resumed session ends bit-identically to an uninterrupted run;
3. a **served session** — the same run through the asyncio TCP server
   and client library, plus a small concurrent load-generator pass.

Run::

    PYTHONPATH=src python examples/service_quickstart.py
    PYTHONPATH=src python examples/service_quickstart.py --steps 5000 --nodes 64
"""

from __future__ import annotations

import argparse
import asyncio

from repro.model.engine import MonitoringEngine
from repro.service import AsyncServiceClient, MonitoringServer, Session, SessionConfig
from repro.service.algorithms import make_algorithm
from repro.service.loadgen import run_loadgen
from repro.streams import registry


def in_process_tour(T: int, n: int, k: int, eps: float) -> None:
    print(f"== 1. In-process session (zipf workload, T={T}, n={n}, k={k}, eps={eps})")
    source = registry.stream("zipf", T, n, block_size=256, rng=7)
    session = Session(SessionConfig(algorithm="approx-monitor", n=n, k=k, eps=eps, seed=1))
    for i, block in enumerate(source.iter_blocks()):
        session.feed(block, prevalidated=True)
        if i % 4 == 0:
            print(f"   step {session.step:>6}: F(t) = {sorted(session.output())}, "
                  f"{session.messages} messages so far")
    result = session.finalize()
    bill = ", ".join(f"{k_}={v}" for k_, v in sorted(result.ledger.by_scope().items())[:4])
    print(f"   done: {result.messages} messages over {result.num_steps} steps "
          f"({result.messages / result.num_steps:.2f}/step); bill: {bill}, ...")


def checkpoint_tour(T: int, n: int, k: int, eps: float) -> None:
    print("== 2. Checkpoint / resume")
    config = SessionConfig(
        algorithm="approx-monitor", n=n, k=k, eps=eps, seed=1,
        workload="zipf", num_steps=T, workload_seed=7, block_size=256,
    )
    uninterrupted = Session(config)
    uninterrupted.advance()
    want = uninterrupted.finalize().messages

    session = Session(config)
    session.advance(T // 2)
    blob = session.snapshot()
    print(f"   checkpointed at step {session.step} ({len(blob)} bytes)")
    resumed = Session.restore(blob)
    resumed.advance()
    got = resumed.finalize().messages
    verdict = "bit-identical" if got == want else "MISMATCH"
    print(f"   resumed -> {got} messages vs uninterrupted {want}: {verdict}")
    assert got == want


async def served_tour(T: int, n: int, k: int, eps: float) -> None:
    print("== 3. Served session over TCP + load generator")
    server = MonitoringServer()
    host, port = await server.start()
    print(f"   server on {host}:{port}")

    # The reference: the classic one-shot engine run on the same stream.
    source = registry.stream("zipf", T, n, block_size=256, rng=7)
    reference = MonitoringEngine(
        source, make_algorithm("approx-monitor", k, eps),
        k=k, eps=eps, seed=1, record_outputs=False,
    ).run()

    async with await AsyncServiceClient.connect(host, port) as client:
        # connect() negotiated the binary v2 framing via `hello`
        # (wire_protocol="v1" would keep the connection on JSON lines)
        print(f"   negotiated wire v{client.wire_version}")
        sid = await client.create_session(algorithm="approx-monitor", n=n, k=k, eps=eps, seed=1)
        for block in source.iter_blocks():
            await client.feed_nowait(sid, block)  # pipelined, windowed acks
        status = await client.query(sid)  # implicit flush barrier
        print(f"   session {sid} at step {status['step']}, F(t) = {status['output']}")
        result = await client.finalize(sid)
        verdict = "matches run()" if result["messages"] == reference.messages else "MISMATCH"
        print(f"   served run: {result['messages']} messages ({verdict})")
        assert result["messages"] == reference.messages

    report = await run_loadgen(
        host, port, workload="iid", sessions=4, concurrency=2,
        num_steps=max(200, T // 4), n=n, k=k, eps=eps, block_size=128, seed=3,
    )
    print(f"   loadgen: {report['sessions']} sessions -> {report['steps_per_s']:,} steps/s "
          f"aggregate, {report['messages_per_step']} messages/step")
    await server.aclose()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=2_000)
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--eps", type=float, default=0.1)
    args = parser.parse_args()

    in_process_tour(args.steps, args.nodes, args.k, args.eps)
    checkpoint_tour(args.steps, args.nodes, args.k, args.eps)
    asyncio.run(served_tour(args.steps, args.nodes, args.k, args.eps))
    print("All three tours agree — the service layer preserves the model's accounting.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
