"""repro — competitive algorithms for ε-Top-k-Position Monitoring.

A full, from-scratch reproduction of

    Mäcker, Malatyali, Meyer auf der Heide:
    "On Competitive Algorithms for Approximations of Top-k-Position
    Monitoring of Distributed Streams" (arXiv:1601.04448v3, 2016)

including the continuous-distributed-monitoring substrate the paper
assumes, every protocol it defines (EXISTENCE, the Lemma 2.6 max
protocol, exact monitoring per Corollary 3.3 and the [6] baseline,
TOP-K-PROTOCOL, DENSEPROTOCOL + SUBPROTOCOL, the Theorem 5.8 dispatcher
and the Corollary 5.9 variant), the computable offline optimum, the
Theorem 5.1 lower-bound adversary, and an experiment harness that
validates every theorem's bound shape empirically.

Quickstart::

    import repro

    trace = repro.streams.cluster_load(2_000, n=64, rng=0)
    monitor = repro.ApproxTopKMonitor(k=8, eps=0.1)
    engine = repro.MonitoringEngine(trace, monitor, k=8, eps=0.1, seed=0)
    result = engine.run()
    opt = repro.offline_opt(trace, k=8, eps=0.1)
    print(result.messages, "online messages vs OPT ≥", opt.message_lb)

See DESIGN.md for the architecture and EXPERIMENTS.md for measured
results versus the paper's bounds.
"""

from repro import analysis, core, model, offline, runner, streams, util
from repro.core import (
    ApproxTopKMonitor,
    ExactTopKMonitor,
    HalfEpsMonitor,
    SendAlwaysMonitor,
    TopKMonitor,
)
from repro.model import MonitoringEngine, RunResult
from repro.offline import OfflineResult, offline_opt
from repro.streams import StreamingSource, Trace

__version__ = "1.0.0"

__all__ = [
    "ApproxTopKMonitor",
    "ExactTopKMonitor",
    "HalfEpsMonitor",
    "MonitoringEngine",
    "OfflineResult",
    "RunResult",
    "SendAlwaysMonitor",
    "StreamingSource",
    "TopKMonitor",
    "Trace",
    "analysis",
    "core",
    "model",
    "offline",
    "offline_opt",
    "runner",
    "streams",
    "util",
    "__version__",
]
