"""Measurement and comparison helpers for the experiment suite.

- :mod:`repro.analysis.bounds` — the paper's bound formulas, evaluated
  numerically so tables can print "measured vs predicted shape".
- :mod:`repro.analysis.competitive` — run online algorithms against the
  computed offline optimum and report ratios.
- :mod:`repro.analysis.aggregate` — multi-seed statistics.
"""

from repro.analysis.aggregate import SeedStats, aggregate
from repro.analysis.bounds import (
    bound_cor33,
    bound_cor59,
    bound_dense,
    bound_ipdps15,
    bound_topk,
)
from repro.analysis.competitive import CompetitiveRun, run_competitive

__all__ = [
    "CompetitiveRun",
    "SeedStats",
    "aggregate",
    "bound_cor33",
    "bound_cor59",
    "bound_dense",
    "bound_ipdps15",
    "bound_topk",
    "run_competitive",
]
