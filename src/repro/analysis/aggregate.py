"""Multi-seed aggregation for randomized measurements.

The existence protocol and the max protocol are Las Vegas algorithms, so
message counts are random variables; tables report mean ± std (and the
max where a bound is per-instance) over independent seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["SeedStats", "aggregate"]


@dataclass(frozen=True, slots=True)
class SeedStats:
    """Summary of one measured quantity across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def __format__(self, spec: str) -> str:
        spec = spec or ".4g"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def aggregate(measure: Callable[[int], float], seeds: Sequence[int]) -> SeedStats:
    """Evaluate ``measure(seed)`` for every seed and summarize."""
    if len(seeds) == 0:
        raise ValueError("need at least one seed")
    values = [float(measure(s)) for s in seeds]
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return SeedStats(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
        count=n,
    )
