"""The paper's competitive bounds as numeric formulas.

These are *shapes*, not predictions with known constants: competitive
analysis hides constant factors, and our cost model makes specific
choices (broadcast-per-round, probe accounting) the paper leaves
abstract.  The experiment tables therefore print the bound value next to
the measurement so the reader can eyeball proportionality; fitted
constants are reported where a table makes a scaling claim.
"""

from __future__ import annotations

import math

from repro.util.mathx import log2

__all__ = [
    "bound_ipdps15",
    "bound_cor33",
    "bound_topk",
    "bound_dense",
    "bound_cor59",
    "loglog_term",
]


def _pos_log(x: float) -> float:
    """``log2(x)`` clamped to ≥ 1 (bounds never go below a constant)."""
    return max(1.0, log2(x))


def loglog_term(delta: float) -> float:
    """``log log Δ`` clamped to ≥ 1."""
    return max(1.0, log2(_pos_log(delta)))


def bound_ipdps15(k: int, n: int, delta: float) -> float:
    """[6]'s exact-monitoring bound: k·log n + log Δ · log n."""
    return k * _pos_log(n) + _pos_log(delta) * _pos_log(n)


def bound_cor33(k: int, n: int, delta: float) -> float:
    """Corollary 3.3: k·log n + log Δ."""
    return k * _pos_log(n) + _pos_log(delta)


def bound_topk(k: int, n: int, delta: float, eps: float) -> float:
    """Theorem 4.5: k·log n + log log Δ + log(1/ε)."""
    return k * _pos_log(n) + loglog_term(delta) + _pos_log(1.0 / eps)


def bound_dense(sigma: int, vk: float, delta: float, eps: float) -> float:
    """Theorem 5.8: σ²·log(ε·v_k) + σ·log²(ε·v_k) + log log Δ + log(1/ε)."""
    lev = _pos_log(max(2.0, eps * vk))
    return sigma**2 * lev + sigma * lev**2 + loglog_term(delta) + _pos_log(1.0 / eps)


def bound_cor59(sigma: int, k: int, n: int, delta: float, eps: float) -> float:
    """Corollary 5.9: σ + k·log n + log log Δ + log(1/ε)."""
    return sigma + k * _pos_log(n) + loglog_term(delta) + _pos_log(1.0 / eps)


def lower_bound_ratio(sigma: int, k: int) -> float:
    """Theorem 5.1: Ω(σ/k) — the unavoidable ratio in the dense regime."""
    return max(1.0, (sigma - k) / (k + 1))


def fitted_slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of ``ys`` against ``xs`` (simple, no scipy).

    Used by tables asserting linear-in-X scaling (e.g. messages vs log n).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two paired observations")
    mx = sum(xs) / len(xs)
    my = sum(ys) / len(ys)
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    if den == 0.0:
        raise ValueError("degenerate xs (all equal)")
    return num / den


def correlation(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation — reported as the goodness of a scaling claim."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two paired observations")
    mx = sum(xs) / len(xs)
    my = sum(ys) / len(ys)
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    dx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    dy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if dx == 0.0 or dy == 0.0:
        return 0.0
    return num / (dx * dy)
