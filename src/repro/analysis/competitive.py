"""Run an online algorithm against the computed offline optimum."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.model.engine import MonitoringEngine
from repro.model.protocol import MonitoringAlgorithm
from repro.offline.opt import OfflineResult, offline_opt
from repro.streams.base import Trace

__all__ = ["CompetitiveRun", "run_competitive"]


@dataclass(frozen=True, slots=True)
class CompetitiveRun:
    """One (algorithm, trace) comparison."""

    algorithm: str
    online_messages: int
    online_phases: int
    offline: OfflineResult

    @property
    def ratio(self) -> float:
        """online messages / max(1, OPT lower bound)."""
        return self.online_messages / self.offline.ratio_denominator

    @property
    def ratio_vs_explicit(self) -> float:
        """online messages / the explicit (k+1)·P offline algorithm."""
        return self.online_messages / max(1, self.offline.explicit_cost)


def run_competitive(
    trace: Trace,
    algorithm_factory: Callable[[], MonitoringAlgorithm],
    *,
    k: int,
    eps_online: float,
    eps_offline: float,
    seed: int = 0,
    check: bool = False,
) -> CompetitiveRun:
    """Run the online algorithm on ``trace`` and compare with OPT(ε_off).

    ``eps_online`` feeds the engine's verification mode; ``eps_offline``
    selects the adversary model (0 → exact adversary of Sect. 4, ε →
    Thm 5.8, ε/2 → Cor. 5.9).
    """
    algorithm = algorithm_factory()
    engine = MonitoringEngine(
        trace, algorithm, k=k, eps=eps_online, seed=seed, check=check, record_outputs=False
    )
    result = engine.run()
    opt = offline_opt(trace, k, eps_offline)
    return CompetitiveRun(
        algorithm=result.algorithm_name,
        online_messages=result.messages,
        online_phases=algorithm.phases,
        offline=opt,
    )
