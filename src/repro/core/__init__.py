"""The paper's algorithms — the core contribution of the reproduction.

Modules map 1:1 to the paper's sections:

- :mod:`repro.core.primitives` — EXISTENCE-based building blocks
  (Lemma 3.1 / Cor. 3.2 applications, the Lemma 2.6 max protocol and the
  top-(k+1) probe).
- :mod:`repro.core.exact_monitor` — exact Top-k monitoring: the
  Corollary 3.3 algorithm (O(k log n + log Δ)-competitive) and the
  `[6]`-style baseline without the existence protocol
  (O(k log n + log Δ log n)).
- :mod:`repro.core.topk_protocol` — Section 4's TOP-K-PROTOCOL with the
  four phase strategies (P1)–(P4) / algorithms A1, A2, A3 (Thm 4.5).
- :mod:`repro.core.dense_protocol` / :mod:`repro.core.sub_protocol` —
  Section 5.2's DENSEPROTOCOL and SUBPROTOCOL (Thm 5.8).
- :mod:`repro.core.approx_monitor` — the Theorem 5.8 dispatcher
  (probe top-(k+1); separated → TOP-K, dense → DENSE).
- :mod:`repro.core.halfeps` — the Corollary 5.9 one-round-dense variant
  (competitive against an offline player with error ε' ≤ ε/2).
- :mod:`repro.core.naive` — non-filter baselines for the timeline figure.
"""

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.core.naive import SendAlwaysMonitor
from repro.core.topk_protocol import TopKMonitor

__all__ = [
    "ApproxTopKMonitor",
    "ExactTopKMonitor",
    "HalfEpsMonitor",
    "SendAlwaysMonitor",
    "TopKMonitor",
]
