"""The Theorem 5.8 monitor: ε-Top-k against an ε-approximate adversary.

"At time t ... the algorithm probes the nodes holding the k+1 largest
values.  If ``v_{k+1} < (1-ε)·v_k`` holds, the algorithm TOP-K-PROTOCOL
is called.  Otherwise the algorithm DENSEPROTOCOL is executed.  After
termination of the respective call, the procedure starts over again."

The separated case has a unique output, so TOP-K-PROTOCOL's exact-
adversary analysis applies (Thm 4.5); the dense case is handled by
DENSEPROTOCOL (Lemmas 5.2–5.7).  Overall competitiveness against an
offline algorithm that may itself use error ε:
O(σ² log(ε v_k) + σ log²(ε v_k) + log log Δ + log 1/ε)  (Thm 5.8).
"""

from __future__ import annotations

from repro.core.dense_protocol import DenseCore
from repro.core.phased import PhaseCore, PhasedMonitor
from repro.core.topk_protocol import TopKCore
from repro.util.checks import check_epsilon

__all__ = ["ApproxTopKMonitor"]


class ApproxTopKMonitor(PhasedMonitor):
    """ε-Top-k-Position Monitoring via the Thm 5.8 dispatcher.

    Parameters
    ----------
    k:
        Number of top positions.
    eps:
        The output error ε ∈ (0, 1) both we and the adversary may use.
    resolution:
        Guess-interval granularity for DENSEPROTOCOL; ``1.0`` matches the
        paper's ℕ-valued streams (see DESIGN.md §4).
    """

    def __init__(self, k: int, eps: float, *, resolution: float = 1.0) -> None:
        super().__init__(k, check_epsilon(eps))
        self.resolution = float(resolution)
        self.name = f"approx-monitor(eps={eps:g})"
        #: phase-kind counters for experiment T9
        self.topk_phases = 0
        self.dense_phases = 0

    def _dispatch(self, probe: list[tuple[int, float]]) -> PhaseCore:
        v_k = probe[self.k - 1][1]
        v_k1 = probe[self.k][1]
        if v_k1 < (1.0 - self.eps) * v_k:
            self.topk_phases += 1
            return TopKCore(self.channel, self.k, self.eps, probe)
        self.dense_phases += 1
        return DenseCore(self.channel, self.k, self.eps, probe, resolution=self.resolution)

    # ------------------------------------------------------------------ #
    @property
    def dense_stats(self) -> dict[str, int]:
        """Aggregate DENSE statistics of the *current* core (0s otherwise)."""
        core = self._core
        if isinstance(core, DenseCore):
            return {
                "rounds": core.rounds_used,
                "subs": core.subs_started,
                "sub_rounds": core.sub_rounds,
            }
        return {"rounds": 0, "subs": 0, "sub_rounds": 0}
