"""DENSEPROTOCOL (Sect. 5.2) — competing against an ε-approximate adversary.

Run when the values around position k are *dense*: the probe found
``v_{k+1} ≥ (1-ε)·v_k``, so an approximate adversary has genuine freedom
in choosing its output and the Section-4 machinery is powerless (the
Ω(σ/k) lower bound of Thm 5.1 lives exactly here).

Structure (paper step numbering in brackets):

1. **Pre-stage** — overlapping band filters ``F1 = [v_{k+1}, ∞]`` (top-k),
   ``F2 = [-∞, v_k]`` (rest), valid because the probe showed density.
   They contain the probe-time values, so the system is silent until a
   real change; the first violation fixes the pivot ``z`` (``v_k`` for a
   violation from below, ``v_{k+1}`` from above) and enters the main stage.
2. **Partition** [step 1] — ``V1 = {v > z/(1-ε)}`` (must be in any valid
   output), ``V3 = {v < (1-ε)z}`` (can never be), ``V2`` the ε-band.
   Guess interval ``L₀ = [(1-ε)z, z]`` for ``ℓ*``, the lower endpoint of
   OPT's upper filter; sets ``S1``/``S2`` mark V2 nodes observed above
   ``u_r`` / below ``ℓ_r``.
3. **Rounds** [steps 2–3] — ``ℓ_r`` := midpoint of ``L_r``,
   ``u_r := ℓ_r/(1-ε)``; the filter table of step 2 is one broadcast.
   Violations shrink ``L`` (halving keeps ``ℓ* ∈ L`` — Lemma 5.7),
   reclassify nodes, or summon SUBPROTOCOL for an ``S1 ∩ S2`` conflict.
   ``L = ∅`` ⇒ OPT communicated ⇒ the phase ends.

Counting conditions (steps 3.b.1 / 3.b'.1) are evaluated with explicit
snapshot probes: "more than k nodes above u_r" via ``count_above(u_r)``
and "more than n−k nodes below ℓ_r" via ``count_above(ℓ_r, ≥) < k`` —
each costs one broadcast plus at most ``|V1| + |V2| ≤ k + σ`` replies,
within Lemma 5.3's budget.

Safety guards beyond the paper's pseudo-code (DESIGN.md §4 carries the
proof sketches that OPT must have communicated in each):

- ``|V1| > k``  or  ``|V3| > n-k`` ⇒ phase ends,
- everything classified (``|V1| = k``, ``|V3| = n-k``) ⇒ phase ends
  (the dispatcher will then find separated values and run TOP-K),
- the guess interval exhausted below ``resolution`` ⇒ phase ends
  (``resolution = 1`` matches the paper's ℕ-valued streams).
"""

from __future__ import annotations

import numpy as np

from repro.core.phased import PhaseCore, PhaseOutcome, two_filter_groups
from repro.core.sub_protocol import SubProtocol
from repro.model.channel import Channel, Violation
from repro.util.intervals import Interval

__all__ = ["DenseCore"]


class DenseCore(PhaseCore):
    """One DENSEPROTOCOL phase (pre-stage + rounds + SUB dispatch)."""

    def __init__(
        self,
        channel: Channel,
        k: int,
        eps: float,
        probe: list[tuple[int, float]],
        *,
        resolution: float = 1.0,
    ) -> None:
        super().__init__(channel, k, eps)
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        self.resolution = float(resolution)
        self._stage = "pre"
        self._probe_vk = probe[k - 1][1]
        self._probe_vk1 = probe[k][1]
        self._pre_top = np.array([node for node, _ in probe[:k]], dtype=np.int64)
        self._output = frozenset(int(i) for i in self._pre_top)
        self._fill: set[int] = set(self._output)
        # Main-stage state (populated by _enter_main).
        self.z = float("nan")
        self.z_lo = float("nan")  # (1-ε)z — V3 threshold / S2 filter floor
        self.z_hi = float("nan")  # z/(1-ε) — V1 threshold / S1 filter cap
        self.V1: set[int] = set()
        self.V2: set[int] = set()
        self.V3: set[int] = set()
        self.S1: set[int] = set()
        self.S2: set[int] = set()
        self.L: Interval = Interval.empty()
        self.r = 0
        self.l_r = 0.0
        self.u_r = 0.0
        self.sub: SubProtocol | None = None
        # Statistics for the experiment tables.
        self.rounds_used = 0
        self.subs_started = 0
        self.sub_rounds = 0

    # ------------------------------------------------------------------ #
    # PhaseCore interface
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Install the pre-stage band filters (silent at probe time)."""
        groups = two_filter_groups(self.channel.n, self._pre_top, self._probe_vk1, self._probe_vk)
        self.channel.broadcast_filters(groups)

    def handle(self, violation: Violation) -> PhaseOutcome | None:
        if self._stage == "pre":
            z = self._probe_vk if violation.from_below else self._probe_vk1
            return self._enter_main(z)
        if self.sub is not None:
            return self.sub.handle(violation)
        return self._handle_main(violation)

    def output(self) -> frozenset[int]:
        return self._output

    # ------------------------------------------------------------------ #
    # Main-stage entry (paper step 1)
    # ------------------------------------------------------------------ #
    def _enter_main(self, z: float) -> PhaseOutcome | None:
        self._stage = "main"
        self.z = z
        self.z_hi = z / (1.0 - self.eps)
        self.z_lo = (1.0 - self.eps) * z
        ids_above, _ = self.channel.collect_above(self.z_hi, strict=True)
        self.V1 = {int(i) for i in ids_above}
        if len(self.V1) > self.k:
            return PhaseOutcome.RESTART
        ids_band, _ = self.channel.collect_between(self.z_lo, self.z_hi)
        self.V2 = {int(i) for i in ids_band} - self.V1
        self.V3 = set(range(self.channel.n)) - self.V1 - self.V2
        if len(self.V3) > self.channel.n - self.k:
            return PhaseOutcome.RESTART
        self.L = Interval(self.z_lo, z)
        self.r = 0
        self.S1 = set()
        self.S2 = set()
        if self.L.is_degenerate(self.resolution):
            return PhaseOutcome.RESTART
        self._set_round_bounds()
        outcome = self.refresh_output()
        if outcome is not None:
            return outcome
        self.rebroadcast()
        return None

    # ------------------------------------------------------------------ #
    # Main-stage violation dispatch (paper step 3)
    # ------------------------------------------------------------------ #
    def _handle_main(self, violation: Violation) -> PhaseOutcome | None:
        i = violation.node
        if i in self.V1:
            if violation.from_above:  # case 3.a
                return self.halve(lower=True)
            return None  # defensive: V1 filters have no upper bound
        if i in self.V3:
            if violation.from_below:  # case 3.a'
                return self.halve(lower=False)
            return None  # defensive: V3 filters have no lower bound
        in1, in2 = i in self.S1, i in self.S2
        if not in1 and not in2:  # i ∈ V2 \ S
            if violation.from_below:  # v > u_r
                if self.count_above_ur() > self.k:  # case 3.b.1
                    return self.halve(lower=False)
                self.S1.add(i)  # case 3.b.2
                self.channel.unicast_filter(i, Interval(self.l_r, self.z_hi))
                return self.refresh_output()
            # v < ℓ_r
            if self.count_ge_lr() < self.k:  # case 3.b'.1
                return self.halve(lower=True)
            self.S2.add(i)  # case 3.b'.2
            self.channel.unicast_filter(i, Interval(self.z_lo, self.u_r))
            return self.refresh_output()
        if in1 and not in2:  # i ∈ S1 \ S2
            if violation.from_below:  # v > z/(1-ε) — case 3.c.1
                outcome = self.move_to_v1(i)
                if outcome is not None:
                    return outcome
                return self.refresh_output()
            self.S2.add(i)  # case 3.c.2 → S1∩S2 → SUBPROTOCOL
            return self.start_sub(i)
        if in2 and not in1:  # i ∈ S2 \ S1
            if violation.from_above:  # v < (1-ε)z — case 3.c'.1
                outcome = self.move_to_v3(i)
                if outcome is not None:
                    return outcome
                return self.refresh_output()
            self.S1.add(i)  # case 3.c'.2 → S1∩S2 → SUBPROTOCOL
            return self.start_sub(i)
        # Defensive: S1∩S2 outside SUB should not persist; resolve it now.
        return self.start_sub(i)

    # ------------------------------------------------------------------ #
    # Shared operations (also used by SUBPROTOCOL)
    # ------------------------------------------------------------------ #
    def halve(self, *, lower: bool) -> PhaseOutcome | None:
        """Halve ``L`` (step 3.e); the halving direction resets one S-set.

        Lowering means the separator is in the lower half — above-``u_r``
        evidence (S2's "seen below" marks) stays meaningful, but S1 marks
        don't... per the paper: halve-to-lower resets S2, halve-to-upper
        resets S1 (cases 3.a/3.b'.1 vs 3.b.1/3.a').
        """
        self.L = self.L.lower_half() if lower else self.L.upper_half()
        if self.L.is_degenerate(self.resolution):
            return PhaseOutcome.RESTART
        if lower:
            self.S2 = set()
        else:
            self.S1 = set()
        self.r += 1
        self.rounds_used += 1
        self._set_round_bounds()
        outcome = self.refresh_output()
        if outcome is not None:
            return outcome
        self.rebroadcast()
        return None

    def move_to_v1(self, i: int) -> PhaseOutcome | None:
        """Reclassify ``i`` into V1 (it must be in every valid output)."""
        self.V2.discard(i)
        self.S1.discard(i)
        self.S2.discard(i)
        self.V1.add(i)
        if len(self.V1) > self.k:
            return PhaseOutcome.RESTART  # guard (DESIGN §4): OPT communicated
        self.channel.unicast_filter(i, Interval.at_least(self.l_r))
        return self._check_all_classified()

    def move_to_v3(self, i: int) -> PhaseOutcome | None:
        """Reclassify ``i`` into V3 (it can be in no valid output)."""
        self.V2.discard(i)
        self.S1.discard(i)
        self.S2.discard(i)
        self.V3.add(i)
        if len(self.V3) > self.channel.n - self.k:
            return PhaseOutcome.RESTART  # guard (DESIGN §4)
        upper = self.u_r if self.sub is None else self.sub.u_p
        self.channel.unicast_filter(i, Interval.at_most(upper))
        return self._check_all_classified()

    def _check_all_classified(self) -> PhaseOutcome | None:
        """Step 3.d/e: k nodes provably above, n-k provably below."""
        if len(self.V1) == self.k and len(self.V3) == self.channel.n - self.k:
            return PhaseOutcome.RESTART  # dispatcher will run TOP-K next
        return None

    def start_sub(self, initiator: int) -> PhaseOutcome | None:
        """Invoke SUBPROTOCOL for the ``S1 ∩ S2`` conflict at ``initiator``."""
        self.subs_started += 1
        sub = SubProtocol(self, initiator)
        outcome = sub.start()
        if outcome is not None:
            return outcome
        self.sub = sub
        return None

    # ------------------------------------------------------------------ #
    # Counting probes (steps 3.b.1 / 3.b'.1)
    # ------------------------------------------------------------------ #
    def count_above_ur(self) -> int:
        """Snapshot count of nodes with value > u_r (1 bcast + ≤ k+σ msgs)."""
        with self.channel.ledger.scope("dense_count"):
            return self.channel.count_above(self.u_r, strict=True)

    def count_ge_lr(self) -> int:
        """Snapshot count of nodes with value ≥ ℓ_r (cheap complement of
        "more than n-k below ℓ_r": that holds iff this count is < k)."""
        with self.channel.ledger.scope("dense_count"):
            return self.channel.count_above(self.l_r, strict=False)

    # ------------------------------------------------------------------ #
    # Round bookkeeping
    # ------------------------------------------------------------------ #
    def _set_round_bounds(self) -> None:
        self.l_r = self.L.midpoint
        self.u_r = self.l_r / (1.0 - self.eps)

    def ids(self, members: set[int]) -> np.ndarray:
        """Sorted ndarray of a member set (broadcast-group helper)."""
        return np.fromiter(sorted(members), dtype=np.int64, count=len(members))

    def rebroadcast(self) -> None:
        """Install the step-2 filter table for round ``r`` (one broadcast)."""
        only1 = self.S1 - self.S2
        only2 = self.S2 - self.S1
        plain = self.V2 - self.S1 - self.S2
        self.channel.broadcast_filters(
            [
                (self.ids(self.V1), Interval.at_least(self.l_r)),
                (self.ids(only1), Interval(self.l_r, self.z_hi)),
                (self.ids(plain), Interval(self.l_r, self.u_r)),
                (self.ids(only2), Interval(self.z_lo, self.u_r)),
                (self.ids(self.V3), Interval.at_most(self.u_r)),
            ]
        )

    # ------------------------------------------------------------------ #
    # Output selection (step 2's "k − |…| many nodes from V2 \ S2")
    # ------------------------------------------------------------------ #
    def refresh_output(self) -> PhaseOutcome | None:
        """DENSE output: V1 ∪ (S1\\S2) plus fill from V2 \\ S."""
        core = self.V1 | (self.S1 - self.S2)
        pool = self.V2 - self.S1 - self.S2
        return self.select_output(core, pool)

    def select_output(self, core: set[int], pool: set[int]) -> PhaseOutcome | None:
        """Choose ``F`` = ``core`` plus ``k - |core|`` pool nodes.

        Keeps the previous fill where still legal and tops up by lowest id
        (deterministic, minimizes output churn); infeasibility (more
        mandatory nodes than k, or not enough candidates) ends the phase.
        """
        if len(core) > self.k:
            return PhaseOutcome.RESTART
        need = self.k - len(core)
        keep = sorted(self._fill & pool)[:need]
        if len(keep) < need:
            extra = sorted(pool - set(keep))
            keep.extend(extra[: need - len(keep)])
        if len(keep) < need:
            return PhaseOutcome.RESTART  # not enough witnesses (DESIGN §4)
        self._fill = set(keep)
        self._output = frozenset(core | self._fill)
        return None
