"""Exact Top-k-Position Monitoring (Corollary 3.3 and the [6] baseline).

The algorithm is the *generic framework* of Section 3 with the midpoint
strategy:

- Phase start: probe the k+1 largest values; ``F`` := top-k,
  ``L₀ = [v_{k+1}, v_k]``.
- Broadcast the midpoint ``m`` of ``L``; filters ``F1 = [m, ∞]`` for
  ``F``, ``F2 = [-∞, m]`` for the rest.
- A violation from below by ``i ∉ F`` proves OPT's separating value lies
  above ``v_i`` (``L := L ∩ [v_i, ∞]``); a violation from above by
  ``i ∈ F`` proves it lies below (``L := L ∩ [-∞, v_i]``).  Re-broadcast
  the new midpoint.
- ``L = ∅`` ⇒ no separating value existed throughout the phase ⇒ OPT
  communicated ⇒ start a new phase.

The distance ``|L|`` halves per violation, so a phase costs
O(log Δ) violations.  Where the log n factor of [6] comes from — and how
Lemma 3.1 removes it — is modeled explicitly:

- **Corollary 3.3 mode** (``use_existence=True``): violations are
  detected through the existence protocol (O(1) expected messages even
  with many simultaneous violators), and the reported value alone updates
  ``L`` (the relaxed "invalid filters" convention makes that sound).
  Total **O(k log n + log Δ)** per phase.
- **[6]-baseline mode** (``use_existence=False``): violators self-report
  directly (one message per simultaneous violator), and after every
  violation the algorithm *re-probes the boundary* on the violated side
  with the Lemma 2.6 max/min protocol — the O(log n)-messages-per-
  violation structure behind [6]'s **O(k log n + log Δ · log n)**.
  (The re-probe is a sound tightening of ``L``: Lemma 2.5 puts the
  offline separator above MAX over the non-output side and below MIN
  over the output side.)

Experiment T3 measures exactly this gap.  The exact problem assumes
distinct values (Sect. 2); apply
:func:`repro.streams.transforms.make_distinct` to raw integer traces.
"""

from __future__ import annotations

import numpy as np

from repro.core.phased import PhaseCore, PhaseOutcome, PhasedMonitor, two_filter_groups
from repro.core.primitives import (
    detect_violation_direct,
    detect_violation_existence,
    max_protocol,
    min_protocol,
)
from repro.model.channel import Channel, Violation
from repro.util.intervals import Interval

__all__ = ["ExactTopKMonitor", "MidpointCore"]


class MidpointCore(PhaseCore):
    """One phase of the generic framework with the midpoint strategy.

    ``reprobe_boundary=True`` selects the [6]-style per-violation
    boundary recomputation (see the module docstring).
    """

    def __init__(
        self,
        channel: Channel,
        k: int,
        probe: list[tuple[int, float]],
        *,
        reprobe_boundary: bool = False,
        stats: dict[str, int] | None = None,
    ) -> None:
        super().__init__(channel, k, eps=0.0)
        self._top_ids = np.array([node for node, _ in probe[:k]], dtype=np.int64)
        self._output = frozenset(int(i) for i in self._top_ids)
        self._interval = Interval(probe[k][1], probe[k - 1][1])  # [v_{k+1}, v_k]
        self._reprobe = bool(reprobe_boundary)
        #: shared counters owned by the monitor (survive phase changes)
        self._stats = stats if stats is not None else {}

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._broadcast_midpoint()

    def handle(self, violation: Violation) -> PhaseOutcome | None:
        if violation.from_below:
            # A non-output node rose above m: the separator must be higher.
            self._interval = self._interval.clamp_above(violation.value)
            if self._reprobe and not self._interval.is_empty:
                self._stats["reprobes"] = self._stats.get("reprobes", 0) + 1
                with self.channel.ledger.scope("boundary_reprobe"):
                    probed = max_protocol(self.channel, exclude=self._top_ids)
                if probed is not None:
                    self._interval = self._interval.clamp_above(probed[1])
        else:
            # An output node fell below m: the separator must be lower.
            self._interval = self._interval.clamp_below(violation.value)
            if self._reprobe and not self._interval.is_empty:
                self._stats["reprobes"] = self._stats.get("reprobes", 0) + 1
                others = np.setdiff1d(
                    np.arange(self.channel.n, dtype=np.int64), self._top_ids
                )
                with self.channel.ledger.scope("boundary_reprobe"):
                    probed = min_protocol(self.channel, exclude=others)
                if probed is not None:
                    self._interval = self._interval.clamp_below(probed[1])
        if self._interval.is_empty:
            return PhaseOutcome.RESTART
        self._broadcast_midpoint()
        return None

    def output(self) -> frozenset[int]:
        return self._output

    # ------------------------------------------------------------------ #
    def _broadcast_midpoint(self) -> None:
        m = self._interval.midpoint
        groups = two_filter_groups(self.channel.n, self._top_ids, m, m)
        self.channel.broadcast_filters(groups)


class ExactTopKMonitor(PhasedMonitor):
    """Exact Top-k monitoring; Corollary 3.3 or the [6] baseline.

    Parameters
    ----------
    k:
        Number of top positions.
    use_existence:
        ``True`` (default) → Cor. 3.3: existence-protocol detection and
        report-value-only updates, O(k log n + log Δ)-competitive.
        ``False`` → the [6]-style baseline: direct violator reports plus
        an O(log n) boundary re-probe per violation,
        O(k log n + log Δ·log n)-competitive.
    """

    def __init__(self, k: int, *, use_existence: bool = True) -> None:
        detector = detect_violation_existence if use_existence else detect_violation_direct
        super().__init__(k, eps=0.0, detector=detector)
        self.use_existence = use_existence
        self.name = "exact-cor3.3" if use_existence else "exact-ipdps15"
        #: cumulative core statistics (e.g. boundary re-probe count)
        self.stats: dict[str, int] = {}

    def _dispatch(self, probe: list[tuple[int, float]]) -> PhaseCore:
        return MidpointCore(
            self.channel, self.k, probe,
            reprobe_boundary=not self.use_existence, stats=self.stats,
        )
