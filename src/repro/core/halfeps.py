"""Corollary 5.9 — one-round DENSE against an ε/2-restricted adversary.

If the offline algorithm's error is slightly smaller (ε' ≤ ε/2), the
expensive interval-refinement of DENSEPROTOCOL becomes unnecessary: the
online algorithm "simulates the first round of the DENSEPROTOCOL" with
hard thresholds

- ``ℓ₀ = (1 - ε/2)·z``  (the midpoint of ``[(1-ε)z, z]``) and
- ``u₀ = ℓ₀ / (1-ε)``,

classifies nodes once (``V1 = {v > u₀}``, ``V3 = {v < ℓ₀}``, ``V2`` the
rest) and then only *moves* V2 nodes outward on violations — no S-sets,
no halving.  The phase ends when a V1/V3 node violates or a cardinality
guard trips; at that moment any offline player restricted to error
ε' ≤ ε/2 must have reset filters (the Cor. 5.9 contradiction argument),
so the phase cost O(σ + k log n) is fully charged to OPT.

Total: O(σ + k log n + log log Δ + log 1/ε)-competitive.
"""

from __future__ import annotations

import numpy as np

from repro.core.phased import PhaseCore, PhaseOutcome, PhasedMonitor
from repro.core.topk_protocol import TopKCore
from repro.model.channel import Channel, Violation
from repro.util.checks import check_epsilon
from repro.util.intervals import Interval

__all__ = ["HalfEpsMonitor", "OneRoundDenseCore"]


class OneRoundDenseCore(PhaseCore):
    """The simulated first DENSE round with direct V1/V3 promotion."""

    def __init__(
        self, channel: Channel, k: int, eps: float, probe: list[tuple[int, float]]
    ) -> None:
        super().__init__(channel, k, eps)
        self.z = probe[k - 1][1]  # current v_k
        self.l0 = (1.0 - eps / 2.0) * self.z
        self.u0 = self.l0 / (1.0 - eps)
        self.V1: set[int] = set()
        self.V2: set[int] = set()
        self.V3: set[int] = set()
        self._fill: set[int] = set()
        self._output: frozenset[int] = frozenset()
        self.moves = 0  # statistics: V2 promotions this phase

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        ids_above, _ = self.channel.collect_above(self.u0, strict=True)
        self.V1 = {int(i) for i in ids_above}
        ids_band, _ = self.channel.collect_between(self.l0, self.u0)
        self.V2 = {int(i) for i in ids_band} - self.V1
        self.V3 = set(range(self.channel.n)) - self.V1 - self.V2
        self._install_filters()
        outcome = self._refresh_output()
        # At phase start |V1| ≤ k-1 (u₀ > z = the current k-th largest
        # value) and |V1 ∪ V2| ≥ k (all top-k values are ≥ z ≥ ℓ₀), so a
        # RESTART here is impossible; assert it to catch modeling bugs.
        assert outcome is None, "Cor. 5.9 round-0 classification cannot be infeasible"

    def handle(self, violation: Violation) -> PhaseOutcome | None:
        i = violation.node
        if i in self.V1:
            return PhaseOutcome.RESTART if violation.from_above else None
        if i in self.V3:
            return PhaseOutcome.RESTART if violation.from_below else None
        # i ∈ V2: promote outward, exactly once per node and direction.
        self.V2.discard(i)
        self.moves += 1
        if violation.from_below:  # v > u₀
            self.V1.add(i)
            if len(self.V1) > self.k:
                return PhaseOutcome.RESTART
            self.channel.unicast_filter(i, Interval.at_least(self.l0))
        else:  # v < ℓ₀
            self.V3.add(i)
            if len(self.V3) > self.channel.n - self.k:
                return PhaseOutcome.RESTART
            self.channel.unicast_filter(i, Interval.at_most(self.u0))
        if len(self.V1) == self.k and len(self.V3) == self.channel.n - self.k:
            # "If exactly k nodes are in V1 and n−k in V3, TOP-K-PROTOCOL
            # is executed" — realized by restarting: the dispatcher's next
            # probe sees the separation and selects TOP-K.
            return PhaseOutcome.RESTART
        return self._refresh_output()

    def output(self) -> frozenset[int]:
        return self._output

    # ------------------------------------------------------------------ #
    def _install_filters(self) -> None:
        def ids(s: set[int]) -> np.ndarray:
            return np.fromiter(sorted(s), dtype=np.int64, count=len(s))

        self.channel.broadcast_filters(
            [
                (ids(self.V1), Interval.at_least(self.l0)),
                (ids(self.V2), Interval(self.l0, self.u0)),
                (ids(self.V3), Interval.at_most(self.u0)),
            ]
        )

    def _refresh_output(self) -> PhaseOutcome | None:
        if len(self.V1) > self.k:
            return PhaseOutcome.RESTART
        need = self.k - len(self.V1)
        keep = sorted(self._fill & self.V2)[:need]
        if len(keep) < need:
            extra = sorted(self.V2 - set(keep))
            keep.extend(extra[: need - len(keep)])
        if len(keep) < need:
            return PhaseOutcome.RESTART  # |V1 ∪ V2| < k — phase over
        self._fill = set(keep)
        self._output = frozenset(self.V1 | self._fill)
        return None


class HalfEpsMonitor(PhasedMonitor):
    """The Corollary 5.9 monitor (dispatcher as in Thm 5.8)."""

    def __init__(self, k: int, eps: float) -> None:
        super().__init__(k, check_epsilon(eps))
        self.name = f"halfeps-monitor(eps={eps:g})"
        self.topk_phases = 0
        self.dense_phases = 0

    def _dispatch(self, probe: list[tuple[int, float]]) -> PhaseCore:
        v_k = probe[self.k - 1][1]
        v_k1 = probe[self.k][1]
        if v_k1 < (1.0 - self.eps) * v_k:
            self.topk_phases += 1
            return TopKCore(self.channel, self.k, self.eps, probe)
        self.dense_phases += 1
        return OneRoundDenseCore(self.channel, self.k, self.eps, probe)
