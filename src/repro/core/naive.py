"""Non-filter baselines for the timeline experiment (T8).

These strawmen quantify what filters buy: without them, keeping the
server's view current costs Θ(n) messages per step regardless of how
quiet the streams are.
"""

from __future__ import annotations

import numpy as np

from repro.model.invariants import exact_topk_set
from repro.model.protocol import MonitoringAlgorithm

__all__ = ["SendAlwaysMonitor", "SendOnChangeMonitor"]


class SendAlwaysMonitor(MonitoringAlgorithm):
    """Every node reports its value every step (n upstream messages).

    The server then knows everything and outputs the exact top-k.  This is
    the "central collection" baseline the continuous monitoring literature
    starts from.
    """

    name = "send-always"
    filter_based = False

    def __init__(self, k: int) -> None:
        super().__init__()
        self.k = int(k)
        self._values: np.ndarray | None = None

    def on_start(self) -> None:
        self._collect()

    def on_step(self) -> None:
        self._collect()

    def _collect(self) -> None:
        # All n nodes report unconditionally: value > -inf matches everyone
        # (1 broadcast for the query round + n replies).
        ids, values = self.channel.collect_above(-np.inf, strict=True)
        full = np.empty(self.channel.n, dtype=np.float64)
        full[ids] = values
        self._values = full

    def output(self) -> frozenset[int]:
        assert self._values is not None
        return exact_topk_set(self._values, self.k)


class SendOnChangeMonitor(MonitoringAlgorithm):
    """Nodes report only when their value changed since their last report.

    A slightly smarter strawman: silent for frozen streams, but any noise
    at all — even noise that cannot affect the top-k — costs messages.
    Filter-based algorithms specifically avoid that failure mode.
    """

    name = "send-on-change"

    def __init__(self, k: int) -> None:
        super().__init__()
        self.k = int(k)
        self._values: np.ndarray | None = None

    def on_start(self) -> None:
        ids, values = self.channel.collect_above(-np.inf, strict=True)
        full = np.empty(self.channel.n, dtype=np.float64)
        full[ids] = values
        self._values = full
        self._arm_filters()

    def on_step(self) -> None:
        # Nodes outside their point filters report (they changed); each
        # reporter re-freezes itself locally (rule broadcast at start).
        assert self._values is not None
        reports = self.channel.existence_violations()
        while reports:
            for report in reports:
                self._values[report.node] = report.value
                self.channel.self_freeze(report.node)
            reports = self.channel.existence_violations()

    def _arm_filters(self) -> None:
        """Point filters [v, v]: any change is a violation."""
        self.channel.broadcast_freeze()

    def quiet_step_rounds(self) -> int | None:
        # No value moved off its point filter ⇒ one empty existence check.
        return self.channel.existence_rounds

    def output(self) -> frozenset[int]:
        assert self._values is not None
        return exact_topk_set(self._values, self.k)
