"""Shared phase machinery for the Section 4/5 monitors.

Every competitive algorithm in the paper has the same outer shape
(Thm 4.5, Thm 5.8, Cor. 5.9):

1. probe the nodes holding the k+1 largest values (O(k log n) expected),
2. hand control to a *phase core* — a sub-protocol that fixes an output,
   assigns filters, and witnesses correctness against filter-violations,
3. when the core declares the phase over (its guess interval emptied, or a
   safety guard tripped), go back to 1 — the analyses show OPT must have
   communicated at least once per phase.

:class:`PhasedMonitor` implements the loop; concrete monitors supply
:meth:`PhasedMonitor._dispatch`, choosing the core from the probe result
(e.g. Thm 5.8: separated values → TOP-K-PROTOCOL, dense values →
DENSEPROTOCOL).

Violations are processed one at a time through a pluggable detector
(existence-based per Cor. 3.2, or the deterministic bisection baseline),
re-detecting after every filter update so stale reports vanish — the
paper's "the server simply ignores" semantics.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.model.channel import Channel, Violation
from repro.model.protocol import MAX_SETTLE_ITERATIONS, MonitoringAlgorithm, ProtocolError
from repro.core.primitives import detect_violation_direct, detect_violation_existence, top_m_probe
from repro.util.checks import check_epsilon, check_k, check_positive_int

__all__ = ["PhaseOutcome", "PhaseCore", "PhasedMonitor", "two_filter_groups"]


class PhaseOutcome(enum.Enum):
    """What a phase core reports back after handling a violation."""

    #: The phase is over (guess interval empty / guard tripped / output no
    #: longer witnessable): the monitor must re-probe and re-dispatch.
    RESTART = enum.auto()


class PhaseCore(ABC):
    """One phase of a competitive algorithm (fixed output, shrinking guess)."""

    def __init__(self, channel: Channel, k: int, eps: float) -> None:
        self.channel = channel
        self.k = k
        self.eps = eps

    @abstractmethod
    def start(self) -> None:
        """Assign the phase's initial filters (must contain current values
        *or* be resolved by :meth:`handle` within the same time step)."""

    @abstractmethod
    def handle(self, violation: Violation) -> PhaseOutcome | None:
        """Process one violation; ``RESTART`` ends the phase."""

    @abstractmethod
    def output(self) -> frozenset[int]:
        """The output set ``F(t)`` this core currently certifies."""


class PhasedMonitor(MonitoringAlgorithm):
    """Base class: probe → dispatch core → drain violations → repeat.

    Parameters
    ----------
    k:
        Number of top positions to monitor.
    eps:
        Allowed output error (``0 < eps < 1``; pass ``0.0`` only from the
        exact monitor subclass).
    detector:
        Violation-detection primitive; defaults to the Cor. 3.2
        existence-based detector.
    """

    def __init__(
        self,
        k: int,
        eps: float,
        *,
        detector: Callable[[Channel], Violation | None] | None = None,
    ) -> None:
        super().__init__()
        self.k = check_positive_int(k, "k")
        self.eps = check_epsilon(eps, allow_zero=True)
        self._detector = detector or detect_violation_existence
        self._core: PhaseCore | None = None
        self._phases = 0
        #: total filter-violations processed (for per-violation costs)
        self.violations_handled = 0

    # ------------------------------------------------------------------ #
    # Subclass interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _dispatch(self, probe: list[tuple[int, float]]) -> PhaseCore:
        """Choose the phase core from a fresh top-(k+1) probe."""

    # ------------------------------------------------------------------ #
    # MonitoringAlgorithm interface
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        check_k(self.k, self.channel.n)
        self._new_phase()
        self._drain()

    def on_step(self) -> None:
        self._drain()

    def output(self) -> frozenset[int]:
        if self._core is None:
            raise RuntimeError("monitor not started")
        return self._core.output()

    @property
    def phases(self) -> int:
        """Phases started so far (each implies ≥ 1 OPT message, per paper)."""
        return self._phases

    def quiet_step_rounds(self) -> int | None:
        # A violation-free on_step is one detector call that returns None:
        # the existence detector runs its γ+1 probability rounds with an
        # empty active set (no messages, no RNG draws); the direct detector
        # is one report round whose empty reply charges up(0) into an
        # already-present scope key.  Bisection broadcasts even when quiet,
        # so it opts out — as does any custom detector we cannot vouch for.
        if self._detector is detect_violation_existence:
            return self.channel.existence_rounds
        if self._detector is detect_violation_direct:
            return 1
        return None

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def _new_phase(self) -> None:
        self._phases += 1
        probe = top_m_probe(self.channel, self.k + 1)
        self._core = self._dispatch(probe)
        self._core.start()

    def _drain(self) -> None:
        """Settle the current time step: handle violations until silence."""
        assert self._core is not None
        for _ in range(MAX_SETTLE_ITERATIONS):
            violation = self._detector(self.channel)
            if violation is None:
                return
            self.violations_handled += 1
            if self._core.handle(violation) is PhaseOutcome.RESTART:
                self._new_phase()
        raise ProtocolError(
            f"{self.name}: no settlement after {MAX_SETTLE_ITERATIONS} iterations"
        )


def two_filter_groups(
    n: int, top_ids: np.ndarray, lower: float, upper: float
) -> list[tuple[np.ndarray, object]]:
    """The generic framework's filter layout (Sect. 3).

    ``F1 = [lower, ∞]`` for ``top_ids`` and ``F2 = [-∞, upper]`` for the
    rest; the paper writes ``[0, m]`` for F2 since its values are naturals
    — an unbounded lower end is equivalent there and also correct for the
    float-valued streams some transforms produce.
    """
    from repro.util.intervals import Interval

    top_ids = np.asarray(top_ids, dtype=np.int64)
    rest = np.setdiff1d(np.arange(n, dtype=np.int64), top_ids, assume_unique=False)
    return [
        (rest, Interval.at_most(upper)),
        (top_ids, Interval.at_least(lower)),
    ]
