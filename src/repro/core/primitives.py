"""EXISTENCE-based communication primitives (Sections 2.2 and 3).

These compose the :class:`~repro.model.channel.Channel`'s raw operations
into the protocols the monitoring algorithms are built from:

- :func:`max_protocol` — Lemma 2.6: find the node holding the largest
  value with O(log n) messages in expectation.  The server repeatedly
  broadcasts its current threshold; nodes above it answer through the
  existence protocol; the threshold jumps to the largest answer.  Each
  iteration costs 1 broadcast + O(1) expected upstream messages, and the
  number of active nodes halves in expectation per iteration (the answer
  set is a uniform random subset of the actives), giving O(log n)
  iterations.
- :func:`top_m_probe` — the "compute the nodes holding the (k+1) largest
  values" step used by every Section 4/5 algorithm: repeat the max
  protocol with found nodes silenced (one stand-down unicast each),
  O(m log n) messages in expectation.  Handles ties correctly (each
  restart scans all remaining nodes from −∞).
- :func:`detect_violation_existence` — Corollary 3.2 violation detection:
  O(1) expected messages, zero when nothing violates.
- :func:`detect_violation_bisection` — the deterministic group-testing
  detection the existence protocol replaces (id-range bisection,
  Θ(log n) messages per violation).  Used only by the `[6]`-style exact
  baseline so experiment T3/T11 can measure the improvement of Cor. 3.3.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.channel import Channel, Violation

__all__ = [
    "max_protocol",
    "min_protocol",
    "top_m_probe",
    "detect_violation_existence",
    "detect_violation_direct",
    "detect_violation_bisection",
]


def max_protocol(
    channel: Channel,
    *,
    above: float = -math.inf,
    exclude: np.ndarray | None = None,
) -> tuple[int, float] | None:
    """Find ``(argmax id, max value)`` among non-excluded nodes > ``above``.

    Returns ``None`` when no node qualifies.  Las Vegas: the result is
    always exact; only the message count is random.
    """
    best: tuple[int, float] | None = None
    threshold = above
    with channel.ledger.scope("max_protocol"):
        while True:
            channel.announce()  # threshold (+ stand-down bookkeeping)
            ids, values = channel.existence_above(threshold, strict=True, exclude=exclude)
            if ids.size == 0:
                return best
            j = int(np.argmax(values))
            best = (int(ids[j]), float(values[j]))
            threshold = best[1]


def min_protocol(
    channel: Channel,
    *,
    below: float = math.inf,
    exclude: np.ndarray | None = None,
) -> tuple[int, float] | None:
    """Mirror of :func:`max_protocol`: the node holding the smallest value.

    Same O(log n) expected cost by symmetry; used by the `[6]`-style
    baseline to re-probe the top group's boundary after a violation.
    """
    best: tuple[int, float] | None = None
    threshold = below
    with channel.ledger.scope("min_protocol"):
        while True:
            channel.announce()
            ids, values = channel.existence_below(threshold, strict=True, exclude=exclude)
            if ids.size == 0:
                return best
            j = int(np.argmin(values))
            best = (int(ids[j]), float(values[j]))
            threshold = best[1]


def top_m_probe(channel: Channel, m: int) -> list[tuple[int, float]]:
    """The ``m`` largest values and their holders, sorted descending.

    Repeats the Lemma 2.6 max protocol ``m`` times; each found node is
    silenced with one stand-down unicast so the next round scans the rest.
    Ties are resolved by whichever tied node the randomized protocol finds
    first — sufficient for every use in the paper, where only the *values*
    at ranks k and k+1 matter.  Returns fewer than ``m`` entries only if
    the system has fewer than ``m`` nodes.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if m > channel.n:
        raise ValueError(f"cannot probe top-{m} of {channel.n} nodes")
    found: list[tuple[int, float]] = []
    exclude = np.empty(0, dtype=np.int64)
    with channel.ledger.scope("top_m_probe"):
        for _ in range(m):
            result = max_protocol(channel, exclude=exclude)
            if result is None:  # pragma: no cover - m <= n makes this unreachable
                break
            found.append(result)
            channel.notify(result[0])  # stand down
            exclude = np.append(exclude, result[0])
    return found


def detect_violation_existence(channel: Channel) -> Violation | None:
    """One violation report via the existence protocol (Cor. 3.2).

    All currently-violating nodes participate; the responders of the first
    successful round are charged, and the server acts on the first one
    ("the server processes one violation at a time ... and simply
    ignores" the rest).  Zero cost when nothing violates.
    """
    with channel.ledger.scope("violation_detection"):
        reports = channel.existence_violations()
    return reports[0] if reports else None


def detect_violation_direct(channel: Channel) -> Violation | None:
    """One violation report via direct (unbatched) self-reports.

    The pre-Lemma-3.1 discipline: every violating node sends immediately
    (they cannot coordinate), the server acts on the lowest id.  Free when
    silent, but m simultaneous violators cost m messages where the
    existence protocol pays O(1).  Used by the `[6]`-style baseline.
    """
    with channel.ledger.scope("violation_detection"):
        reports = channel.report_violations_all()
    return reports[0] if reports else None


def detect_violation_bisection(channel: Channel) -> Violation | None:
    """One violation report via deterministic id-range bisection.

    This is the detection scheme the paper's Lemma 3.1 improves on: the
    server binary-searches the id space with "any violator in [a, b]?"
    queries (1 broadcast + 1 reply each), then fetches the report —
    Θ(log n) messages per violation even when only one node violates,
    which is exactly the extra log-factor in the `[6]` bound
    O(k log n + log Δ · log n).
    """
    with channel.ledger.scope("violation_detection"):
        if not channel.range_has_violator(0, channel.n - 1):
            return None
        lo, hi = 0, channel.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if channel.range_has_violator(lo, mid):
                hi = mid
            else:
                lo = mid + 1
        return channel.violation_report(lo)
