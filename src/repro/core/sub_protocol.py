"""SUBPROTOCOL (Sect. 5.2) — resolving a doubly-conflicted node.

DENSEPROTOCOL calls this when some node ``i*`` lands in ``S1 ∩ S2``: it
was observed both above ``u_r`` and below ``ℓ_r`` within the round, so
DENSE cannot decide whether ``i* ∈ F*``.  SUBPROTOCOL refines the guess on
the *lower* part of the interval, ``L' := L_r ∩ [(1-ε)z, ℓ_r]``, and
halves it until one of three things happens (Lemma 5.6):

- evidence accumulates that the offline separator is in the lower half of
  ``L_r`` (cases 3.a / 3.b'.1) → terminate, DENSE halves ``L_r`` down;
- some node is proven to belong to every / no optimal output
  (cases 3.d.1 / 3.d.2 / 3.b.1-empty / 3.a'-empty / 3.c.1 / 3.c'.1) →
  it moves to ``V1`` / ``V3``;
- all nodes become classified → the dense situation dissolved.

Interpretation choices (recorded in DESIGN.md §4): on termination the
parent's ``S1`` is replaced by the evolved ``S'1`` (minus moved nodes);
if the initiating ``S1 ∩ S2`` conflict is still unresolved afterwards,
DENSE immediately re-invokes SUBPROTOCOL — each invocation either halves
``L_r``/``L'`` or removes a node from ``V2``, so the total work stays
within Lemma 5.5's O(σ log |L|) budget per call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.phased import PhaseOutcome
from repro.model.channel import Violation
from repro.util.intervals import Interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dense_protocol import DenseCore

__all__ = ["SubProtocol"]


class SubProtocol:
    """One SUBPROTOCOL invocation, operating on its parent DENSE state."""

    def __init__(self, parent: "DenseCore", initiator: int) -> None:
        self.p = parent
        self.initiator = initiator
        #: S'1 := S1 (frozen copy kept for the b.1 / a' resets).
        self._s1_at_start = frozenset(parent.S1)
        self.S1p: set[int] = set(parent.S1)
        self.S2p: set[int] = set()
        #: L'₀ := L_r ∩ [(1-ε)z, ℓ_r] — the lower part of the guess.
        self.Lp: Interval = Interval(parent.L.lo, parent.l_r)
        self.rp = 0
        self.l_p = 0.0
        self.u_p = 0.0
        #: the last S'1∩S'2 node that violated from above (b.1-empty rule)
        self._last_above: int | None = None

    # ------------------------------------------------------------------ #
    def start(self) -> PhaseOutcome | None:
        """Broadcast the round-0 filters; RESTART if L' is already spent."""
        if self.Lp.is_degenerate(self.p.resolution):
            # The guess cannot be refined at this resolution; end the
            # phase (sound: restarting is always correct, see DESIGN §4).
            return PhaseOutcome.RESTART
        self._set_bounds()
        outcome = self._refresh_output()
        if outcome is not None:
            return outcome
        self._rebroadcast()
        return None

    def handle(self, violation: Violation) -> PhaseOutcome | None:
        """Dispatch one violation to the Sect. 5.2 case table."""
        p = self.p
        i = violation.node
        if i in p.V1:
            if violation.from_above:  # case 3.a
                return self._finish_halve_parent_lower()
            return None  # defensive: V1 filters are upward-unbounded
        if i in p.V3:
            if violation.from_below:  # case 3.a'
                return self._halve_upper()
            return None
        in1, in2 = i in self.S1p, i in self.S2p
        if not in1 and not in2:  # i ∈ V2 \ S'
            if violation.from_below:  # v > u'
                if p.count_above_ur() > p.k:  # case 3.b.1 (vs DENSE's u_r)
                    return self._halve_upper()
                self.S1p.add(i)  # case 3.b.2
                p.channel.unicast_filter(i, Interval(p.l_r, p.z_hi))
                return self._refresh_output()
            # v < ℓ_r (the V2\S' filter's lower end is DENSE's ℓ_r)
            if p.count_ge_lr() < p.k:  # case 3.b'.1
                return self._finish_halve_parent_lower()
            self.S2p.add(i)  # case 3.b'.2
            p.channel.unicast_filter(i, Interval(p.z_lo, self.u_p))
            return self._refresh_output()
        if in1 and not in2:  # i ∈ S'1 \ S'2
            if violation.from_below:  # v > z/(1-ε) — case 3.c.1
                return self._move_within(i, to_v1=True)
            self.S2p.add(i)  # case 3.c.2 → S'1∩S'2
            p.channel.unicast_filter(i, Interval(self.l_p, p.z_hi))
            return self._refresh_output()
        if in2 and not in1:  # i ∈ S'2 \ S'1
            if violation.from_above:  # v < (1-ε)z — case 3.c'.1
                return self._move_within(i, to_v1=False)
            self.S1p.add(i)  # case 3.c'.2 → S'1∩S'2
            p.channel.unicast_filter(i, Interval(self.l_p, p.z_hi))
            return self._refresh_output()
        # i ∈ S'1 ∩ S'2
        if violation.from_below:  # v > z/(1-ε) — case 3.d.1
            return self._terminate_with_move(i, to_v1=True)
        # v < ℓ' — case 3.d.2
        self._last_above = i
        self.Lp = self.Lp.lower_half()
        self.S2p = set()
        if self.Lp.is_degenerate(self.p.resolution):
            return self._terminate_with_move(i, to_v1=False)
        return self._next_round()

    # ------------------------------------------------------------------ #
    # Round bookkeeping
    # ------------------------------------------------------------------ #
    def _set_bounds(self) -> None:
        self.l_p = self.Lp.midpoint
        self.u_p = self.l_p / (1.0 - self.p.eps)

    def _next_round(self) -> PhaseOutcome | None:
        self.rp += 1
        self.p.sub_rounds += 1
        self._set_bounds()
        outcome = self._refresh_output()
        if outcome is not None:
            return outcome
        self._rebroadcast()
        return None

    def _rebroadcast(self) -> None:
        """Install the Sect. 5.2 step-2 filter table (one broadcast)."""
        p = self.p
        both = self.S1p & self.S2p
        only1 = self.S1p - self.S2p
        only2 = self.S2p - self.S1p
        plain = p.V2 - self.S1p - self.S2p
        p.channel.broadcast_filters(
            [
                (p.ids(p.V1), Interval.at_least(p.l_r)),
                (p.ids(only1), Interval(p.l_r, p.z_hi)),
                (p.ids(both), Interval(self.l_p, p.z_hi)),
                (p.ids(plain), Interval(p.l_r, self.u_p)),
                (p.ids(only2), Interval(p.z_lo, self.u_p)),
                (p.ids(p.V3), Interval.at_most(self.u_p)),
            ]
        )

    def _refresh_output(self) -> PhaseOutcome | None:
        """Output := V1 ∪ S'1 (all of it) plus fill from V2 minus S' (step 2)."""
        p = self.p
        core = p.V1 | self.S1p
        pool = p.V2 - self.S1p - self.S2p
        return p.select_output(core, pool)

    # ------------------------------------------------------------------ #
    # Halvings
    # ------------------------------------------------------------------ #
    def _halve_upper(self) -> PhaseOutcome | None:
        """Cases 3.b.1 / 3.a': L' → upper half, S'1 reset to S1."""
        self.Lp = self.Lp.upper_half()
        # S'1 := S1 (the frozen copy), minus nodes moved out of V2 since.
        self.S1p = {i for i in self._s1_at_start if i in self.p.V2}
        if self.Lp.is_degenerate(self.p.resolution):
            victim = self._last_above if self._last_above is not None else self.initiator
            if victim not in self.p.V2:  # already moved by an earlier case
                return self._finish_halve_parent_lower()
            return self._terminate_with_move(victim, to_v1=False)
        return self._next_round()

    def _finish_halve_parent_lower(self) -> PhaseOutcome | None:
        """Cases 3.a / 3.b'.1: hand back to DENSE with L_r halved down."""
        p = self.p
        p.sub = None
        p.S1 = {i for i in self.S1p if i in p.V2}
        return p.halve(lower=True)  # clears S2 → the S1∩S2 conflict is gone

    # ------------------------------------------------------------------ #
    # Moves
    # ------------------------------------------------------------------ #
    def _move_within(self, i: int, *, to_v1: bool) -> PhaseOutcome | None:
        """Cases 3.c.1 / 3.c'.1: reclassify ``i`` but keep SUB running."""
        self.S1p.discard(i)
        self.S2p.discard(i)
        if self._last_above == i:
            self._last_above = None
        outcome = self.p.move_to_v1(i) if to_v1 else self.p.move_to_v3(i)
        if outcome is not None:
            return outcome
        return self._refresh_output()

    def _terminate_with_move(self, x: int, *, to_v1: bool) -> PhaseOutcome | None:
        """Terminate SUB by deciding node ``x`` (Lemma 5.6's outcome)."""
        p = self.p
        p.sub = None
        self.S1p.discard(x)
        self.S2p.discard(x)
        p.S1 = {i for i in self.S1p if i in p.V2}
        p.S2.discard(x)
        outcome = p.move_to_v1(x) if to_v1 else p.move_to_v3(x)
        if outcome is not None:
            return outcome
        leftover = p.S1 & p.S2
        if leftover:
            # The initiating conflict is still open: refine it immediately.
            return p.start_sub(min(leftover))
        outcome = p.refresh_output()
        if outcome is not None:
            return outcome
        p.rebroadcast()
        return None
