"""Section 4: TOP-K-PROTOCOL — competing against an exact adversary.

The core witnesses a fixed output ``F(t)`` while maintaining a guess
interval ``L = [ℓ, u]`` for the lower endpoint ``ℓ*`` of OPT's upper
filter, with the invariant ``L* ⊆ L``.  The pivot (the broadcast value
``m`` that separates the two filters) is chosen by one of four strategies
depending on which property holds (Sect. 4):

- (P1) ``log log u > log log ℓ + 1`` → **A1**: ``m = ℓ₀ + 2^{2^r}`` after
  ``r`` violations — a doubly-exponential sweep that needs only
  O(log log Δ) violations to exhaust any gap (Lemma 4.1).
- (P2) ``¬P1 ∧ u > 4ℓ`` → **A2**: ``m = 2^{mid(log ℓ, log u)}`` — the
  geometric midpoint; O(1) violations suffice (Lemma 4.2).
- (P3) ``u ≤ 4ℓ ∧ u > ℓ/(1-ε)`` → **A3**: the arithmetic midpoint;
  O(log 1/ε) violations until (P4) (Lemma 4.3).
- (P4) ``u ≤ ℓ/(1-ε)`` → overlapping filters ``F1 = [ℓ, ∞]``,
  ``F2 = [-∞, u]`` (valid because the ε-slack covers the overlap); the
  next violation empties ``L`` and ends the phase (protocol step 5/6).

Violations update ``L`` exactly as in the generic framework: a violation
from below by ``i ∉ F`` proves ``ℓ* ≥ v_i`` and one from above by
``i ∈ F`` proves ``u* ≤ v_i`` (Theorem 4.5's invariant argument).  When
``L`` empties, no filter pair could have survived the phase, so an
*exact* OPT — which must output the same unique top-k set — communicated
at least once (Thm 4.5): total O(k log n + log log Δ + log 1/ε) messages
per phase.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.phased import PhaseCore, PhaseOutcome, PhasedMonitor, two_filter_groups
from repro.model.channel import Channel, Violation
from repro.util.checks import check_epsilon
from repro.util.mathx import double_exp, geometric_midpoint, phase_p1

__all__ = ["TopKMonitor", "TopKCore"]

_MODE_A1 = "A1"
_MODE_A2 = "A2"
_MODE_A3 = "A3"
_MODE_P4 = "P4"


class TopKCore(PhaseCore):
    """One TOP-K-PROTOCOL phase (steps 1–6 of the Sect. 4 pseudo-code)."""

    def __init__(
        self, channel: Channel, k: int, eps: float, probe: list[tuple[int, float]]
    ) -> None:
        super().__init__(channel, k, eps)
        self._top_ids = np.array([node for node, _ in probe[:k]], dtype=np.int64)
        self._output = frozenset(int(i) for i in self._top_ids)
        self.lo = probe[k][1]  # ℓ = v_{k+1}
        self.hi = probe[k - 1][1]  # u = v_k
        self.mode: str = ""
        self._a1_base = 0.0  # ℓ₀ of the current A1 run
        self._a1_r = 0  # violations observed during A1
        #: how often each strategy was (re)armed — experiment T10 uses this
        self.mode_entries: dict[str, int] = {m: 0 for m in (_MODE_A1, _MODE_A2, _MODE_A3, _MODE_P4)}

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._arm()

    def handle(self, violation: Violation) -> PhaseOutcome | None:
        if self.mode == _MODE_P4:
            # Step 5: a violation from below sets ℓ := v > u; one from
            # above sets u := v < ℓ.  Either way L empties → step 6.
            return PhaseOutcome.RESTART
        if violation.from_below:
            # i ∉ F rose above the pivot: ℓ* ≥ v_i.
            self.lo = max(self.lo, violation.value)
            if self.mode == _MODE_A1:
                self._a1_r += 1
        else:
            # i ∈ F fell below the pivot: u* ≤ v_i.
            self.hi = min(self.hi, violation.value)
            if self.mode == _MODE_A1:
                # Lemma 4.1: a violation from above ends A1 (P1 now fails
                # up to rounding); re-arming re-evaluates the properties.
                self._a1_r += 1
        if self.lo > self.hi:
            return PhaseOutcome.RESTART
        self._arm()
        return None

    def output(self) -> frozenset[int]:
        return self._output

    # ------------------------------------------------------------------ #
    # Strategy dispatch (properties checked in the paper's order)
    # ------------------------------------------------------------------ #
    def _arm(self) -> None:
        lo, hi = self.lo, self.hi
        if phase_p1(lo, hi):
            if self.mode != _MODE_A1:
                self._a1_base = lo
                self._a1_r = 0
                self._enter(_MODE_A1)
            self._set_pivot(self._a1_pivot())
        elif hi > 4.0 * lo:
            self._enter(_MODE_A2)
            # Geometric midpoint needs ℓ ≥ 1; (P2) with ℓ < 1 only occurs
            # for sub-unit values, where the arithmetic midpoint is exact
            # enough (the gap is a constant number of halvings anyway).
            pivot = geometric_midpoint(lo, hi) if lo >= 1.0 else (lo + hi) / 2.0
            self._set_pivot(pivot)
        elif hi * (1.0 - self.eps) > lo:
            self._enter(_MODE_A3)
            self._set_pivot((lo + hi) / 2.0)
        else:
            # (P4): u ≤ ℓ/(1-ε) — overlapping filters are valid.
            self._enter(_MODE_P4)
            groups = two_filter_groups(self.channel.n, self._top_ids, lo, hi)
            self.channel.broadcast_filters(groups)

    def _enter(self, mode: str) -> None:
        if self.mode != mode:
            self.mode_entries[mode] += 1
        self.mode = mode

    def _a1_pivot(self) -> float:
        """A1's pivot ``ℓ₀ + 2^{2^r}``, advanced past the current ℓ.

        Advancing ``r`` until the pivot clears ℓ is free (server-side
        arithmetic) and only skips pivots that would violate immediately.
        """
        pivot = self._a1_base + double_exp(self._a1_r)
        while pivot < self.lo and math.isfinite(pivot):
            self._a1_r += 1
            pivot = self._a1_base + double_exp(self._a1_r)
        return pivot

    def _set_pivot(self, m: float) -> None:
        if math.isinf(m):
            # A1 overran every float: put the pivot at the top of L; the
            # next violation from above ends (P1) immediately.
            m = self.hi
        groups = two_filter_groups(self.channel.n, self._top_ids, m, m)
        self.channel.broadcast_filters(groups)


class TopKMonitor(PhasedMonitor):
    """Theorem 4.5's monitor: TOP-K-PROTOCOL, restarted phase after phase.

    Allowed an output error ``eps ∈ (0, 1/2]`` while the adversary's
    offline algorithm solves the *exact* problem; competitive ratio
    O(k log n + log log Δ + log(1/ε)).
    """

    def __init__(self, k: int, eps: float) -> None:
        super().__init__(k, check_epsilon(eps))
        self.name = f"topk-protocol(eps={eps:g})"

    def _dispatch(self, probe: list[tuple[int, float]]) -> PhaseCore:
        return TopKCore(self.channel, self.k, self.eps, probe)
