"""The experiment registry — every table/figure of EXPERIMENTS.md.

Each entry maps an experiment id to a module exposing
``run(quick=True, seed=0, runner=None) -> ExperimentResult``; run them
all with ``python -m repro.experiments`` (see ``--help``).  DESIGN.md §3
holds the index mapping experiments to the paper's theorems, and
EXPERIMENTS.md records the full-sweep results.

Experiments are addressable by id (``T3``) or by slug (``exact`` — the
``exp_<slug>`` module name), e.g. ``python -m repro.experiments --only
exact``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.experiments import (
    exp_ablation,
    exp_dense,
    exp_dispatch,
    exp_eps_grid,
    exp_exact,
    exp_existence,
    exp_halfeps,
    exp_lowerbound,
    exp_max,
    exp_model,
    exp_timeline,
    exp_topk,
)
from repro.experiments.common import ExperimentResult
from repro.runner import RunnerConfig

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "resolve_ids",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    exp_id: str
    title: str
    run: Callable[..., ExperimentResult]
    validates: str
    slug: str = ""

    @property
    def accepts_workload(self) -> bool:
        """Whether ``run`` takes a registry workload override (T8-style)."""
        return "workload" in inspect.signature(self.run).parameters


_MODULES = [
    (exp_existence, "Lemma 3.1"),
    (exp_max, "Lemma 2.6"),
    (exp_exact, "Corollary 3.3 vs [6]"),
    (exp_topk, "Theorem 4.5"),
    (exp_lowerbound, "Theorem 5.1"),
    (exp_dense, "Theorem 5.8"),
    (exp_halfeps, "Corollary 5.9"),
    (exp_timeline, "Motivation (Sect. 1)"),
    (exp_dispatch, "Theorem 5.8 dispatcher"),
    (exp_ablation, "A1-A3 ladder & Lemma 3.1 ablations"),
    (exp_eps_grid, "ε sensitivity (Sect. 4/5)"),
    (exp_model, "Model ablations (broadcast channel, existence base)"),
]

EXPERIMENTS: dict[str, ExperimentSpec] = {
    module.EXP_ID: ExperimentSpec(
        module.EXP_ID,
        module.TITLE,
        module.run,
        validates,
        slug=module.__name__.rsplit(".", 1)[-1].removeprefix("exp_"),
    )
    for module, validates in _MODULES
}

_BY_SLUG: dict[str, str] = {spec.slug: spec.exp_id for spec in EXPERIMENTS.values()}


def resolve_ids(tokens: list[str]) -> tuple[list[str], list[str]]:
    """Map ids/slugs (case-insensitive) to experiment ids.

    Returns ``(resolved, unknown)`` preserving order and deduplicating.
    """
    resolved: list[str] = []
    unknown: list[str] = []
    for token in tokens:
        exp_id = token.upper() if token.upper() in EXPERIMENTS else _BY_SLUG.get(token.lower())
        if exp_id is None:
            unknown.append(token)
        elif exp_id not in resolved:
            resolved.append(exp_id)
    return resolved, unknown


def run_experiment(
    exp_id: str,
    *,
    quick: bool = True,
    seed: int = 0,
    runner: RunnerConfig | None = None,
    workload: str | None = None,
    workload_params: dict[str, Any] | None = None,
) -> ExperimentResult:
    """Run one experiment by id (raises ``KeyError`` for unknown ids).

    ``runner`` selects parallel/cached sweep evaluation; ``None`` (the
    default) evaluates serially without touching the cache.

    ``workload``/``workload_params`` override the experiment's scenario
    with any :mod:`repro.streams.registry` slug — only experiments whose
    ``run`` declares the ``workload`` parameter support the override
    (currently T8, the algorithm-zoo timeline); others raise
    ``ValueError``.
    """
    try:
        spec = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    kwargs: dict[str, Any] = {}
    if workload is not None or workload_params:
        if not spec.accepts_workload:
            raise ValueError(
                f"experiment {exp_id} does not take a workload override; "
                "use an experiment with a workload-parameterized sweep (T8)"
            )
        kwargs = {"workload": workload, "workload_params": workload_params}
    return spec.run(quick=quick, seed=seed, runner=runner, **kwargs)
