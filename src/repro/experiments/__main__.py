"""CLI: regenerate every table and figure into ``results/``.

Usage::

    python -m repro.experiments                # run all, quick sweeps
    python -m repro.experiments --full         # full sweeps (EXPERIMENTS.md)
    python -m repro.experiments run T5 T6      # a subset
    python -m repro.experiments list           # what exists
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the reproduction's tables and figures.",
    )
    parser.add_argument("command", nargs="?", default="run", choices=["run", "list"])
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--full", action="store_true", help="full sweeps (slower)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--outdir", type=Path, default=Path("results"))
    args = parser.parse_args(argv)

    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.exp_id:>4}  {spec.title}  [{spec.validates}]")
        return 0

    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2

    for exp_id in ids:
        start = time.perf_counter()
        print(f"[{exp_id}] {EXPERIMENTS[exp_id].title} ...", flush=True)
        result = run_experiment(exp_id, quick=not args.full, seed=args.seed)
        outdir = result.write(args.outdir)
        elapsed = time.perf_counter() - start
        print(f"[{exp_id}] done in {elapsed:.1f}s -> {outdir}")
        for note in result.notes:
            print(f"    note: {note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
