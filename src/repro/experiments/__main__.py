"""CLI: regenerate every table and figure into ``results/``.

Usage::

    python -m repro.experiments                   # run all, quick sweeps
    python -m repro.experiments --full            # full sweeps (EXPERIMENTS.md)
    python -m repro.experiments run T5 T6         # a subset by id
    python -m repro.experiments --only exact      # a subset by slug
    python -m repro.experiments --jobs 4          # parallel sweep cells
    python -m repro.experiments --no-cache        # force recomputation
    python -m repro.experiments list              # what exists
    python -m repro.experiments workloads         # the workload catalog

    # run the T8 algorithm zoo on any registered workload:
    python -m repro.experiments --workload zipf --workload-param alpha=1.2

    # the service layer (see repro.service / docs/ARCHITECTURE.md):
    python -m repro.experiments serve --port 7071
    python -m repro.experiments loadgen --port 7071 --workload zipf --sessions 8

Sweep cells are cached under ``results/.cache`` keyed by content hash
(cell params + seed + a digest of the ``repro`` source tree), so
re-runs on unchanged code skip completed cells; ``--no-cache``
bypasses the cache entirely.  By the runner's
determinism law, ``--jobs N`` and the cache change wall-clock only —
the tables are byte-identical to a serial, uncached run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, resolve_ids, run_experiment
from repro.experiments.common import default_results_dir
from repro.runner import RunnerConfig, default_jobs
from repro.streams import registry


def _print_workloads() -> None:
    """The workload catalog: slug, streaming support, summary, params."""
    for slug in registry.available():
        spec = registry.get(slug)
        mode = "stream" if spec.streaming else "matrix"
        print(f"{slug:>11}  [{mode}]  {spec.summary}")
        for p in spec.params:
            default = "(required)" if p.required else f"= {p.default!r}"
            doc = f"  — {p.doc}" if p.doc else ""
            print(f"{'':>13}{p.name}: {p.kind} {default}{doc}")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The service subcommands own their full argument vocabulary, so they
    # branch off before the experiment parser sees the line.
    if argv and argv[0] in ("serve", "loadgen"):
        from repro.service.cli import main_loadgen, main_serve

        handler = main_serve if argv[0] == "serve" else main_loadgen
        return handler(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the reproduction's tables and figures.",
    )
    parser.add_argument(
        "command", nargs="?", default="run", choices=["run", "list", "workloads"]
    )
    parser.add_argument("ids", nargs="*", help="experiment ids or slugs (default: all)")
    parser.add_argument(
        "--only", action="append", default=[], metavar="ID",
        help="run only this experiment (id like T3 or slug like exact; repeatable)",
    )
    parser.add_argument(
        "--workload", default=None, metavar="SLUG",
        help="registry slug overriding the scenario of workload-parameterized "
             "experiments (default selection: T8); see the `workloads` command",
    )
    parser.add_argument(
        "--workload-param", action="append", default=[], metavar="KEY=VALUE",
        help="workload parameter override, parsed against the registry schema "
             "(repeatable; requires --workload)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--full", action="store_true", help="full sweeps (slower)")
    mode.add_argument("--quick", action="store_true",
                      help="quick sweeps (the default; explicit for CI scripts)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--outdir", type=Path, default=None,
                        help="results root (default: <repo>/results, or $REPRO_RESULTS_DIR)")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="evaluate sweep cells with N worker processes (0 = all CPUs)",
    )
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk sweep cell cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="cache root (default: <outdir>/.cache, or $REPRO_CACHE_DIR)")
    args = parser.parse_args(argv)

    if args.command == "list":
        for spec in EXPERIMENTS.values():
            print(f"{spec.exp_id:>4}  {spec.slug:<10} {spec.title}  [{spec.validates}]")
        return 0
    if args.command == "workloads":
        _print_workloads()
        return 0

    workload_params = None
    if args.workload is not None:
        try:
            spec = registry.get(args.workload)
            workload_params = registry.parse_cli_params(
                args.workload, args.workload_param
            )
            missing = [
                p.name for p in spec.params
                if p.required and p.name not in workload_params
            ]
            if missing:
                raise ValueError(
                    f"workload {args.workload!r} requires "
                    f"--workload-param for: {', '.join(missing)}"
                )
        except (KeyError, ValueError) as exc:
            print(exc.args[0] if exc.args else exc, file=sys.stderr)
            return 2
    elif args.workload_param:
        parser.error("--workload-param requires --workload")

    tokens = list(args.ids) + list(args.only)
    ids, unknown = resolve_ids(tokens)
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if not ids:
        # A workload override applies only to workload-parameterized
        # experiments, so it narrows the default selection to those.
        if args.workload is not None:
            ids = [s.exp_id for s in EXPERIMENTS.values() if s.accepts_workload]
        else:
            ids = list(EXPERIMENTS)
    if args.workload is not None:
        incapable = [
            exp_id for exp_id in ids if not EXPERIMENTS[exp_id].accepts_workload
        ]
        if incapable:
            print(
                f"--workload applies only to workload-parameterized experiments; "
                f"{incapable} do not accept it",
                file=sys.stderr,
            )
            return 2

    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (0 = all CPUs), got {args.jobs}")
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    outdir = args.outdir if args.outdir is not None else default_results_dir()
    # The cache follows the results tree: redirecting --outdir must not
    # leave cache writes behind in the repository checkout.  An explicit
    # $REPRO_CACHE_DIR (e.g. a shared cache) still wins over the derived
    # location.
    cache_dir = args.cache_dir
    if cache_dir is None and args.outdir is not None and not os.environ.get("REPRO_CACHE_DIR"):
        cache_dir = args.outdir / ".cache"
    runner = RunnerConfig(jobs=jobs, cache=not args.no_cache, cache_dir=cache_dir)

    for exp_id in ids:
        start = time.perf_counter()
        print(f"[{exp_id}] {EXPERIMENTS[exp_id].title} ...", flush=True)
        try:
            result = run_experiment(
                exp_id, quick=not args.full, seed=args.seed, runner=runner,
                workload=args.workload, workload_params=workload_params,
            )
        except registry.WorkloadParamError as exc:
            # Pre-sweep workload validation: bad user input, not a crash.
            print(exc, file=sys.stderr)
            return 2
        exp_outdir = result.write(outdir)
        elapsed = time.perf_counter() - start
        print(f"[{exp_id}] done in {elapsed:.1f}s -> {exp_outdir}")
        for note in result.notes:
            print(f"    note: {note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
