"""Shared infrastructure of the experiment suite.

Every experiment module exposes ``run(quick=True, seed=0, runner=None)
-> ExperimentResult``.  ``quick`` selects reduced sweeps (used by the
test suite, the pytest-benchmark payloads, and the CLI default); the
CLI's ``--full`` mode runs the full sweeps recorded in EXPERIMENTS.md.  ``runner`` is an optional
:class:`repro.runner.RunnerConfig` controlling parallelism and caching
of the sweep cells (``None`` = serial, uncached); by the runner's
determinism law it changes *how fast* tables appear, never their
content.  Results are plain tables plus ASCII figures, written under
``results/<exp_id>/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.tables import Table

__all__ = ["ExperimentResult", "default_results_dir", "repo_root"]


def repo_root() -> Path:
    """The repository root (three levels above this file's package)."""
    # .../src/repro/experiments/common.py -> parents[3] == repo root
    return Path(__file__).resolve().parents[3]


def default_results_dir() -> Path:
    """``results/`` anchored at the repository root (created on demand).

    Anchoring at the repo root — not ``Path.cwd()`` — keeps every
    invocation (CLI, pytest, benchmarks, notebooks in subdirectories)
    writing to the same tree.  Set ``REPRO_RESULTS_DIR`` to redirect all
    result artifacts (and, unless ``REPRO_CACHE_DIR`` overrides it, the
    sweep cache under ``results/.cache``) elsewhere.
    """
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return Path(env)
    return repo_root() / "results"


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    tables: dict[str, Table] = field(default_factory=dict)
    figures: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_table(self, name: str, table: Table) -> None:
        if name in self.tables:
            raise ValueError(f"duplicate table {name!r} in {self.exp_id}")
        self.tables[name] = table

    def add_figure(self, name: str, rendered: str) -> None:
        if name in self.figures:
            raise ValueError(f"duplicate figure {name!r} in {self.exp_id}")
        self.figures[name] = rendered

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------ #
    def to_markdown(self) -> str:
        """Full markdown report of this experiment."""
        parts = [f"## {self.exp_id} — {self.title}", ""]
        for note in self.notes:
            parts.append(f"> {note}")
            parts.append("")
        for name, table in self.tables.items():
            parts.append(table.to_markdown())
            parts.append("")
        for name, fig in self.figures.items():
            parts.append(f"**{name}**")
            parts.append("")
            parts.append("```")
            parts.append(fig)
            parts.append("```")
            parts.append("")
        return "\n".join(parts)

    def write(self, outdir: Path | None = None) -> Path:
        """Write report + CSVs + figures under ``results/<exp_id>/``."""
        outdir = (outdir or default_results_dir()) / self.exp_id
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "report.md").write_text(self.to_markdown())
        for name, table in self.tables.items():
            (outdir / f"{name}.csv").write_text(table.to_csv())
        for name, fig in self.figures.items():
            (outdir / f"{name}.txt").write_text(fig)
        return outdir
