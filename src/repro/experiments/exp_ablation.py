"""T10/T11 — ablations of the paper's two key mechanisms.

**T10 (pivot strategies).**  Replace the (P1)–(P4) strategy ladder of
TOP-K-PROTOCOL by the plain midpoint rule of Corollary 3.3 and drive both
with a *pivot-chasing* adversary: one low node moves just above its
current filter bound every step, forcing the maximum number of pivot
updates per phase.  The midpoint ladder needs Θ(log Δ) violations per
phase, the Section-4 ladder Θ(log log Δ + log 1/ε) — sweeping Δ makes the
separation visible directly.

**T11 (existence protocol).**  The Cor. 3.3 monitor with existence-based
violation detection vs the identical monitor with deterministic bisection
detection — the Lemma 3.1 mechanism in isolation (detection-scope costs).

One sweep cell per Δ (T10) / per n (T11); each cell runs both variants
against its own deterministic chaser.
"""

from __future__ import annotations

import numpy as np

from repro.core.exact_monitor import ExactTopKMonitor, MidpointCore
from repro.core.phased import PhaseCore, PhasedMonitor
from repro.core.topk_protocol import TopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.adversarial import PivotChaser
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T10"
TITLE = "Ablations: pivot-strategy ladder (T10) and existence protocol (T11)"


class MidpointApproxMonitor(PhasedMonitor):
    """TOP-K-PROTOCOL with A1/A2/A3 ablated to the plain midpoint rule."""

    def __init__(self, k: int) -> None:
        super().__init__(k, eps=0.0)
        self.name = "midpoint-only"

    def _dispatch(self, probe: list[tuple[int, float]]) -> PhaseCore:
        return MidpointCore(self.channel, self.k, probe)


def _chase(monitor_factory, high: float, T: int, seed: int) -> tuple[float, int]:
    """Messages per reset cycle for one monitor at plateau height `high`."""
    source = PivotChaser(T, n=8, k=3, high=high)
    algo = monitor_factory()
    res = MonitoringEngine(source, algo, k=3, eps=0.0, seed=seed, record_outputs=False).run()
    cycles = max(1, source.resets)
    return res.messages / cycles, source.resets


def _pivot_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """Midpoint vs (P1)-(P4) ladder per chaser cycle at one Δ."""
    high = float(2 ** params["log2_delta"])
    T, eps, ch_seed = params["T"], params["eps"], params["channel_seed"]
    mid_cost, cycles = _chase(lambda: MidpointApproxMonitor(3), high, T, ch_seed)
    ladder_cost, _ = _chase(lambda: TopKMonitor(3, eps), high, T, ch_seed)
    return {"mid_cost": mid_cost, "ladder_cost": ladder_cost, "cycles": cycles}


def _existence_cell(params: dict, seed: int) -> dict:  # noqa: ARG001
    """Cor. 3.3 vs [6]-style violation handling under the chaser at one n."""
    n, T = params["n"], params["T"]
    out = {}
    for use_existence, label in ((True, "cor33"), (False, "ipdps15")):
        source = PivotChaser(T, n=n, k=3, high=float(2**20))
        algo = ExactTopKMonitor(3, use_existence=use_existence)
        res = MonitoringEngine(
            source, algo, k=3, eps=0.0, seed=params["channel_seed"], record_outputs=False
        ).run()
        out[f"msgs_{label}"] = res.messages
        if not use_existence:
            out["reprobe"] = res.ledger.by_scope().get("boundary_reprobe", 0)
            out["reprobes"] = algo.stats.get("reprobes", 0)
    return out


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    T = 400 if quick else 1200
    eps = 0.1

    # --- T10: pivot strategies under the chasing adversary --------------- #
    log_deltas = [12, 20, 28] if quick else [10, 16, 22, 28, 34, 40]
    pivot_cells = [
        {"log2_delta": ld, "T": T, "eps": eps, "channel_seed": seed} for ld in log_deltas
    ]
    pivot_rows = zip_params(
        pivot_cells, run_grid(sweep(EXP_ID, _pivot_cell, cells=pivot_cells, seed=seed), runner)
    )
    table = Table(
        [
            "log2_delta", "midpoint_msgs_per_cycle", "ladder_msgs_per_cycle",
            "gap", "cycles",
        ],
        title="T10: per-cycle cost of midpoint vs (P1)-(P4) ladder",
    )
    xs, y_mid, y_ladder = [], [], []
    for row in pivot_rows:
        table.add(row["log2_delta"], row["mid_cost"], row["ladder_cost"],
                  row["mid_cost"] / max(1e-9, row["ladder_cost"]), row["cycles"])
        xs.append(float(row["log2_delta"]))
        y_mid.append(row["mid_cost"])
        y_ladder.append(row["ladder_cost"])
    result.add_table("pivot_ablation", table)
    result.note(
        "Midpoint pivots cost Θ(log Δ) per adversary cycle (slope "
        f"{np.polyfit(xs, y_mid, 1)[0]:.2f} msgs per log2 Δ) while the "
        "(P1)-(P4) ladder stays near-flat — the log Δ → log log Δ "
        "improvement of Theorem 4.5."
    )
    result.add_figure(
        "F10_ladder_vs_midpoint",
        line_plot(
            [Series("midpoint-only", xs, y_mid), Series("(P1)-(P4) ladder", xs, y_ladder)],
            title="per-cycle messages vs log2 Δ (pivot-chasing adversary)",
            xlabel="log2 Δ", ylabel="messages per cycle",
        ),
    )

    # --- T11: existence/report mechanism ablation ------------------------- #
    # Driven by the pivot chaser: every violation is a from-below ride,
    # so the [6]-style boundary re-probe runs over the n−k staggered low
    # nodes each time and its Θ(log n) price is isolated from workload
    # noise (random walks mix cheap k-sided probes in, see git history).
    ns = [8, 32, 128] if quick else [8, 16, 32, 64, 128, 256]
    exist_cells = [{"n": n, "T": T, "channel_seed": seed} for n in ns]
    exist_rows = zip_params(
        exist_cells, run_grid(sweep(EXP_ID, _existence_cell, cells=exist_cells, seed=seed), runner)
    )
    t11 = Table(
        [
            "n", "log2_n", "msgs_cor33", "msgs_ipdps15", "reprobe_msgs",
            "msgs_per_reprobe",
        ],
        title="T11: violation-handling cost, Cor. 3.3 vs [6]-style (chaser)",
    )
    for row in exist_rows:
        t11.add(
            row["n"], float(np.log2(row["n"])), row["msgs_cor33"], row["msgs_ipdps15"],
            row["reprobe"], row["reprobe"] / max(1, row["reprobes"]),
        )
    result.add_table("existence_ablation", t11)
    result.note(
        "Each [6]-style boundary re-probe costs Θ(log n) messages and the "
        "per-re-probe price grows with n; Cor. 3.3 replaces the mechanism "
        "with O(1)-message existence handling — Lemma 3.1's contribution "
        "in isolation."
    )
    return result
