"""T10/T11 — ablations of the paper's two key mechanisms.

**T10 (pivot strategies).**  Replace the (P1)–(P4) strategy ladder of
TOP-K-PROTOCOL by the plain midpoint rule of Corollary 3.3 and drive both
with a *pivot-chasing* adversary: one low node moves just above its
current filter bound every step, forcing the maximum number of pivot
updates per phase.  The midpoint ladder needs Θ(log Δ) violations per
phase, the Section-4 ladder Θ(log log Δ + log 1/ε) — sweeping Δ makes the
separation visible directly.

**T11 (existence protocol).**  The Cor. 3.3 monitor with existence-based
violation detection vs the identical monitor with deterministic bisection
detection — the Lemma 3.1 mechanism in isolation (detection-scope costs).
"""

from __future__ import annotations

import numpy as np

from repro.core.exact_monitor import ExactTopKMonitor, MidpointCore
from repro.core.phased import PhaseCore, PhasedMonitor
from repro.core.topk_protocol import TopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.streams.adversarial import PivotChaser
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T10"
TITLE = "Ablations: pivot-strategy ladder (T10) and existence protocol (T11)"


class MidpointApproxMonitor(PhasedMonitor):
    """TOP-K-PROTOCOL with A1/A2/A3 ablated to the plain midpoint rule."""

    def __init__(self, k: int) -> None:
        super().__init__(k, eps=0.0)
        self.name = "midpoint-only"

    def _dispatch(self, probe: list[tuple[int, float]]) -> PhaseCore:
        return MidpointCore(self.channel, self.k, probe)


def _chase(monitor_factory, high: float, T: int, seed: int) -> tuple[float, int]:
    """Messages per reset cycle for one monitor at plateau height `high`."""
    source = PivotChaser(T, n=8, k=3, high=high)
    algo = monitor_factory()
    res = MonitoringEngine(source, algo, k=3, eps=0.0, seed=seed, record_outputs=False).run()
    cycles = max(1, source.resets)
    return res.messages / cycles, source.resets


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    T = 400 if quick else 1200
    eps = 0.1

    # --- T10: pivot strategies under the chasing adversary --------------- #
    log_deltas = [12, 20, 28] if quick else [10, 16, 22, 28, 34, 40]
    table = Table(
        [
            "log2_delta", "midpoint_msgs_per_cycle", "ladder_msgs_per_cycle",
            "gap", "cycles",
        ],
        title="T10: per-cycle cost of midpoint vs (P1)-(P4) ladder",
    )
    xs, y_mid, y_ladder = [], [], []
    for ld in log_deltas:
        high = float(2**ld)
        mid_cost, cycles = _chase(lambda: MidpointApproxMonitor(3), high, T, seed)
        ladder_cost, _ = _chase(lambda: TopKMonitor(3, eps), high, T, seed)
        table.add(ld, mid_cost, ladder_cost, mid_cost / max(1e-9, ladder_cost), cycles)
        xs.append(float(ld))
        y_mid.append(mid_cost)
        y_ladder.append(ladder_cost)
    result.add_table("pivot_ablation", table)
    result.note(
        "Midpoint pivots cost Θ(log Δ) per adversary cycle (slope "
        f"{np.polyfit(xs, y_mid, 1)[0]:.2f} msgs per log2 Δ) while the "
        "(P1)-(P4) ladder stays near-flat — the log Δ → log log Δ "
        "improvement of Theorem 4.5."
    )
    result.add_figure(
        "F10_ladder_vs_midpoint",
        line_plot(
            [Series("midpoint-only", xs, y_mid), Series("(P1)-(P4) ladder", xs, y_ladder)],
            title="per-cycle messages vs log2 Δ (pivot-chasing adversary)",
            xlabel="log2 Δ", ylabel="messages per cycle",
        ),
    )

    # --- T11: existence/report mechanism ablation ------------------------- #
    # Driven by the pivot chaser: every violation is a from-below ride,
    # so the [6]-style boundary re-probe runs over the n−k staggered low
    # nodes each time and its Θ(log n) price is isolated from workload
    # noise (random walks mix cheap k-sided probes in, see git history).
    t11 = Table(
        [
            "n", "log2_n", "msgs_cor33", "msgs_ipdps15", "reprobe_msgs",
            "msgs_per_reprobe",
        ],
        title="T11: violation-handling cost, Cor. 3.3 vs [6]-style (chaser)",
    )
    ns = [8, 32, 128] if quick else [8, 16, 32, 64, 128, 256]
    for n in ns:
        msgs, reprobe, reprobes = {}, 0, 0
        for use_existence in (True, False):
            source = PivotChaser(T, n=n, k=3, high=float(2**20))
            algo = ExactTopKMonitor(3, use_existence=use_existence)
            res = MonitoringEngine(
                source, algo, k=3, eps=0.0, seed=seed, record_outputs=False
            ).run()
            msgs[use_existence] = res.messages
            if not use_existence:
                reprobe = res.ledger.by_scope().get("boundary_reprobe", 0)
                reprobes = algo.stats.get("reprobes", 0)
        t11.add(
            n, float(np.log2(n)), msgs[True], msgs[False], reprobe,
            reprobe / max(1, reprobes),
        )
    result.add_table("existence_ablation", t11)
    result.note(
        "Each [6]-style boundary re-probe costs Θ(log n) messages and the "
        "per-re-probe price grows with n; Cor. 3.3 replaces the mechanism "
        "with O(1)-message existence handling — Lemma 3.1's contribution "
        "in isolation."
    )
    return result
