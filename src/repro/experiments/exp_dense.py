"""T6/F5 — Theorem 5.8: DENSEPROTOCOL's cost scaling in σ and ε.

Sensor-field workloads put exactly ``band ≈ σ`` nodes inside the
ε-neighborhood; the per-phase message cost of the Theorem 5.8 monitor is
measured against σ (the bound is σ²·log(εv_k) + σ·log²(εv_k), so the
log-log slope should land between 1 and 2) and against ε.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import bound_dense, fitted_slope
from repro.core.approx_monitor import ApproxTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.streams.workloads import sensor_field
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T6"
TITLE = "DENSEPROTOCOL cost vs σ and ε (Thm 5.8)"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 64
    T = 300 if quick else 800
    eps = 0.1

    # --- σ sweep --------------------------------------------------------- #
    bands = [8, 16, 32] if quick else [6, 8, 12, 16, 24, 32, 48, 64]
    sigma_table = Table(
        [
            "sigma", "online_msgs", "phases", "msgs_per_phase", "opt_lb",
            "ratio", "thm58_bound",
        ],
        title=f"T6a: DENSE cost vs σ (k={k}, n={n}, ε={eps})",
    )
    xs, ys = [], []
    for band in bands:
        trace = sensor_field(T, n, k, eps=eps, band=band, wobble=0.8, rng=seed + band)
        sigma = trace.sigma_max(k, eps)
        algo = ApproxTopKMonitor(k, eps)
        res = MonitoringEngine(trace, algo, k=k, eps=eps, seed=seed, record_outputs=False).run()
        opt = offline_opt(trace, k, eps)
        per_phase = res.messages / max(1, algo.phases)
        vk = float(np.median(trace.kth_largest_series(k)))
        sigma_table.add(
            sigma, res.messages, algo.phases, per_phase, opt.message_lb,
            res.messages / opt.ratio_denominator, bound_dense(sigma, vk, trace.delta, eps),
        )
        xs.append(float(sigma))
        ys.append(per_phase)
    result.add_table("sigma_sweep", sigma_table)
    slope = fitted_slope([np.log2(x) for x in xs], [np.log2(y) for y in ys])
    result.note(
        f"log-log slope of per-phase cost vs σ: {slope:.2f} "
        "(Thm 5.8 allows up to 2; ≥ 1 is forced by the Thm 5.1 bound)."
    )

    # --- ε sweep ---------------------------------------------------------- #
    eps_values = [0.3, 0.1, 0.03] if quick else [0.4, 0.2, 0.1, 0.05, 0.02]
    eps_table = Table(
        ["eps", "sigma", "online_msgs", "phases", "msgs_per_phase", "opt_lb"],
        title=f"T6b: DENSE cost vs ε (k={k}, n={n}, band=16)",
    )
    for eps_v in eps_values:
        trace = sensor_field(T, n, k, eps=eps_v, band=16, wobble=0.8, rng=seed + 99)
        algo = ApproxTopKMonitor(k, eps_v)
        res = MonitoringEngine(trace, algo, k=k, eps=eps_v, seed=seed, record_outputs=False).run()
        opt = offline_opt(trace, k, eps_v)
        eps_table.add(
            eps_v, trace.sigma_max(k, eps_v), res.messages, algo.phases,
            res.messages / max(1, algo.phases), opt.message_lb,
        )
    result.add_table("eps_sweep", eps_table)

    result.add_figure(
        "F5_cost_vs_sigma",
        line_plot(
            [Series("msgs/phase", xs, ys),
             Series("sigma^2 ref", xs, [ys[0] * (x / xs[0]) ** 2 for x in xs]),
             Series("sigma ref", xs, [ys[0] * (x / xs[0]) for x in xs])],
            title="DENSE per-phase cost vs σ (log-log)",
            xlabel="σ", ylabel="messages/phase", logx=True, logy=True,
        ),
    )
    return result
