"""T6/F5 — Theorem 5.8: DENSEPROTOCOL's cost scaling in σ and ε.

Sensor-field workloads put exactly ``band ≈ σ`` nodes inside the
ε-neighborhood; the per-phase message cost of the Theorem 5.8 monitor is
measured against σ (the bound is σ²·log(εv_k) + σ·log²(εv_k), so the
log-log slope should land between 1 and 2) and against ε.  One sweep
cell per band (σ sweep) and per ε (ε sweep).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import bound_dense, fitted_slope
from repro.core.approx_monitor import ApproxTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.workloads import sensor_field
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T6"
TITLE = "DENSEPROTOCOL cost vs σ and ε (Thm 5.8)"


def _dense_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """Thm 5.8 monitor + OPT on one sensor-field trace."""
    T, n, k = params["T"], params["n"], params["k"]
    eps, band = params["eps"], params["band"]
    trace = sensor_field(T, n, k, eps=eps, band=band, wobble=params["wobble"],
                         rng=params["trace_seed"])
    sigma = trace.sigma_max(k, eps)
    algo = ApproxTopKMonitor(k, eps)
    res = MonitoringEngine(
        trace, algo, k=k, eps=eps, seed=params["channel_seed"], record_outputs=False
    ).run()
    opt = offline_opt(trace, k, eps)
    vk = float(np.median(trace.kth_largest_series(k)))
    return {
        "sigma": int(sigma),
        "online_msgs": res.messages,
        "phases": algo.phases,
        "msgs_per_phase": res.messages / max(1, algo.phases),
        "opt_lb": opt.message_lb,
        "ratio": res.messages / opt.ratio_denominator,
        "thm58_bound": float(bound_dense(sigma, vk, trace.delta, eps)),
    }


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 64
    T = 300 if quick else 800
    eps = 0.1

    # --- σ sweep --------------------------------------------------------- #
    bands = [8, 16, 32] if quick else [6, 8, 12, 16, 24, 32, 48, 64]
    sigma_cells = [
        {"band": band, "T": T, "n": n, "k": k, "eps": eps, "wobble": 0.8,
         "trace_seed": seed + band, "channel_seed": seed}
        for band in bands
    ]
    sigma_rows = zip_params(
        sigma_cells, run_grid(sweep(EXP_ID, _dense_cell, cells=sigma_cells, seed=seed), runner)
    )
    sigma_table = Table(
        [
            "sigma", "online_msgs", "phases", "msgs_per_phase", "opt_lb",
            "ratio", "thm58_bound",
        ],
        title=f"T6a: DENSE cost vs σ (k={k}, n={n}, ε={eps})",
    )
    xs, ys = [], []
    for row in sigma_rows:
        sigma_table.add(
            row["sigma"], row["online_msgs"], row["phases"], row["msgs_per_phase"],
            row["opt_lb"], row["ratio"], row["thm58_bound"],
        )
        xs.append(float(row["sigma"]))
        ys.append(row["msgs_per_phase"])
    result.add_table("sigma_sweep", sigma_table)
    slope = fitted_slope([np.log2(x) for x in xs], [np.log2(y) for y in ys])
    result.note(
        f"log-log slope of per-phase cost vs σ: {slope:.2f} "
        "(Thm 5.8 allows up to 2; ≥ 1 is forced by the Thm 5.1 bound)."
    )

    # --- ε sweep ---------------------------------------------------------- #
    eps_values = [0.3, 0.1, 0.03] if quick else [0.4, 0.2, 0.1, 0.05, 0.02]
    eps_cells = [
        {"band": 16, "T": T, "n": n, "k": k, "eps": eps_v, "wobble": 0.8,
         "trace_seed": seed + 99, "channel_seed": seed}
        for eps_v in eps_values
    ]
    eps_rows = zip_params(
        eps_cells, run_grid(sweep(EXP_ID, _dense_cell, cells=eps_cells, seed=seed), runner)
    )
    eps_table = Table(
        ["eps", "sigma", "online_msgs", "phases", "msgs_per_phase", "opt_lb"],
        title=f"T6b: DENSE cost vs ε (k={k}, n={n}, band=16)",
    )
    for row in eps_rows:
        eps_table.add(
            row["eps"], row["sigma"], row["online_msgs"], row["phases"],
            row["msgs_per_phase"], row["opt_lb"],
        )
    result.add_table("eps_sweep", eps_table)

    result.add_figure(
        "F5_cost_vs_sigma",
        line_plot(
            [Series("msgs/phase", xs, ys),
             Series("sigma^2 ref", xs, [ys[0] * (x / xs[0]) ** 2 for x in xs]),
             Series("sigma ref", xs, [ys[0] * (x / xs[0]) for x in xs])],
            title="DENSE per-phase cost vs σ (log-log)",
            xlabel="σ", ylabel="messages/phase", logx=True, logy=True,
        ),
    )
    return result
