"""T9 — the Theorem 5.8 dispatcher: when does DENSE take over?

A two-band workload with a controllable relative gap ``g`` between the
top-k plateau and the runner-up plateau: ``v_{k+1} ≈ (1-g)·v_k``.  The
dispatcher should choose TOP-K-PROTOCOL while ``g > ε`` (separated) and
DENSEPROTOCOL while ``g < ε`` (dense); the measured fraction of dense
phases flips exactly at ``g = ε``.  One sweep cell per gap.
"""

from __future__ import annotations

import numpy as np

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.base import Trace
from repro.util.ascii_plot import Series, line_plot
from repro.util.rngtools import make_rng
from repro.util.tables import Table

EXP_ID = "T9"
TITLE = "Dispatcher behaviour across the gap/ε boundary (Thm 5.8)"


def gap_workload(T: int, n: int, k: int, gap: float, *, level: float = 10_000.0,
                 noise: float = 0.004, rng=None) -> Trace:
    """Top-k plateau at ``level``, the rest at ``(1-gap)·level``, with
    relative noise small against both the gap and ε."""
    rng = make_rng(rng)
    centers = np.full(n, (1.0 - gap) * level)
    centers[:k] = level
    wobble = rng.uniform(-noise * level, noise * level, size=(T, n))
    return Trace(np.round(np.maximum(centers[None, :] + wobble, 1.0)))


def _gap_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """Dispatcher phase mix at one gap value."""
    T, n, k, eps = params["T"], params["n"], params["k"], params["eps"]
    trace = gap_workload(T, n, k, params["gap"], rng=params["trace_seed"])
    algo = ApproxTopKMonitor(k, eps)
    res = MonitoringEngine(
        trace, algo, k=k, eps=eps, seed=params["channel_seed"], record_outputs=False
    ).run()
    return {
        "topk_phases": algo.topk_phases,
        "dense_phases": algo.dense_phases,
        "msgs": res.messages,
    }


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 32
    T = 200 if quick else 600
    eps = 0.1
    gaps = [0.02, 0.05, 0.08, 0.12, 0.2, 0.3] if quick else [
        0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.16, 0.2, 0.3
    ]

    cells = [
        {"gap": gap, "T": T, "n": n, "k": k, "eps": eps,
         "trace_seed": seed, "channel_seed": seed}
        for gap in gaps
    ]
    rows = zip_params(cells, run_grid(sweep(EXP_ID, _gap_cell, cells=cells, seed=seed), runner))

    table = Table(
        ["gap", "gap_over_eps", "topk_phases", "dense_phases", "dense_fraction", "msgs"],
        title=f"T9: phase kinds vs relative gap (ε={eps})",
    )
    xs, ys = [], []
    for row in rows:
        gap = row["gap"]
        total = max(1, row["topk_phases"] + row["dense_phases"])
        frac = row["dense_phases"] / total
        table.add(gap, gap / eps, row["topk_phases"], row["dense_phases"], frac, row["msgs"])
        xs.append(gap / eps)
        ys.append(frac)
    result.add_table("dispatch", table)

    below = [r["dense_fraction"] for r in table if r["gap"] < eps * 0.8]
    above = [r["dense_fraction"] for r in table if r["gap"] > eps * 1.2]
    result.note(
        f"Dense-phase fraction is {min(below):.2f}–{max(below):.2f} for "
        f"gaps clearly below ε and {min(above):.2f}–{max(above):.2f} for "
        "gaps clearly above — the dispatcher flips at the ε boundary as "
        "Thm 5.8 prescribes."
    )
    result.add_figure(
        "F9_dense_fraction",
        line_plot([Series("dense fraction", xs, ys)],
                  title="fraction of DENSE phases vs gap/ε",
                  xlabel="gap / ε", ylabel="dense fraction"),
    )
    return result
