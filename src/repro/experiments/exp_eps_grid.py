"""T12 — ε sensitivity: how online and offline costs move with the error.

On a fixed cluster-load workload:

- row 1: OPT's phase count as ε_offline grows (monotonically non-
  increasing — more slack, fewer forced reconfigurations),
- grid: the Theorem 5.8 monitor's message count and its ratio against
  OPT(ε_offline) for every (ε_online, ε_offline) pair with
  ε_offline ≤ ε_online (the comparisons the paper's Sections 4/5 make:
  the diagonal is Thm 5.8, the ε/2 column is Cor. 5.9 territory, and
  ε_offline = 0 is Thm 4.5's exact adversary).
"""

from __future__ import annotations

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.streams.workloads import cluster_load
from repro.util.tables import Table

EXP_ID = "T12"
TITLE = "ε-grid: online cost and OPT phases across error budgets"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 32
    T = 300 if quick else 1000
    trace = cluster_load(T, n, rng=seed)
    eps_values = [0.02, 0.05, 0.1, 0.2] if quick else [0.01, 0.02, 0.05, 0.1, 0.2, 0.4]

    opt_table = Table(
        ["eps_offline", "opt_phases", "opt_message_lb"],
        title="T12a: OPT phases vs offline error",
    )
    opt_cache = {}
    for eps_off in [0.0] + eps_values:
        opt = offline_opt(trace, k, eps_off)
        opt_cache[eps_off] = opt
        opt_table.add(eps_off, opt.phases, opt.message_lb)
    result.add_table("opt_phases", opt_table)
    phases = opt_table.column("opt_phases")
    assert phases == sorted(phases, reverse=True), "OPT must be monotone in ε"
    result.note(
        f"OPT phases fall {phases[0]} → {phases[-1]} as ε grows to "
        f"{eps_values[-1]}: the slack the online algorithms compete for."
    )

    grid = Table(
        ["eps_online", "online_msgs", "eps_offline", "ratio"],
        title="T12b: Thm 5.8 monitor vs OPT(ε_offline ≤ ε_online)",
    )
    for eps_on in eps_values:
        algo = ApproxTopKMonitor(k, eps_on)
        res = MonitoringEngine(trace, algo, k=k, eps=eps_on, seed=seed, record_outputs=False).run()
        for eps_off in [0.0] + [e for e in eps_values if e <= eps_on]:
            opt = opt_cache[eps_off]
            grid.add(eps_on, res.messages, eps_off, res.messages / opt.ratio_denominator)
    result.add_table("ratio_grid", grid)
    result.note(
        "Within one row (fixed online cost) the ratio grows as the "
        "adversary's ε approaches the online ε — the Section-5 regime "
        "where the Ω(σ/k) lower bound lives; against the exact adversary "
        "(ε_offline = 0) the same runs look strongly competitive (Thm 4.5)."
    )
    return result
