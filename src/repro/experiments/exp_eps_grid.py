"""T12 — ε sensitivity: how online and offline costs move with the error.

On a fixed cluster-load workload:

- row 1: OPT's phase count as ε_offline grows (monotonically non-
  increasing — more slack, fewer forced reconfigurations),
- grid: the Theorem 5.8 monitor's message count and its ratio against
  OPT(ε_offline) for every (ε_online, ε_offline) pair with
  ε_offline ≤ ε_online (the comparisons the paper's Sections 4/5 make:
  the diagonal is Thm 5.8, the ε/2 column is Cor. 5.9 territory, and
  ε_offline = 0 is Thm 4.5's exact adversary).

Two sweeps share the trace via the ``trace_seed`` param: one cell per
ε_offline computes OPT, one cell per ε_online runs the monitor; the
(ε_online, ε_offline) grid is their cross join.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.workloads import cluster_load
from repro.util.tables import Table

EXP_ID = "T12"
TITLE = "ε-grid: online cost and OPT phases across error budgets"


@lru_cache(maxsize=4)
def _shared_trace(T: int, n: int, trace_seed: int):
    """The grid's common trace, built once per process."""
    return cluster_load(T, n, rng=trace_seed)


def _opt_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - trace seed is an explicit param
    """OPT at one ε_offline on the shared trace."""
    trace = _shared_trace(params["T"], params["n"], params["trace_seed"])
    opt = offline_opt(trace, params["k"], params["eps_off"])
    return {
        "opt_phases": opt.phases,
        "opt_message_lb": opt.message_lb,
        "ratio_denominator": float(opt.ratio_denominator),
    }


def _online_cell(params: dict, seed: int) -> dict:  # noqa: ARG001
    """The Thm 5.8 monitor at one ε_online on the shared trace."""
    trace = _shared_trace(params["T"], params["n"], params["trace_seed"])
    k, eps_on = params["k"], params["eps_on"]
    algo = ApproxTopKMonitor(k, eps_on)
    res = MonitoringEngine(
        trace, algo, k=k, eps=eps_on, seed=params["channel_seed"], record_outputs=False
    ).run()
    return {"online_msgs": res.messages}


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 32
    T = 300 if quick else 1000
    eps_values = [0.02, 0.05, 0.1, 0.2] if quick else [0.01, 0.02, 0.05, 0.1, 0.2, 0.4]
    shared = {"T": T, "n": n, "k": k, "trace_seed": seed}

    opt_cells = [{**shared, "eps_off": eps_off} for eps_off in [0.0] + eps_values]
    opt_rows = zip_params(
        opt_cells, run_grid(sweep(EXP_ID, _opt_cell, cells=opt_cells, seed=seed), runner)
    )
    opt_table = Table(
        ["eps_offline", "opt_phases", "opt_message_lb"],
        title="T12a: OPT phases vs offline error",
    )
    opt_by_eps = {}
    for row in opt_rows:
        opt_table.add(row["eps_off"], row["opt_phases"], row["opt_message_lb"])
        opt_by_eps[row["eps_off"]] = row
    result.add_table("opt_phases", opt_table)
    phases = opt_table.column("opt_phases")
    assert phases == sorted(phases, reverse=True), "OPT must be monotone in ε"
    result.note(
        f"OPT phases fall {phases[0]} → {phases[-1]} as ε grows to "
        f"{eps_values[-1]}: the slack the online algorithms compete for."
    )

    online_cells = [{**shared, "eps_on": eps_on, "channel_seed": seed} for eps_on in eps_values]
    online_rows = zip_params(
        online_cells, run_grid(sweep(EXP_ID, _online_cell, cells=online_cells, seed=seed), runner)
    )
    grid = Table(
        ["eps_online", "online_msgs", "eps_offline", "ratio"],
        title="T12b: Thm 5.8 monitor vs OPT(ε_offline ≤ ε_online)",
    )
    for row in online_rows:
        eps_on, msgs = row["eps_on"], row["online_msgs"]
        for eps_off in [0.0] + [e for e in eps_values if e <= eps_on]:
            grid.add(eps_on, msgs, eps_off, msgs / opt_by_eps[eps_off]["ratio_denominator"])
    result.add_table("ratio_grid", grid)
    result.note(
        "Within one row (fixed online cost) the ratio grows as the "
        "adversary's ε approaches the online ε — the Section-5 regime "
        "where the Ω(σ/k) lower bound lives; against the exact adversary "
        "(ε_offline = 0) the same runs look strongly competitive (Thm 4.5)."
    )
    return result
