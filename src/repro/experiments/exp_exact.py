"""T3/F2 — Corollary 3.3 vs the [6] baseline on exact monitoring.

Sweeps Δ (and n) on random-walk workloads and compares the two exact
monitors, which differ only in violation handling: existence-protocol
detection with report-value updates (Cor. 3.3, O(k log n + log Δ)) versus
direct reports plus an O(log n) boundary re-probe per violation
([6]-style, O(k log n + log Δ·log n)).  The table reports totals and the
per-violation overhead, where the log n gap lives.

One sweep cell per (n, Δ) runs *both* monitors on the same trace, so the
pairing the comparison depends on survives parallel evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.core.exact_monitor import ExactTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.adversarial import PivotChaser
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T3"
TITLE = "Exact monitoring: Cor. 3.3 vs the [6] baseline (log Δ vs log Δ·log n)"


def _pair_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - trace/channel seeds are explicit params
    """Both exact monitors on one random-walk trace at (n, Δ)."""
    n, delta, T, k = params["n"], params["delta"], params["T"], params["k"]
    trace = make_distinct(
        random_walk(T, n, high=delta, step=max(1, delta // 256), rng=params["trace_seed"])
    )
    out = {}
    for use_existence, label in ((True, "cor33"), (False, "ipdps15")):
        algo = ExactTopKMonitor(k, use_existence=use_existence)
        engine = MonitoringEngine(
            trace, algo, k=k, eps=0.0, seed=params["channel_seed"], record_outputs=False
        )
        res = engine.run()
        out[f"msgs_{label}"] = res.messages
        if use_existence:
            out["phases"] = algo.phases
        else:
            out["reprobe"] = res.ledger.by_scope().get("boundary_reprobe", 0)
    return out


def _chaser_cell(params: dict, seed: int) -> dict:  # noqa: ARG001
    """Both exact monitors against the pivot-chasing adversary at one n."""
    n, T, k = params["n"], params["T"], params["k"]
    out = {}
    for use_existence, label in ((True, "cor33"), (False, "ipdps15")):
        source = PivotChaser(T, n=n, k=k, high=float(2**24))
        algo = ExactTopKMonitor(k, use_existence=use_existence)
        res = MonitoringEngine(
            source, algo, k=k, eps=0.0, seed=params["channel_seed"], record_outputs=False
        ).run()
        out[f"msgs_{label}"] = res.messages
    return out


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k = 4
    T = 300 if quick else 800
    ns = [16, 64] if quick else [16, 64, 256]
    deltas = [2**10, 2**14, 2**18] if quick else [2**8, 2**12, 2**16, 2**20, 2**24]

    cells = [
        {"n": n, "delta": delta, "T": T, "k": k,
         "trace_seed": seed + n, "channel_seed": seed}
        for n in ns
        for delta in deltas
    ]
    rows = zip_params(cells, run_grid(sweep(EXP_ID, _pair_cell, cells=cells, seed=seed), runner))

    table = Table(
        [
            "n", "log2_delta", "msgs_cor33", "msgs_ipdps15", "total_gap",
            "reprobe_msgs", "reprobe_share", "phases",
        ],
        title="T3: exact monitors across Δ and n (same trace, same phase logic)",
    )
    fig_series: dict[str, Series] = {}
    for n in ns:
        xs, y_new, y_old = [], [], []
        for row in (r for r in rows if r["n"] == n):
            msgs_new, msgs_old = row["msgs_cor33"], row["msgs_ipdps15"]
            table.add(
                n, float(np.log2(row["delta"])), msgs_new, msgs_old,
                msgs_old / max(1, msgs_new),
                row["reprobe"], row["reprobe"] / max(1, msgs_old), row["phases"],
            )
            xs.append(float(np.log2(row["delta"])))
            y_new.append(msgs_new)
            y_old.append(msgs_old)
        fig_series[f"cor3.3 n={n}"] = Series(f"cor3.3 n={n}", xs, y_new)
        fig_series[f"ipdps15 n={n}"] = Series(f"ipdps15 n={n}", xs, y_old)
    result.add_table("exact_sweep", table)

    gaps = [r["total_gap"] for r in table]
    result.note(
        "Random walks trigger few violations per phase, so the end-to-end "
        f"gap is a modest {min(gaps):.2f}–{max(gaps):.2f}× there; the "
        "adversarial table below isolates the per-violation factor."
    )

    # Adversarial view: the pivot chaser maximizes violations per phase,
    # so the per-violation Θ(log n) re-probe dominates and the gap tracks
    # log n — the worst case behind the [6] bound.
    chaser_ns = [8, 32] if quick else [8, 16, 32, 64, 128]
    chaser_cells = [
        {"n": n, "T": T, "k": k, "channel_seed": seed} for n in chaser_ns
    ]
    chaser_rows = zip_params(
        chaser_cells, run_grid(sweep(EXP_ID, _chaser_cell, cells=chaser_cells, seed=seed), runner)
    )
    chaser_table = Table(
        ["n", "log2_n", "msgs_cor33", "msgs_ipdps15", "gap"],
        title="T3b: same monitors under the pivot-chasing adversary (Δ=2^24)",
    )
    for row in chaser_rows:
        chaser_table.add(
            row["n"], float(np.log2(row["n"])), row["msgs_cor33"], row["msgs_ipdps15"],
            row["msgs_ipdps15"] / max(1, row["msgs_cor33"]),
        )
    result.add_table("chaser_sweep", chaser_table)
    chaser_gaps = chaser_table.column("gap")
    result.note(
        f"Under the chaser the gap reaches {max(chaser_gaps):.2f}× and "
        "grows with n — the log Δ·log n vs log Δ separation of Cor. 3.3."
    )
    biggest_n = ns[-1]
    result.add_figure(
        "F2_msgs_vs_logdelta",
        line_plot(
            [fig_series[f"cor3.3 n={biggest_n}"], fig_series[f"ipdps15 n={biggest_n}"]],
            title=f"exact monitoring cost vs log2 Δ (n={biggest_n})",
            xlabel="log2 Δ", ylabel="messages",
        ),
    )
    return result
