"""T1/F1 — Lemma 3.1: the EXISTENCE protocol costs O(1) messages.

Measures the expected message count of :meth:`Channel.existence_any` over
``n`` and ``b`` (the number of active nodes).  The paper's bound is
``E[X] ≤ 3 + 2/ln 2 ≈ 5.9`` for any ``n`` and ``b``; the table's claim is
that the measured mean is flat in *both* parameters, and the measured
round count stays ≤ ``log₂ n + 1``.

Sweep cells are one ``(n, b)`` pair each (trials batched inside the
cell); each cell draws from its own derived generator, so cells are
independent and the grid parallelizes/caches freely.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.util.ascii_plot import Series, histogram, line_plot
from repro.util.mathx import ceil_log2
from repro.util.rngtools import make_rng
from repro.util.tables import Table

EXP_ID = "T1"
TITLE = "EXISTENCE protocol: O(1) expected messages (Lemma 3.1)"
PAPER_BOUND = 3.0 + 2.0 / np.log(2.0)  # ≈ 5.885, from the Lemma 3.1 proof


def _measure_cell(params: dict, seed: int) -> dict:
    """One (n, b) point: message stats over ``trials`` protocol runs."""
    n, b, trials = params["n"], params["b"], params["trials"]
    rng = make_rng(seed)
    nodes = NodeArray(n)
    nodes.deliver(np.zeros(n))
    mask = np.zeros(n, dtype=bool)
    mask[:b] = True
    counts = []
    max_rounds = 0
    for _ in range(trials):
        ledger = CostLedger()
        channel = Channel(nodes, ledger, rng)
        fired = channel.existence_any(mask)
        assert fired == (b > 0)
        counts.append(ledger.messages)
        max_rounds = max(max_rounds, ledger.rounds)
    return {
        "mean_msgs": float(np.mean(counts)),
        "max_msgs": int(max(counts)),
        "max_rounds": int(max_rounds),
        "counts": [int(c) for c in counts] if params["keep_counts"] else [],
    }


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    ns = [16, 256, 4096] if quick else [16, 64, 256, 1024, 4096, 16384]
    trials = 400 if quick else 2000

    cells = [
        {"n": n, "b": b, "trials": trials, "keep_counts": n == ns[-1] and b == n // 2}
        for n in ns
        for b in sorted({1, int(np.sqrt(n)), n // 2, n})
    ]
    rows = zip_params(cells, run_grid(sweep(EXP_ID, _measure_cell, cells=cells, seed=seed), runner))

    table = Table(
        ["n", "b", "mean_msgs", "max_msgs", "max_rounds", "round_budget", "paper_bound"],
        title="T1: EXISTENCE messages vs n and active count b",
    )
    means_by_n: dict[int, list[tuple[int, float]]] = {}
    histogram_counts: list[int] = []
    for row in rows:
        n, b = row["n"], row["b"]
        table.add(n, b, row["mean_msgs"], row["max_msgs"], row["max_rounds"],
                  ceil_log2(n) + 1, PAPER_BOUND)
        means_by_n.setdefault(n, []).append((b, row["mean_msgs"]))
        if row["keep_counts"]:
            histogram_counts = row["counts"]
    result.add_table("messages", table)

    worst = max(r["mean_msgs"] for r in table)
    result.note(
        f"Largest mean over all (n, b): {worst:.2f} — below the Lemma 3.1 "
        f"bound {PAPER_BOUND:.2f}; rounds never exceeded log2(n)+1."
    )
    series = [
        Series(f"n={n}", [b for b, _ in pts], [m for _, m in pts])
        for n, pts in means_by_n.items()
    ]
    result.add_figure(
        "F1a_mean_vs_b",
        line_plot(series, title="mean EXISTENCE messages vs b", xlabel="b (active nodes)",
                  ylabel="mean messages", logx=True),
    )
    result.add_figure(
        "F1b_message_histogram",
        histogram(histogram_counts, title=f"message-count distribution (n={ns[-1]}, b=n/2)"),
    )
    return result
