"""T7 — Corollary 5.9: the ε/2-restricted adversary buys linearity in σ.

Same sensor-field workloads as T6, but the online algorithm is the
one-round-dense HalfEps monitor and the adversary is restricted to error
ε' = ε/2.  The per-phase cost should be *additively* linear in σ
(slope ≈ 1 in the table), and the end-to-end comparison with the full
DENSE machinery shows what the restriction buys.  One sweep cell per
band runs both monitors on the same trace.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import bound_cor59, fitted_slope
from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.workloads import sensor_field
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T7"
TITLE = "HalfEps monitor vs ε/2-restricted adversary (Cor. 5.9)"


def _pair_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """HalfEps and full DENSE on one sensor-field trace at one band."""
    T, n, k = params["T"], params["n"], params["k"]
    eps, band = params["eps"], params["band"]
    trace = sensor_field(T, n, k, eps=eps, band=band, wobble=0.9,
                         rng=params["trace_seed"])
    sigma = trace.sigma_max(k, eps)

    halfeps = HalfEpsMonitor(k, eps)
    res_h = MonitoringEngine(
        trace, halfeps, k=k, eps=eps, seed=params["channel_seed"], record_outputs=False
    ).run()
    dense = ApproxTopKMonitor(k, eps)
    res_d = MonitoringEngine(
        trace, dense, k=k, eps=eps, seed=params["channel_seed"], record_outputs=False
    ).run()

    opt = offline_opt(trace, k, eps / 2)  # the restricted adversary
    return {
        "sigma": int(sigma),
        "halfeps_msgs": res_h.messages,
        "halfeps_per_phase": res_h.messages / max(1, halfeps.phases),
        "dense_msgs": res_d.messages,
        "opt_halfeps_lb": opt.message_lb,
        "ratio_vs_halfeps_opt": res_h.messages / opt.ratio_denominator,
        "cor59_bound": float(bound_cor59(sigma, k, n, trace.delta, eps)),
    }


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 64
    T = 300 if quick else 800
    eps = 0.2

    bands = [8, 16, 32] if quick else [6, 8, 12, 16, 24, 32, 48, 64]
    cells = [
        {"band": band, "T": T, "n": n, "k": k, "eps": eps,
         "trace_seed": seed + band, "channel_seed": seed}
        for band in bands
    ]
    rows = zip_params(cells, run_grid(sweep(EXP_ID, _pair_cell, cells=cells, seed=seed), runner))

    table = Table(
        [
            "sigma", "halfeps_msgs", "halfeps_per_phase", "dense_msgs",
            "opt_halfeps_lb", "ratio_vs_halfeps_opt", "cor59_bound",
        ],
        title=f"T7: HalfEps vs full DENSE across σ (k={k}, n={n}, ε={eps}, ε'={eps/2})",
    )
    xs, ys = [], []
    for row in rows:
        table.add(
            row["sigma"], row["halfeps_msgs"], row["halfeps_per_phase"],
            row["dense_msgs"], row["opt_halfeps_lb"], row["ratio_vs_halfeps_opt"],
            row["cor59_bound"],
        )
        xs.append(float(row["sigma"]))
        ys.append(row["halfeps_per_phase"])
    result.add_table("halfeps_sweep", table)

    slope = fitted_slope([np.log2(x) for x in xs], [np.log2(max(y, 1e-9)) for y in ys])
    result.note(
        f"log-log slope of HalfEps per-phase cost vs σ: {slope:.2f} — the "
        "additive O(σ) of Cor. 5.9 (DENSE's is super-linear, see T6)."
    )
    savings = [r["dense_msgs"] / max(1, r["halfeps_msgs"]) for r in table]
    result.note(
        f"Full DENSE costs {min(savings):.1f}–{max(savings):.1f}× more on "
        "the same traces — the price of competing with an unrestricted "
        "ε-adversary."
    )
    result.add_figure(
        "F7_per_phase_vs_sigma",
        line_plot(
            [Series("halfeps msgs/phase", xs, ys),
             Series("sigma ref", xs, [ys[0] * (x / xs[0]) for x in xs])],
            title="HalfEps per-phase cost vs σ (log-log)",
            xlabel="σ", ylabel="messages/phase", logx=True, logy=True,
        ),
    )
    return result
