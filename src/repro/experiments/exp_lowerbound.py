"""T5/F4 — Theorem 5.1: the Ω(σ/k) lower bound, measured.

The adaptive adversary plays its drop-and-reset epochs against the
Theorem 5.8 monitor; the ratio against the explicit offline strategy
((k+1) messages per epoch) must grow at least linearly in σ — for *every*
online algorithm, which is the theorem's point.  The floor column is the
theoretical (σ−k)/(k+1).  One sweep cell per (algorithm, k, σ).
"""

from __future__ import annotations

from repro.analysis.bounds import lower_bound_ratio
from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.adversarial import LowerBoundAdversary
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T5"
TITLE = "Lower bound Ω(σ/k) against an approximate adversary (Thm 5.1)"

EPS = 0.2

#: Monitor factories by table label (module-level so cells stay picklable).
FACTORIES = {
    "approx-monitor": lambda k: ApproxTopKMonitor(k, EPS),
    "halfeps-monitor": lambda k: HalfEpsMonitor(k, EPS),
}


def _play_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """One (algorithm, k, σ) bout against the Thm 5.1 adversary."""
    n, k, sigma = params["n"], params["k"], params["sigma"]
    adv = LowerBoundAdversary(n, k, sigma, eps=EPS, epochs=params["epochs"],
                              rng=params["adv_seed"])
    algo = FACTORIES[params["algorithm"]](k)
    res = MonitoringEngine(
        adv, algo, k=k, eps=EPS, seed=params["channel_seed"], record_outputs=False
    ).run()
    opt = offline_opt(adv.trace, k, EPS)
    return {
        "online_msgs": res.messages,
        "forced_drops": adv.forced_drops,
        "offline_explicit": adv.offline_reference_cost(),
        "opt_lb": opt.message_lb,
    }


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    n = 48
    epochs = 3 if quick else 5
    ks = [2, 4] if quick else [1, 2, 4, 8]

    cells = [
        {"algorithm": name, "k": k, "sigma": sigma, "n": n, "epochs": epochs,
         "adv_seed": seed, "channel_seed": seed}
        for name in FACTORIES
        for k in ks
        for sigma in sorted({s for s in (k + 2, n // 4, n // 2, n) if s > k})
    ]
    rows = zip_params(cells, run_grid(sweep(EXP_ID, _play_cell, cells=cells, seed=seed), runner))

    table = Table(
        [
            "algorithm", "k", "sigma", "online_msgs", "forced_drops",
            "offline_explicit", "opt_lb", "ratio_vs_explicit", "floor_sigma_over_k",
        ],
        title="T5: measured ratio on the Thm 5.1 instance",
    )
    fig_points: dict[int, tuple[list, list]] = {}
    for row in rows:
        ratio = row["online_msgs"] / row["offline_explicit"]
        table.add(
            row["algorithm"], row["k"], row["sigma"], row["online_msgs"],
            row["forced_drops"], row["offline_explicit"], row["opt_lb"],
            ratio, lower_bound_ratio(row["sigma"], row["k"]),
        )
        if row["algorithm"] == "approx-monitor":
            xs, ys = fig_points.setdefault(row["k"], ([], []))
            xs.append(row["sigma"])
            ys.append(ratio)
    result.add_table("lower_bound", table)

    violations = [
        r for r in table if r["ratio_vs_explicit"] < 0.9 * r["floor_sigma_over_k"]
    ]
    result.note(
        "Every measured ratio sits on or above the theoretical floor "
        f"(σ−k)/(k+1); violations: {len(violations)}."
    )
    result.add_figure(
        "F4_ratio_vs_sigma",
        line_plot([Series(f"k={k}", xs, ys) for k, (xs, ys) in fig_points.items()],
                  title="competitive ratio vs σ (approx-monitor)",
                  xlabel="σ", ylabel="ratio vs explicit offline"),
    )
    return result
