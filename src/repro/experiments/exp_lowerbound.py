"""T5/F4 — Theorem 5.1: the Ω(σ/k) lower bound, measured.

The adaptive adversary plays its drop-and-reset epochs against the
Theorem 5.8 monitor; the ratio against the explicit offline strategy
((k+1) messages per epoch) must grow at least linearly in σ — for *every*
online algorithm, which is the theorem's point.  The floor column is the
theoretical (σ−k)/(k+1).
"""

from __future__ import annotations

from repro.analysis.bounds import lower_bound_ratio
from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.streams.adversarial import LowerBoundAdversary
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T5"
TITLE = "Lower bound Ω(σ/k) against an approximate adversary (Thm 5.1)"

EPS = 0.2


def _play(n: int, k: int, sigma: int, factory, epochs: int, seed: int):
    adv = LowerBoundAdversary(n, k, sigma, eps=EPS, epochs=epochs, rng=seed)
    algo = factory(k)
    res = MonitoringEngine(adv, algo, k=k, eps=EPS, seed=seed, record_outputs=False).run()
    opt = offline_opt(adv.trace, k, EPS)
    return res.messages, adv, opt


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    n = 48
    epochs = 3 if quick else 5
    ks = [2, 4] if quick else [1, 2, 4, 8]
    factories = {
        "approx-monitor": lambda k: ApproxTopKMonitor(k, EPS),
        "halfeps-monitor": lambda k: HalfEpsMonitor(k, EPS),
    }

    table = Table(
        [
            "algorithm", "k", "sigma", "online_msgs", "forced_drops",
            "offline_explicit", "opt_lb", "ratio_vs_explicit", "floor_sigma_over_k",
        ],
        title="T5: measured ratio on the Thm 5.1 instance",
    )
    fig_series = []
    for name, factory in factories.items():
        for k in ks:
            sigmas = [s for s in (k + 2, n // 4, n // 2, n) if s > k]
            xs, ys = [], []
            for sigma in sorted(set(sigmas)):
                msgs, adv, opt = _play(n, k, sigma, factory, epochs, seed)
                ratio = msgs / adv.offline_reference_cost()
                table.add(
                    name, k, sigma, msgs, adv.forced_drops,
                    adv.offline_reference_cost(), opt.message_lb,
                    ratio, lower_bound_ratio(sigma, k),
                )
                xs.append(sigma)
                ys.append(ratio)
            if name == "approx-monitor":
                fig_series.append(Series(f"k={k}", xs, ys))
    result.add_table("lower_bound", table)

    violations = [
        r for r in table if r["ratio_vs_explicit"] < 0.9 * r["floor_sigma_over_k"]
    ]
    result.note(
        "Every measured ratio sits on or above the theoretical floor "
        f"(σ−k)/(k+1); violations: {len(violations)}."
    )
    result.add_figure(
        "F4_ratio_vs_sigma",
        line_plot(fig_series, title="competitive ratio vs σ (approx-monitor)",
                  xlabel="σ", ylabel="ratio vs explicit offline"),
    )
    return result
