"""T2 — Lemma 2.6: max-finding with O(log n) expected messages.

Measures :func:`repro.core.primitives.max_protocol` over ``n`` and checks
linearity of the mean message count in ``log₂ n`` (fitted slope and
correlation reported in the table footer note).  One sweep cell per
``n`` (and per probe width ``m``), each with its own derived generator.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import correlation, fitted_slope
from repro.core.primitives import max_protocol, top_m_probe
from repro.experiments.common import ExperimentResult
from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.util.ascii_plot import Series, line_plot
from repro.util.rngtools import make_rng
from repro.util.tables import Table

EXP_ID = "T2"
TITLE = "Max protocol: O(log n) expected messages (Lemma 2.6)"


def _max_cell(params: dict, seed: int) -> dict:
    """Mean max-protocol cost at one ``n``."""
    n, trials = params["n"], params["trials"]
    rng = make_rng(seed)
    total = 0
    for _ in range(trials):
        values = rng.permutation(n).astype(float)
        nodes = NodeArray(n)
        nodes.deliver(values)
        ledger = CostLedger()
        channel = Channel(nodes, ledger, rng)
        node, value = max_protocol(channel)
        assert value == n - 1 and values[node] == value
        total += ledger.messages
    return {"mean_msgs": total / trials}


def _probe_cell(params: dict, seed: int) -> dict:
    """Mean top-(m) probe cost at one ``(n, m)``."""
    n, m, trials = params["n"], params["m"], params["trials"]
    rng = make_rng(seed)
    total = 0
    for _ in range(trials):
        values = rng.permutation(n).astype(float)
        nodes = NodeArray(n)
        nodes.deliver(values)
        ledger = CostLedger()
        channel = Channel(nodes, ledger, rng)
        probe = top_m_probe(channel, m)
        assert [v for _, v in probe] == list(range(n - 1, n - 1 - m, -1))
        total += ledger.messages
    return {"mean_msgs": total / trials}


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    ns = [16, 64, 256, 1024] if quick else [16, 64, 256, 1024, 4096, 16384]
    trials = 60 if quick else 300

    max_spec = sweep(EXP_ID, _max_cell, {"n": ns, "trials": [trials]}, seed=seed)
    max_rows = zip_params((c.as_dict() for c in max_spec.cells), run_grid(max_spec, runner))

    table = Table(
        ["n", "log2_n", "mean_msgs", "msgs_per_log_n"],
        title="T2: max protocol messages vs n",
    )
    logs, means = [], []
    for row in max_rows:
        n, mean = row["n"], row["mean_msgs"]
        table.add(n, float(np.log2(n)), mean, mean / np.log2(n))
        logs.append(float(np.log2(n)))
        means.append(mean)
    result.add_table("max_protocol", table)

    slope = fitted_slope(logs, means)
    corr = correlation(logs, means)
    result.note(
        f"mean messages ≈ {slope:.2f}·log2(n) + c with correlation "
        f"r = {corr:.3f} — the Lemma 2.6 logarithmic scaling."
    )

    probe_spec = sweep(
        EXP_ID,
        _probe_cell,
        {"m": [1, 2, 4, 8], "n": [ns[-1]], "trials": [max(10, trials // 4)]},
        seed=seed,
    )
    probe_rows = zip_params((c.as_dict() for c in probe_spec.cells), run_grid(probe_spec, runner))
    probe_table = Table(
        ["n", "m", "mean_msgs", "msgs_per_m_log_n"],
        title="T2b: top-(m) probe messages (O(m log n), the k+1 probe)",
    )
    for row in probe_rows:
        n, m, mean = row["n"], row["m"], row["mean_msgs"]
        probe_table.add(n, m, mean, mean / (m * np.log2(n)))
    result.add_table("top_m_probe", probe_table)

    result.add_figure(
        "F2_msgs_vs_logn",
        line_plot(
            [Series("measured", logs, means),
             Series("slope*log n", logs, [slope * x for x in logs])],
            title="max protocol: messages vs log2(n)",
            xlabel="log2 n", ylabel="mean messages",
        ),
    )
    return result
