"""T13/T14 — ablations of the *model* choices the paper builds on.

**T13 (broadcast channel).**  The paper uses Cormode et al.'s broadcast
enhancement: one server message reaches all nodes at unit cost.  Pricing
a broadcast at ``n`` unicasts instead (the plain model) re-weights every
algorithm's bill; the filter-based monitors — whose per-round filter
updates ride on broadcasts — lose the most, quantifying how load-bearing
the broadcast channel is for the paper's bounds.

**T14 (existence-protocol base).**  Lemma 3.1 sends with probability
``2^r / n`` in round ``r``.  Generalizing to ``b^r / n`` trades rounds
(``log_b n``) against messages (more overshoot per round for larger b):
the table shows the paper's ``b = 2`` sits at the knee of the curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.channel import Channel
from repro.model.engine import MonitoringEngine
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.streams.transforms import make_distinct
from repro.streams.workloads import cluster_load
from repro.util.ascii_plot import Series, line_plot
from repro.util.rngtools import make_rng
from repro.util.tables import Table

EXP_ID = "T13"
TITLE = "Model ablations: broadcast pricing (T13) and existence base (T14)"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 32
    T = 250 if quick else 800
    eps = 0.1
    raw = cluster_load(T, n, noise=25.0, ar_coeff=0.96, rng=seed)
    distinct = make_distinct(raw)

    # --- T13: broadcast pricing ------------------------------------------ #
    t13 = Table(
        ["algorithm", "broadcast_cost", "total_cost", "broadcast_count", "cost_vs_unit"],
        title=f"T13: total cost under broadcast pricing (n={n})",
    )
    for name, factory, trace, algo_eps in [
        ("exact-cor3.3", lambda: ExactTopKMonitor(k), distinct, 0.0),
        ("approx-monitor", lambda: ApproxTopKMonitor(k, eps), raw, eps),
    ]:
        unit_cost = None
        for bcost in (1, int(np.sqrt(n)), n):
            res = MonitoringEngine(
                trace, factory(), k=k, eps=algo_eps, seed=seed,
                record_outputs=False, broadcast_cost=bcost,
            ).run()
            if unit_cost is None:
                unit_cost = res.messages
            t13.add(name, bcost, res.messages, res.ledger.broadcasts,
                    res.messages / unit_cost)
    result.add_table("broadcast_pricing", t13)
    worst = max(r["cost_vs_unit"] for r in t13)
    result.note(
        f"Pricing broadcasts at n unicasts inflates the bill up to "
        f"{worst:.1f}× — the broadcast channel carries the per-round "
        "filter updates that every bound in the paper relies on."
    )

    # --- T14: existence base --------------------------------------------- #
    t14 = Table(
        ["base", "mean_msgs", "mean_rounds", "max_rounds"],
        title="T14: existence protocol with send probability b^r / n (n=1024, b sweep)",
    )
    rng = make_rng(seed + 1)
    n_exist = 1024
    trials = 400 if quick else 2000
    bases = [1.3, 2.0, 4.0, 16.0]
    xs, msg_y, round_y = [], [], []
    for base in bases:
        nodes = NodeArray(n_exist)
        nodes.deliver(np.zeros(n_exist))
        mask = np.zeros(n_exist, dtype=bool)
        mask[: n_exist // 2] = True
        msgs = rounds = 0
        for _ in range(trials):
            ledger = CostLedger()
            channel = Channel(nodes, ledger, rng, existence_base=base)
            assert channel.existence_any(mask)
            msgs += ledger.messages
            rounds += ledger.rounds
        t14.add(base, msgs / trials, rounds / trials, channel._gamma + 1)
        xs.append(base)
        msg_y.append(msgs / trials)
        round_y.append(rounds / trials)
    result.add_table("existence_base", t14)
    result.note(
        "Larger bases cut rounds (log_b n) but overshoot harder in the "
        "firing round; b = 2 keeps both the O(1)-message and the "
        "O(log n)-round guarantees — the Lemma 3.1 design point."
    )
    result.add_figure(
        "F13_base_tradeoff",
        line_plot(
            [Series("mean messages", xs, msg_y), Series("mean rounds", xs, round_y)],
            title="existence protocol: messages vs rounds across b",
            xlabel="probability base b", ylabel="count", logx=True,
        ),
    )
    return result
