"""T13/T14 — ablations of the *model* choices the paper builds on.

**T13 (broadcast channel).**  The paper uses Cormode et al.'s broadcast
enhancement: one server message reaches all nodes at unit cost.  Pricing
a broadcast at ``n`` unicasts instead (the plain model) re-weights every
algorithm's bill; the filter-based monitors — whose per-round filter
updates ride on broadcasts — lose the most, quantifying how load-bearing
the broadcast channel is for the paper's bounds.

**T14 (existence-protocol base).**  Lemma 3.1 sends with probability
``2^r / n`` in round ``r``.  Generalizing to ``b^r / n`` trades rounds
(``log_b n``) against messages (more overshoot per round for larger b):
the table shows the paper's ``b = 2`` sits at the knee of the curve.

One sweep cell per (algorithm, broadcast price) for T13 and per base for
T14 (trials batched inside the cell with its derived generator).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.channel import Channel
from repro.model.engine import MonitoringEngine
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.transforms import make_distinct
from repro.streams.workloads import cluster_load
from repro.util.ascii_plot import Series, line_plot
from repro.util.rngtools import make_rng
from repro.util.tables import Table

EXP_ID = "T13"
TITLE = "Model ablations: broadcast pricing (T13) and existence base (T14)"

#: T13 monitors by label: (factory(k, eps), needs_distinct_trace).
_MONITORS = {
    "exact-cor3.3": (lambda k, eps: ExactTopKMonitor(k), True),
    "approx-monitor": (lambda k, eps: ApproxTopKMonitor(k, eps), False),
}


@lru_cache(maxsize=4)
def _shared_traces(T: int, n: int, trace_seed: int):
    """The T13 trace pair (raw, distinct), built once per process."""
    raw = cluster_load(T, n, noise=25.0, ar_coeff=0.96, rng=trace_seed)
    return raw, make_distinct(raw)


def _pricing_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """One (algorithm, broadcast price) bill on the shared trace."""
    T, n, k, eps = params["T"], params["n"], params["k"], params["eps"]
    raw, distinct = _shared_traces(T, n, params["trace_seed"])
    factory, needs_distinct = _MONITORS[params["algorithm"]]
    trace = distinct if needs_distinct else raw
    res = MonitoringEngine(
        trace, factory(k, eps), k=k, eps=0.0 if needs_distinct else eps,
        seed=params["channel_seed"], record_outputs=False,
        broadcast_cost=params["broadcast_cost"],
    ).run()
    return {"total_cost": res.messages, "broadcast_count": res.ledger.broadcasts}


def _base_cell(params: dict, seed: int) -> dict:
    """Existence-protocol cost at one probability base ``b``."""
    n_exist, trials, base = params["n"], params["trials"], params["base"]
    rng = make_rng(seed)
    nodes = NodeArray(n_exist)
    nodes.deliver(np.zeros(n_exist))
    mask = np.zeros(n_exist, dtype=bool)
    mask[: n_exist // 2] = True
    msgs = rounds = 0
    gamma = 0
    for _ in range(trials):
        ledger = CostLedger()
        channel = Channel(nodes, ledger, rng, existence_base=base)
        fired = channel.existence_any(mask)
        assert fired  # half the nodes are active, so it must fire
        msgs += ledger.messages
        rounds += ledger.rounds
        gamma = channel._gamma
    return {
        "mean_msgs": msgs / trials,
        "mean_rounds": rounds / trials,
        "max_rounds": gamma + 1,
    }


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 4, 32
    T = 250 if quick else 800
    eps = 0.1

    # --- T13: broadcast pricing ------------------------------------------ #
    prices = [1, int(np.sqrt(n)), n]
    pricing_cells = [
        {"algorithm": name, "broadcast_cost": bcost, "T": T, "n": n, "k": k,
         "eps": eps, "trace_seed": seed, "channel_seed": seed}
        for name in _MONITORS
        for bcost in prices
    ]
    pricing_rows = zip_params(
        pricing_cells,
        run_grid(sweep(EXP_ID, _pricing_cell, cells=pricing_cells, seed=seed), runner),
    )
    t13 = Table(
        ["algorithm", "broadcast_cost", "total_cost", "broadcast_count", "cost_vs_unit"],
        title=f"T13: total cost under broadcast pricing (n={n})",
    )
    unit_costs = {
        row["algorithm"]: row["total_cost"]
        for row in pricing_rows
        if row["broadcast_cost"] == 1
    }
    for row in pricing_rows:
        t13.add(row["algorithm"], row["broadcast_cost"], row["total_cost"],
                row["broadcast_count"], row["total_cost"] / unit_costs[row["algorithm"]])
    result.add_table("broadcast_pricing", t13)
    worst = max(r["cost_vs_unit"] for r in t13)
    result.note(
        f"Pricing broadcasts at n unicasts inflates the bill up to "
        f"{worst:.1f}× — the broadcast channel carries the per-round "
        "filter updates that every bound in the paper relies on."
    )

    # --- T14: existence base --------------------------------------------- #
    n_exist = 1024
    trials = 400 if quick else 2000
    bases = [1.3, 2.0, 4.0, 16.0]
    base_cells = [{"base": base, "n": n_exist, "trials": trials} for base in bases]
    base_rows = zip_params(
        base_cells, run_grid(sweep(EXP_ID, _base_cell, cells=base_cells, seed=seed), runner)
    )
    t14 = Table(
        ["base", "mean_msgs", "mean_rounds", "max_rounds"],
        title="T14: existence protocol with send probability b^r / n (n=1024, b sweep)",
    )
    xs, msg_y, round_y = [], [], []
    for row in base_rows:
        t14.add(row["base"], row["mean_msgs"], row["mean_rounds"], row["max_rounds"])
        xs.append(row["base"])
        msg_y.append(row["mean_msgs"])
        round_y.append(row["mean_rounds"])
    result.add_table("existence_base", t14)
    result.note(
        "Larger bases cut rounds (log_b n) but overshoot harder in the "
        "firing round; b = 2 keeps both the O(1)-message and the "
        "O(log n)-round guarantees — the Lemma 3.1 design point."
    )
    result.add_figure(
        "F13_base_tradeoff",
        line_plot(
            [Series("mean messages", xs, msg_y), Series("mean rounds", xs, round_y)],
            title="existence protocol: messages vs rounds across b",
            xlabel="probability base b", ylabel="count", logx=True,
        ),
    )
    return result
