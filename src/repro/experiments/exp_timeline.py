"""T8/F6 — the motivating scenario: a web-cluster load balancer.

Cumulative communication over time for the whole algorithm zoo on the
cluster-load workload (diurnal drift + AR noise + flash crowds), plus the
offline optimum's explicit cost.  This is the "why filters, why ε" figure
the paper's introduction gestures at.

One sweep cell per zoo member; each cell rebuilds the shared trace from
the ``trace_seed`` param (identical across cells), runs its algorithm,
and returns the total plus the downsampled cumulative curve.

The trace is resolved through :mod:`repro.streams.registry`, and the
workload rides in each cell as plain data (slug + canonical-JSON
params) — so the same zoo sweeps any registered scenario::

    python -m repro.experiments --only timeline \
        --workload zipf --workload-param alpha=1.2
"""

from __future__ import annotations

import json
from functools import lru_cache

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.core.naive import SendAlwaysMonitor, SendOnChangeMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.schedule import OfflinePlayer, build_schedule
from repro.runner import RunnerConfig, canonical_json, run_grid, sweep, zip_params
from repro.streams import registry
from repro.streams.transforms import make_distinct
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T8"
TITLE = "Web-cluster timeline: cumulative messages of the algorithm zoo"

#: The default scenario: the paper's web-cluster load with smooth AR
#: noise (see the note in run()).
DEFAULT_WORKLOAD = "cluster"
DEFAULT_WORKLOAD_PARAMS = {"noise": 20.0, "ar_coeff": 0.97}

#: Zoo members: label -> (factory(k, eps), needs_distinct_trace).
#: "opt" is special-cased in the cell (it replays the Prop. 2.4 plan).
_ZOO = {
    "send-always": (lambda k, eps: SendAlwaysMonitor(k), True),
    "send-on-change": (lambda k, eps: SendOnChangeMonitor(k), True),
    "exact-ipdps15": (lambda k, eps: ExactTopKMonitor(k, use_existence=False), True),
    "exact-cor3.3": (lambda k, eps: ExactTopKMonitor(k), True),
    "approx": (lambda k, eps: ApproxTopKMonitor(k, eps), False),
    "halfeps": (lambda k, eps: HalfEpsMonitor(k, eps), False),
    "opt": (None, False),
}


@lru_cache(maxsize=4)
def _shared_trace(T: int, n: int, trace_seed: int, workload: str, workload_params: str):
    """The zoo's common trace, built once per process (cells stay pure:
    the cache key is exactly the params the trace derives from)."""
    return registry.make(workload, T, n, rng=trace_seed, **json.loads(workload_params))


def _zoo_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """One zoo member's full run on the shared registry-resolved trace."""
    T, n, k, eps = params["T"], params["n"], params["k"], params["eps"]
    raw = _shared_trace(
        T, n, params["trace_seed"], params["workload"], params["workload_params"]
    )
    member = params["member"]
    factory, needs_distinct = _ZOO[member]
    if member == "opt":
        # The offline optimum as a *real run*: the Prop. 2.4 two-filter
        # plan replayed through the same engine and ledger as everyone.
        algo = OfflinePlayer(build_schedule(raw, k, eps))
        trace = raw
    else:
        algo = factory(k, eps)
        trace = make_distinct(raw) if needs_distinct else raw
    res = MonitoringEngine(
        trace, algo, k=k, eps=params["algo_eps"], seed=params["channel_seed"],
        record_outputs=False,
    ).run()
    stride = max(1, T // 60)
    return {
        "total_msgs": res.messages,
        "curve": res.cumulative_messages[::stride].tolist(),
        "stride": stride,
    }


def run(
    quick: bool = True,
    seed: int = 0,
    runner: RunnerConfig | None = None,
    workload: str | None = None,
    workload_params: dict | None = None,
) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k = 8
    n = 48
    T = 400 if quick else 1500
    eps = 0.05
    if workload is None:
        # The default scenario keeps its curated smooth-noise params even
        # when the caller tweaks individual ones (user values win).
        workload = DEFAULT_WORKLOAD
        workload_params = {**DEFAULT_WORKLOAD_PARAMS, **(workload_params or {})}
    # Fail fast — before any sweep cell — on unknown slugs or params the
    # factory would reject (raises registry.WorkloadParamError).
    registry.validate_params(workload, n, workload_params or {})
    wparams_json = canonical_json(workload_params or {})
    # Smooth AR noise: the "marginal changes (e.g. due to noise)" regime
    # the introduction motivates.  With rougher noise (the cluster_load
    # defaults) rank-k churn is so dense that even exact filter-based
    # monitoring loses to central collection — exactly the failure mode
    # that motivates the ε-relaxation; T12 covers that regime.
    labels = {
        "send-always": "send-always",
        "send-on-change": "send-on-change",
        "exact-ipdps15": "exact-ipdps15",
        "exact-cor3.3": "exact-cor3.3",
        "approx": f"approx(ε={eps})",
        "halfeps": f"halfeps(ε={eps})",
        "opt": "OPT(ε) replayed",
    }
    cells = [
        {"member": member, "T": T, "n": n, "k": k, "eps": eps,
         "algo_eps": 0.0 if _ZOO[member][1] else eps,
         "workload": workload, "workload_params": wparams_json,
         "trace_seed": seed, "channel_seed": seed}
        for member in _ZOO
    ]
    rows = zip_params(cells, run_grid(sweep(EXP_ID, _zoo_cell, cells=cells, seed=seed), runner))

    table = Table(
        ["algorithm", "total_msgs", "msgs_per_step", "vs_send_always"],
        title=f"T8: total communication on {workload} load (T={T}, n={n}, k={k})",
    )
    curves = []
    baseline_total = next(r for r in rows if r["member"] == "send-always")["total_msgs"]
    for row in rows:
        table.add(labels[row["member"]], row["total_msgs"], row["total_msgs"] / T,
                  row["total_msgs"] / baseline_total)
        curves.append(
            Series(labels[row["member"]], list(range(0, T, row["stride"])), row["curve"])
        )
    result.add_table("totals", table)

    result.add_figure(
        "F6_cumulative",
        line_plot(curves, title="cumulative messages over time",
                  xlabel="time step", ylabel="messages", height=24),
    )
    ordering = [r["algorithm"] for r in table]
    result.note(
        "Expected ordering holds: naive baselines ≥ exact filter-based ≥ "
        f"ε-approximate ≥ OPT.  Algorithms, cheapest-last: {ordering}."
    )
    return result
