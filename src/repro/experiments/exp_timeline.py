"""T8/F6 — the motivating scenario: a web-cluster load balancer.

Cumulative communication over time for the whole algorithm zoo on the
cluster-load workload (diurnal drift + AR noise + flash crowds), plus the
offline optimum's explicit cost.  This is the "why filters, why ε" figure
the paper's introduction gestures at.
"""

from __future__ import annotations

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.core.naive import SendAlwaysMonitor, SendOnChangeMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.schedule import OfflinePlayer, build_schedule
from repro.streams.transforms import make_distinct
from repro.streams.workloads import cluster_load
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T8"
TITLE = "Web-cluster timeline: cumulative messages of the algorithm zoo"


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k = 8
    n = 48
    T = 400 if quick else 1500
    eps = 0.05
    # Smooth AR noise: the "marginal changes (e.g. due to noise)" regime
    # the introduction motivates.  With rougher noise (the cluster_load
    # defaults) rank-k churn is so dense that even exact filter-based
    # monitoring loses to central collection — exactly the failure mode
    # that motivates the ε-relaxation; T12 covers that regime.
    raw = cluster_load(T, n, noise=20.0, ar_coeff=0.97, rng=seed)
    exact_trace = make_distinct(raw)  # exact algorithms need distinctness

    zoo = [
        ("send-always", SendAlwaysMonitor(k), exact_trace, 0.0),
        ("send-on-change", SendOnChangeMonitor(k), exact_trace, 0.0),
        ("exact-ipdps15", ExactTopKMonitor(k, use_existence=False), exact_trace, 0.0),
        ("exact-cor3.3", ExactTopKMonitor(k), exact_trace, 0.0),
        (f"approx(ε={eps})", ApproxTopKMonitor(k, eps), raw, eps),
        (f"halfeps(ε={eps})", HalfEpsMonitor(k, eps), raw, eps),
    ]

    # The offline optimum as a *real run*: the Prop. 2.4 two-filter plan
    # replayed through the same engine and ledger as everyone else.
    schedule = build_schedule(raw, k, eps)
    zoo.append(("OPT(ε) replayed", OfflinePlayer(schedule), raw, eps))

    table = Table(
        ["algorithm", "total_msgs", "msgs_per_step", "vs_send_always"],
        title=f"T8: total communication on cluster load (T={T}, n={n}, k={k})",
    )
    curves = []
    baseline_total = None
    for name, algo, trace, algo_eps in zoo:
        res = MonitoringEngine(
            trace, algo, k=k, eps=algo_eps, seed=seed, record_outputs=False
        ).run()
        cum = res.cumulative_messages
        if baseline_total is None:
            baseline_total = res.messages
        table.add(name, res.messages, res.messages / T, res.messages / baseline_total)
        stride = max(1, T // 60)
        curves.append(Series(name, list(range(0, T, stride)), cum[::stride].tolist()))
    result.add_table("totals", table)

    result.add_figure(
        "F6_cumulative",
        line_plot(curves, title="cumulative messages over time",
                  xlabel="time step", ylabel="messages", height=24),
    )
    ordering = [r["algorithm"] for r in table]
    result.note(
        "Expected ordering holds: naive baselines ≥ exact filter-based ≥ "
        f"ε-approximate ≥ OPT.  Algorithms, cheapest-last: {ordering}."
    )
    return result
