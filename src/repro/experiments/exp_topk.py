"""T4/F3 — Theorem 4.5: TOP-K-PROTOCOL against the exact adversary.

Two sweeps on random walks with distinct values:

- Δ at fixed ε — the competitive ratio should be essentially flat
  (the Δ-dependence is log log Δ),
- ε at fixed Δ — the ratio grows like log(1/ε).

The denominator is the exact-adversary OPT (greedy phase lower bound with
ε_offline = 0); the bound column is Thm 4.5's k·log n + log log Δ +
log 1/ε shape.

Every cell rebuilds the *same* master walk from the shared
``master_seed`` param and rescales it to its own Δ — ranks (and hence
OPT's work) stay identical across the sweep even under parallel
evaluation, isolating the pure Δ- and ε-dependences.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.bounds import bound_topk
from repro.core.topk_protocol import TopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.runner import RunnerConfig, run_grid, sweep, zip_params
from repro.streams.base import Trace
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T4"
TITLE = "TOP-K-PROTOCOL vs exact adversary (Thm 4.5)"

_MASTER_HIGH = 2**20


@lru_cache(maxsize=4)
def _master_walk(T: int, n: int, master_seed: int):
    """The shared master walk, built once per process."""
    return random_walk(T, n, high=_MASTER_HIGH, step=_MASTER_HIGH // 512,
                       rng=master_seed)


def _ratio_cell(params: dict, seed: int) -> dict:  # noqa: ARG001 - seeds are explicit params
    """One (Δ, ε) point: TOP-K-PROTOCOL cost vs the exact-adversary OPT."""
    T, n, k = params["T"], params["n"], params["k"]
    delta, eps = params["delta"], params["eps"]
    master = _master_walk(T, n, params["master_seed"])
    trace = make_distinct(Trace(np.round(master.data * (delta / _MASTER_HIGH))))
    algo = TopKMonitor(k, eps)
    res = MonitoringEngine(
        trace, algo, k=k, eps=eps, seed=params["channel_seed"], record_outputs=False
    ).run()
    opt = offline_opt(trace, k, 0.0)  # the exact adversary of Sect. 4
    return {
        "ratio": res.messages / opt.ratio_denominator,
        "online_msgs": res.messages,
        "opt_lb": opt.message_lb,
        "bound": float(bound_topk(k, n, delta, eps)),
    }


def run(quick: bool = True, seed: int = 0, runner: RunnerConfig | None = None) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 3, 32
    T = 300 if quick else 800
    shared = {"T": T, "n": n, "k": k, "master_seed": seed + 1, "channel_seed": seed}

    # --- Δ sweep at fixed ε --------------------------------------------- #
    eps = 0.1
    deltas = [2**10, 2**16, 2**22] if quick else [2**8, 2**12, 2**16, 2**20, 2**24, 2**28]
    delta_cells = [{**shared, "delta": delta, "eps": eps} for delta in deltas]
    delta_rows = zip_params(
        delta_cells, run_grid(sweep(EXP_ID, _ratio_cell, cells=delta_cells, seed=seed), runner)
    )
    delta_table = Table(
        ["log2_delta", "online_msgs", "opt_lb", "ratio", "thm45_bound"],
        title=f"T4a: ratio vs Δ (k={k}, n={n}, ε={eps}; one walk rescaled)",
    )
    xs, ys = [], []
    for row in delta_rows:
        delta_table.add(
            float(np.log2(row["delta"])), row["online_msgs"], row["opt_lb"],
            row["ratio"], row["bound"],
        )
        xs.append(float(np.log2(row["delta"])))
        ys.append(row["ratio"])
    result.add_table("delta_sweep", delta_table)
    spread = max(ys) / max(1e-9, min(ys))
    result.note(
        f"Ratio varies only {spread:.2f}× while Δ spans "
        f"2^{int(xs[0])}..2^{int(xs[-1])} — consistent with the log log Δ "
        "dependence (a pure log Δ algorithm would grow ≈ "
        f"{xs[-1] / xs[0]:.1f}×, cf. T10)."
    )

    # --- ε sweep at fixed Δ --------------------------------------------- #
    # Same master walk rescaled to Δ = 2^16 (same churn as the Δ sweep).
    delta = 2**16
    eps_values = [0.4, 0.1, 0.02] if quick else [0.4, 0.2, 0.1, 0.05, 0.02, 0.005]
    eps_cells = [{**shared, "delta": delta, "eps": eps_v} for eps_v in eps_values]
    eps_rows = zip_params(
        eps_cells, run_grid(sweep(EXP_ID, _ratio_cell, cells=eps_cells, seed=seed), runner)
    )
    eps_table = Table(
        ["eps", "log2_inv_eps", "online_msgs", "opt_lb", "ratio", "thm45_bound"],
        title=f"T4b: ratio vs ε (k={k}, n={n}, Δ=2^16)",
    )
    ex, ey = [], []
    for row in eps_rows:
        eps_table.add(
            row["eps"], float(np.log2(1 / row["eps"])), row["online_msgs"],
            row["opt_lb"], row["ratio"], row["bound"],
        )
        ex.append(float(np.log2(1 / row["eps"])))
        ey.append(row["ratio"])
    result.add_table("eps_sweep", eps_table)

    result.add_figure(
        "F3a_ratio_vs_logdelta",
        line_plot([Series("ratio", xs, ys)], title="Thm 4.5 ratio vs log2 Δ (flat ⇒ loglog)",
                  xlabel="log2 Δ", ylabel="competitive ratio"),
    )
    result.add_figure(
        "F3b_ratio_vs_loginveps",
        line_plot([Series("ratio", ex, ey)], title="Thm 4.5 ratio vs log2(1/ε)",
                  xlabel="log2(1/ε)", ylabel="competitive ratio"),
    )
    return result
