"""T4/F3 — Theorem 4.5: TOP-K-PROTOCOL against the exact adversary.

Two sweeps on random walks with distinct values:

- Δ at fixed ε — the competitive ratio should be essentially flat
  (the Δ-dependence is log log Δ),
- ε at fixed Δ — the ratio grows like log(1/ε).

The denominator is the exact-adversary OPT (greedy phase lower bound with
ε_offline = 0); the bound column is Thm 4.5's k·log n + log log Δ +
log 1/ε shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import bound_topk
from repro.core.topk_protocol import TopKMonitor
from repro.experiments.common import ExperimentResult
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.streams.base import Trace
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct
from repro.util.ascii_plot import Series, line_plot
from repro.util.tables import Table

EXP_ID = "T4"
TITLE = "TOP-K-PROTOCOL vs exact adversary (Thm 4.5)"


def _ratio(trace, k: int, eps: float, seed: int) -> tuple[float, int, int]:
    algo = TopKMonitor(k, eps)
    res = MonitoringEngine(trace, algo, k=k, eps=eps, seed=seed, record_outputs=False).run()
    opt = offline_opt(trace, k, 0.0)  # the exact adversary of Sect. 4
    return res.messages / opt.ratio_denominator, res.messages, opt.message_lb


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    k, n = 3, 32
    T = 300 if quick else 800

    # --- Δ sweep at fixed ε --------------------------------------------- #
    # One master walk, rescaled per Δ: ranks (and hence OPT's work) are
    # identical across the sweep, isolating the pure Δ-dependence.
    eps = 0.1
    deltas = [2**10, 2**16, 2**22] if quick else [2**8, 2**12, 2**16, 2**20, 2**24, 2**28]
    master = random_walk(T, n, high=2**20, step=2**20 // 512, rng=seed + 1)
    delta_table = Table(
        ["log2_delta", "online_msgs", "opt_lb", "ratio", "thm45_bound"],
        title=f"T4a: ratio vs Δ (k={k}, n={n}, ε={eps}; one walk rescaled)",
    )
    xs, ys = [], []
    for delta in deltas:
        scaled = Trace(np.round(master.data * (delta / 2**20)))
        trace = make_distinct(scaled)
        ratio, msgs, lb = _ratio(trace, k, eps, seed)
        delta_table.add(float(np.log2(delta)), msgs, lb, ratio, bound_topk(k, n, delta, eps))
        xs.append(float(np.log2(delta)))
        ys.append(ratio)
    result.add_table("delta_sweep", delta_table)
    spread = max(ys) / max(1e-9, min(ys))
    result.note(
        f"Ratio varies only {spread:.2f}× while Δ spans "
        f"2^{int(xs[0])}..2^{int(xs[-1])} — consistent with the log log Δ "
        "dependence (a pure log Δ algorithm would grow ≈ "
        f"{xs[-1] / xs[0]:.1f}×, cf. T10)."
    )

    # --- ε sweep at fixed Δ --------------------------------------------- #
    # Same master walk rescaled to Δ = 2^16 (same churn as the Δ sweep).
    delta = 2**16
    eps_values = [0.4, 0.1, 0.02] if quick else [0.4, 0.2, 0.1, 0.05, 0.02, 0.005]
    eps_table = Table(
        ["eps", "log2_inv_eps", "online_msgs", "opt_lb", "ratio", "thm45_bound"],
        title=f"T4b: ratio vs ε (k={k}, n={n}, Δ=2^16)",
    )
    ex, ey = [], []
    trace = make_distinct(Trace(np.round(master.data * (delta / 2**20))))
    for eps_v in eps_values:
        ratio, msgs, lb = _ratio(trace, k, eps_v, seed)
        eps_table.add(
            eps_v, float(np.log2(1 / eps_v)), msgs, lb, ratio, bound_topk(k, n, delta, eps_v)
        )
        ex.append(float(np.log2(1 / eps_v)))
        ey.append(ratio)
    result.add_table("eps_sweep", eps_table)

    result.add_figure(
        "F3a_ratio_vs_logdelta",
        line_plot([Series("ratio", xs, ys)], title="Thm 4.5 ratio vs log2 Δ (flat ⇒ loglog)",
                  xlabel="log2 Δ", ylabel="competitive ratio"),
    )
    result.add_figure(
        "F3b_ratio_vs_loginveps",
        line_plot([Series("ratio", ex, ey)], title="Thm 4.5 ratio vs log2(1/ε)",
                  xlabel="log2(1/ε)", ylabel="competitive ratio"),
    )
    return result
