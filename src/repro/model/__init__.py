"""The continuous distributed monitoring model (the paper's substrate).

This package implements, from scratch, the model of Cormode et al. that
the paper assumes: ``n`` nodes observing private streams, a server, unit
message costs for node→server, server→node and broadcast communication,
and a protocol phase of polylogarithmically many rounds between any two
consecutive time steps.

Layering (strictly enforced):

- :mod:`repro.model.ledger` — message/round accounting.
- :mod:`repro.model.node` — node-local state (values, filters) in numpy.
- :mod:`repro.model.channel` — the *only* gateway between server-side
  algorithms and node state; every operation charges the ledger.
- :mod:`repro.model.protocol` — the algorithm interface the engine drives.
- :mod:`repro.model.engine` — the time-step loop.
- :mod:`repro.model.invariants` — omniscient reference checks used by the
  engine's verification mode and the tests (never by algorithms).
"""

from repro.model.engine import MonitoringEngine, RunResult
from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.model.protocol import MonitoringAlgorithm

__all__ = [
    "Channel",
    "CostLedger",
    "MonitoringAlgorithm",
    "MonitoringEngine",
    "NodeArray",
    "RunResult",
]
