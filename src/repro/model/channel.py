"""The communication gateway between server algorithms and nodes.

Server-side algorithms hold a :class:`Channel` and nothing else; every way
of learning anything about node values goes through a method here and is
charged to the :class:`~repro.model.ledger.CostLedger`.  The primitives
mirror what the paper's model allows:

- ``announce`` / ``broadcast_filters`` — server broadcast, cost 1
  (Cormode et al.'s broadcast-channel enhancement, Sect. 1/2 of the paper).
- ``unicast_filter`` / ``request_value`` — server→node messages, cost 1
  each (plus the node's reply for a request).
- ``existence_*`` — the randomized EXISTENCE protocol of Lemma 3.1, run
  over a node-local predicate.  Nodes whose predicate is *false* stay
  silent; active nodes send independently with probability ``2^r / n`` in
  round ``r`` until the first round in which at least one message arrives
  (Las Vegas, O(1) messages in expectation, ``≤ log n + 1`` rounds).
  The no-active case costs zero messages — the crucial property that lets
  filter-based algorithms be silent while nothing happens (Cor. 3.2).
- ``collect_*`` — deterministic "everyone matching the predicate reports"
  probes: 1 broadcast for the query plus one upstream message per match.
  DENSEPROTOCOL uses these to seed its node partition and to evaluate its
  counting conditions (steps 3.b.1 / 3.b'.1).

Node-local predicate evaluation is free: a node comparing its own value to
a broadcast threshold performs local computation only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.ledger import CostLedger
from repro.model.node import (
    NodeArray,
    VIOLATION_ABOVE,
    VIOLATION_BELOW,
)
from repro.util.intervals import Interval
from repro.util.mathx import ceil_log2
from repro.util.rngtools import make_rng

__all__ = ["Channel", "Violation"]


@dataclass(frozen=True, slots=True)
class Violation:
    """A filter-violation report: ``(node, value, kind)``.

    ``kind`` is :data:`~repro.model.node.VIOLATION_BELOW` when the node's
    value exceeded its filter's upper bound (paper: "violates from below")
    and :data:`~repro.model.node.VIOLATION_ABOVE` when it dropped under the
    lower bound ("violates from above").
    """

    node: int
    value: float
    kind: int

    @property
    def from_below(self) -> bool:
        """True for an upward crossing (value > filter upper bound)."""
        return self.kind == VIOLATION_BELOW

    @property
    def from_above(self) -> bool:
        """True for a downward crossing (value < filter lower bound)."""
        return self.kind == VIOLATION_ABOVE


class Channel:
    """Cost-metered communication between the server and ``n`` nodes.

    Parameters
    ----------
    nodes:
        The node state (values + filters).  Algorithms must not touch this
        object; they receive the :class:`Channel` only.
    ledger:
        Message/round account shared with the engine.
    rng:
        Source of the per-node coin flips of the existence protocol.
    """

    def __init__(
        self,
        nodes: NodeArray,
        ledger: CostLedger | None = None,
        rng: np.random.Generator | int | None = None,
        *,
        existence_base: float = 2.0,
    ) -> None:
        if existence_base <= 1.0:
            raise ValueError(f"existence_base must be > 1, got {existence_base}")
        self._nodes = nodes
        self.ledger = ledger if ledger is not None else CostLedger()
        self.rng = make_rng(rng)
        self.existence_base = float(existence_base)
        if existence_base == 2.0:
            self._gamma = ceil_log2(nodes.n)
        else:
            self._gamma = max(0, int(math.ceil(math.log(nodes.n, existence_base))))

    # ------------------------------------------------------------------ #
    # Topology facts the server legitimately knows
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes (public knowledge in the model)."""
        return self._nodes.n

    @property
    def existence_rounds(self) -> int:
        """Round cost of one existence check when *no* node is active.

        Every probability round of Cor. 3.2 runs (γ+1 of them) and nobody
        speaks, so the check costs exactly ``γ+1`` rounds, zero messages,
        and — crucially for the batch fast path — consumes no randomness:
        :meth:`_existence_collect` returns before touching the RNG when the
        active set is empty.
        """
        return self._gamma + 1

    # ------------------------------------------------------------------ #
    # Downstream: broadcasts and unicasts
    # ------------------------------------------------------------------ #
    def announce(self) -> None:
        """Broadcast a constant-size control message (threshold, query, id).

        Cost: 1.  The message content itself is tracked by the caller; the
        model only restricts size to O(log(n·Δ)) bits, which every control
        message we send satisfies (a few values and at most one node id).
        """
        self.ledger.charge_broadcast()

    def broadcast_filters(self, groups: Sequence[tuple[np.ndarray, Interval]]) -> None:
        """Install filters for several node groups with a single broadcast.

        The broadcast carries the round's constants (e.g. ``ℓ_r``, ``u_r``,
        ``z``); every node derives its own interval locally from its class
        label, exactly as in DENSEPROTOCOL step 2.  Cost: 1.

        Parameters
        ----------
        groups:
            ``(ids, interval)`` pairs; ids may be an ndarray, list, or
            boolean mask.  Later groups override earlier ones on overlap.
        """
        self.ledger.charge_broadcast()
        for ids, interval in groups:
            ids = self._as_index(ids)
            self._nodes.set_filters_bulk(ids, interval.lo, interval.hi)

    def unicast_filter(self, node: int, interval: Interval) -> None:
        """Assign one node's filter with a direct message.  Cost: 1."""
        self.ledger.charge_down()
        self._nodes.set_filter(int(node), interval)

    def broadcast_freeze(self) -> None:
        """Broadcast the rule "filter := your current value".  Cost: 1.

        Each node derives the point filter ``[v_i, v_i]`` locally from its
        own observation — a filter rule, not a data transfer, so a single
        broadcast suffices.  Used by the send-on-change baseline.
        """
        self.ledger.charge_broadcast()
        self._nodes.freeze_all()

    def self_freeze(self, node: int) -> None:
        """Node-local re-freeze after a report.  Cost: 0.

        Once the freeze rule has been broadcast, a node that just reported
        its new value re-arms its own point filter without any message —
        pure local computation, hence free in the model.
        """
        self._nodes.freeze_one(int(node))

    def request_value(self, node: int) -> float:
        """Ask one node for its current value.  Cost: 2 (query + reply)."""
        self.ledger.charge_down()
        self.ledger.charge_up()
        return float(self._nodes.values[int(node)])

    # ------------------------------------------------------------------ #
    # Existence protocol (Lemma 3.1) over node-local predicates
    # ------------------------------------------------------------------ #
    def _existence_collect(
        self, active: np.ndarray | None = None, *, active_ids: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the EXISTENCE protocol over the active-node set.

        Pass either the boolean ``active`` mask or, for callers that
        already hold the ids (the node array's cached violation batch),
        ``active_ids`` — the coin-flip sequence is identical either way.
        Returns the ``(ids, values)`` of the nodes that sent in the first
        successful round (all their messages are charged).  Empty arrays
        when no node is active; that case costs zero messages and
        ``γ + 1`` rounds of silence.
        """
        n = self._nodes.n
        if active_ids is None:
            if active is None:
                raise TypeError("pass exactly one of active= or active_ids=")
            active_ids = np.flatnonzero(active)
        elif active is not None:
            raise TypeError("pass exactly one of active= or active_ids=")
        if active_ids.size == 0:
            self.ledger.charge_rounds(self._gamma + 1)
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        base = self.existence_base
        for r in range(self._gamma + 1):
            self.ledger.charge_rounds(1)
            p = min(1.0, (base**r) / n)
            sends = self.rng.random(active_ids.size) < p
            senders = active_ids[sends]
            if senders.size > 0:
                self.ledger.charge_up(int(senders.size))
                return senders, self._nodes.values[senders].copy()
        raise AssertionError("existence protocol must fire by round gamma (p=1)")

    def existence_any(self, active: np.ndarray) -> bool:
        """Decide the OR of the predicate (Lemma 3.1).  O(1) expected msgs."""
        ids, _ = self._existence_collect(active)
        return ids.size > 0

    def existence_violations(self) -> list[Violation]:
        """Detect filter-violations via the existence protocol (Cor. 3.2).

        Every violating node participates with a 1; responders of the first
        successful round report ``(id, value)`` and whether they crossed
        from below or above.  No violations → no messages.
        """
        violating = self._nodes.violation_ids()  # cached batch containment test
        ids, values = self._existence_collect(active_ids=violating)
        if ids.size == 0:
            return []
        kind = self._nodes.violation_kind()
        return [Violation(int(i), float(v), int(kind[i])) for i, v in zip(ids, values)]

    def existence_above(
        self,
        threshold: float,
        *,
        strict: bool = True,
        exclude: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Existence-collect over nodes with value above ``threshold``.

        The caller is responsible for having announced the threshold (one
        :meth:`announce`); this method charges only the upstream messages.
        ``exclude`` silences nodes the server already heard from (they were
        told to stand down with a :meth:`notify` unicast, charged by the
        caller).  Used by the max-finding protocol of Lemma 2.6.
        """
        mask = self._nodes.mask_above(threshold, strict=strict)
        if exclude is not None and len(exclude) > 0:
            mask = mask.copy()
            mask[np.asarray(exclude, dtype=np.int64)] = False
        return self._existence_collect(mask)

    def existence_below(
        self,
        threshold: float,
        *,
        strict: bool = True,
        exclude: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mirror of :meth:`existence_above` for the min-finding protocol."""
        mask = self._nodes.mask_below(threshold, strict=strict)
        if exclude is not None and len(exclude) > 0:
            mask = mask.copy()
            mask[np.asarray(exclude, dtype=np.int64)] = False
        return self._existence_collect(mask)

    def report_violations_all(self) -> list[Violation]:
        """Every violating node reports directly (no existence batching).

        The pre-Lemma-3.1 reporting discipline: nodes cannot coordinate,
        so each simultaneous violator costs one upstream message.  Silent
        systems cost nothing.  Used by the `[6]`-style baseline monitor.
        """
        self.ledger.charge_rounds(1)
        ids = self._nodes.violation_ids()
        kind = self._nodes.violation_kind()
        self.ledger.charge_up(int(ids.size))
        return [
            Violation(int(i), float(self._nodes.values[i]), int(kind[i])) for i in ids
        ]

    def notify(self, node: int) -> None:
        """Send one control unicast (e.g. "stand down").  Cost: 1."""
        self.ledger.charge_down()
        _ = int(node)

    # ------------------------------------------------------------------ #
    # Deterministic collect probes (1 broadcast + one reply per match)
    # ------------------------------------------------------------------ #
    def collect_above(self, threshold: float, *, strict: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """All nodes with value above ``threshold`` report ``(id, value)``."""
        return self._collect(self._nodes.mask_above(threshold, strict=strict))

    def collect_below(self, threshold: float, *, strict: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """All nodes with value below ``threshold`` report ``(id, value)``."""
        return self._collect(self._nodes.mask_below(threshold, strict=strict))

    def collect_between(self, lo: float, hi: float) -> tuple[np.ndarray, np.ndarray]:
        """All nodes with ``lo <= value <= hi`` report ``(id, value)``.

        DENSEPROTOCOL seeds its V1/V2/V3 partition by probing the
        ε-neighborhood of ``z`` this way (cost σ + O(1), cf. Lemma 5.3).
        """
        mask = self._nodes.mask_above(lo, strict=False) & self._nodes.mask_below(hi, strict=False)
        return self._collect(mask)

    def count_above(self, threshold: float, *, strict: bool = True) -> int:
        """Number of nodes above ``threshold`` (1 broadcast + 1 msg each)."""
        ids, _ = self.collect_above(threshold, strict=strict)
        return int(ids.size)

    def count_below(self, threshold: float, *, strict: bool = True) -> int:
        """Number of nodes below ``threshold`` (1 broadcast + 1 msg each)."""
        ids, _ = self.collect_below(threshold, strict=strict)
        return int(ids.size)

    def _collect(self, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        self.ledger.charge_broadcast()  # the query
        self.ledger.charge_rounds(1)
        ids = np.flatnonzero(mask)
        self.ledger.charge_up(int(ids.size))
        return ids, self._nodes.values[ids].copy()

    # ------------------------------------------------------------------ #
    # Deterministic violation search (the pre-Lemma-3.1 baseline)
    # ------------------------------------------------------------------ #
    def range_has_violator(self, lo_id: int, hi_id: int) -> bool:
        """Deterministic query "any violator with id in [lo_id, hi_id]?".

        Models the group-testing detection that the existence protocol
        replaces: 1 broadcast for the query and 1 upstream message iff the
        answer is yes (charitably assuming perfect collision resolution —
        this *under*-counts the baseline's cost, so measured gaps are
        conservative).  Used only by the `[6]`-style baseline monitor.
        """
        self.ledger.charge_broadcast()
        self.ledger.charge_rounds(1)
        mask = self._nodes.violating_mask()
        mask[: int(lo_id)] = False
        mask[int(hi_id) + 1 :] = False
        hit = bool(mask.any())
        if hit:
            self.ledger.charge_up()
        return hit

    def violation_report(self, node: int) -> Violation | None:
        """Ask one specific node for a violation report.  Cost: 2.

        Returns ``None`` when the node is inside its filter.
        """
        self.ledger.charge_down()
        self.ledger.charge_up()
        kind = int(self._nodes.violation_kind()[int(node)])
        if kind == 0:
            return None
        return Violation(int(node), float(self._nodes.values[int(node)]), kind)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_index(ids: object) -> np.ndarray:
        arr = np.asarray(ids)
        if arr.dtype == bool:
            return np.flatnonzero(arr)
        return arr.astype(np.int64, copy=False)

    def current_filters(self) -> tuple[np.ndarray, np.ndarray]:
        """The filters the server assigned (server-side knowledge, free)."""
        return self._nodes.filter_lo.copy(), self._nodes.filter_hi.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Channel(n={self.n}, {self.ledger!r})"
