"""The time-step loop driving an algorithm over a value source.

The engine realizes the continuous monitoring model's clock: at each step
it delivers fresh observations to the nodes, lets the algorithm's protocol
settle, then (optionally) verifies the model's laws with the omniscient
checks of :mod:`repro.model.invariants`:

1. the output ``F(t)`` is a valid ε-top-k set,
2. the assigned filters form a valid set of filters (Observation 2.2), and
3. every node's value lies inside its filter (Definition 2.1) — i.e. the
   protocol really settled.

The loop is *incremental*: :meth:`MonitoringEngine.start` opens a run,
:meth:`MonitoringEngine.advance` consumes observations in arbitrary
chunks, and :meth:`MonitoringEngine.finalize` closes the accounting and
returns the :class:`RunResult`.  :meth:`MonitoringEngine.run` is the
classic one-shot wrapper: it drives the same three calls over a
:class:`ValueSource` from step 0 to ``T-1``.  Incremental runs need no
source at all — construct with ``source=None, n=...`` and push blocks;
this is how the service layer (:mod:`repro.service`) hosts long-lived
monitoring sessions over unbounded streams.

Value sources are either pre-generated traces or *adaptive adversaries*;
the latter receive the :class:`~repro.model.node.NodeArray` (they are
omniscient by definition — "the adversary knows the algorithm's code, the
current state of each node and the server", Sect. 2.1).

The non-check loop has a vectorized fast path (the sweep runner drives
thousands of such runs, see docs/ARCHITECTURE.md):

- sources that declare ``prevalidated = True`` skip the per-step
  shape/finiteness re-checks in :meth:`NodeArray.deliver` —
  :class:`~repro.streams.base.Trace` validates the whole matrix at
  construction, :class:`~repro.streams.streaming.StreamingSource`
  validates each lazily generated block once on arrival, and
  :meth:`MonitoringEngine.advance` validates each pushed block once on
  entry;
- filter-containment tests are served from the node array's cached batch
  (recomputed once per state version, not per query);
- outputs are recorded as rows of a preallocated ``(T, k)`` int array
  (grown by amortized doubling when the horizon is open-ended) instead
  of a list of frozensets, and output-change counting runs as one
  vectorized pass over that array at finalize.

Finalize additionally audits the ledger's accounting law: every charged
message must appear in the per-step series (``sum(per_step) ==
messages``); charges made after ``end_step()`` — e.g. from an
``output()`` side effect — are folded into the step they reacted to by
:class:`~repro.model.ledger.CostLedger`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.model.channel import Channel
from repro.model.invariants import (
    InvariantViolation,
    filters_form_valid_set,
    output_valid,
    values_within_filters,
)
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.model.protocol import MonitoringAlgorithm
from repro.util.rngtools import make_rng

__all__ = ["ValueSource", "MonitoringEngine", "RunResult"]

#: Initial ``(T, k)`` output-buffer rows for open-ended runs (no
#: ``expect_steps``); grown by doubling.
_INITIAL_ROWS = 1024


@runtime_checkable
class ValueSource(Protocol):
    """Anything that can feed values to the engine, step by step.

    The engine reads steps strictly in order ``0..T-1``, so sources may
    generate lazily (see :class:`repro.streams.streaming.StreamingSource`,
    which keeps one block resident).  Two optional attributes refine the
    contract:

    - ``prevalidated`` (bool): the source guarantees finite values of
      shape ``(n,)`` at every step — whole-matrix validation for
      :class:`~repro.streams.base.Trace`, per-block validation for
      streaming sources — and the engine skips per-step delivery checks.
    - ``reset()``: called once at the start of every run, letting
      single-pass sources rewind so one source object supports repeated
      runs.
    """

    @property
    def n(self) -> int:
        """Number of nodes."""

    @property
    def num_steps(self) -> int:
        """Number of time steps the source provides."""

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:
        """Observations for step ``t`` (may inspect ``nodes`` — adversaries)."""


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    ledger: CostLedger
    num_steps: int
    n: int
    k: int
    output_changes: int = 0
    algorithm_name: str = ""
    #: Recorded outputs as a ``(T, k)`` int array of sorted node ids —
    #: the engine's compact fast-path representation.  ``None`` when
    #: outputs were not recorded or were irregular (size ≠ k).
    #: Excluded from dataclass comparison (ndarray ``==`` is elementwise).
    outputs_array: np.ndarray | None = field(default=None, compare=False)
    _outputs_list: list[frozenset[int]] | None = field(default=None, repr=False, compare=False)
    _cumulative: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def outputs(self) -> list[frozenset[int]]:
        """``F(t)`` per step as frozensets (empty when not recorded)."""
        if self._outputs_list is None:
            if self.outputs_array is None:
                return []
            self._outputs_list = [frozenset(row) for row in self.outputs_array.tolist()]
        return self._outputs_list

    @property
    def messages(self) -> int:
        """Total unit-cost messages of the run."""
        return self.ledger.messages

    @property
    def cumulative_messages(self) -> np.ndarray:
        """Cumulative message count after each time step (length T).

        Cached after the first access; invalidated when the series has
        changed since — either grown (a live session's ledger) or had a
        late charge folded into its last entry (same length, larger
        total) — so repeated reads of a settled result don't re-run
        ``cumsum``.
        """
        series = self.ledger.per_step
        cached = self._cumulative
        if (
            cached is None
            or cached.shape[0] != len(series)
            or (cached.shape[0] and int(cached[-1]) != series.total)
        ):
            self._cumulative = np.cumsum(np.asarray(series, dtype=np.int64))
        return self._cumulative

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult({self.algorithm_name}, T={self.num_steps}, n={self.n}, "
            f"k={self.k}, messages={self.messages})"
        )


class MonitoringEngine:
    """Drive ``algorithm`` over observations and account every message.

    Parameters
    ----------
    source:
        A :class:`ValueSource` (trace or adaptive adversary), or ``None``
        for a push-driven run fed through :meth:`advance` (then ``n``
        must be given).  Sources with a true ``prevalidated`` attribute
        promise finite values of the right shape at every step and get
        validation-free delivery.
    algorithm:
        A fresh :class:`MonitoringAlgorithm` instance (one per run).
    k:
        The top-``k`` parameter, used for verification and result metadata.
    eps:
        The output error the algorithm is allowed; used only by the
        verification mode (pass the algorithm's own ε; ``0`` for exact).
    seed:
        Seed/generator for the channel's protocol randomness.
    check:
        When ``True``, verify the three model laws after every step and
        raise :class:`InvariantViolation` on the first breach.  Meant for
        tests and debugging (it reads values omnisciently); benchmarks run
        with ``check=False``.
    record_outputs:
        When ``True`` (default) keep ``F(t)`` per step in the result.
    broadcast_cost:
        Unit price of a broadcast (model ablation T13; default 1 — the
        paper's broadcast-channel model).
    existence_base:
        Growth base of the existence protocol's send probabilities
        (model ablation T14; default 2 — the Lemma 3.1 protocol).
    n:
        Number of nodes for push-driven runs (``source=None``); must
        match ``source.n`` when both are given.
    """

    def __init__(
        self,
        source: ValueSource | None,
        algorithm: MonitoringAlgorithm,
        *,
        k: int,
        eps: float = 0.0,
        seed: int | np.random.Generator | None = 0,
        check: bool = False,
        record_outputs: bool = True,
        broadcast_cost: int = 1,
        existence_base: float = 2.0,
        n: int | None = None,
    ) -> None:
        if source is None:
            if n is None:
                raise TypeError("a push-driven engine (source=None) needs n=...")
            num_nodes = int(n)
        else:
            if not isinstance(source, ValueSource):
                raise TypeError(f"source must implement ValueSource, got {type(source).__name__}")
            num_nodes = source.n
            if n is not None and int(n) != num_nodes:
                raise ValueError(f"n={n} contradicts source.n={num_nodes}")
        self.source = source
        self.algorithm = algorithm
        self.k = int(k)
        self.eps = float(eps)
        self.check = bool(check)
        self.record_outputs = bool(record_outputs)
        self.nodes = NodeArray(num_nodes)
        self.ledger = CostLedger(broadcast_cost=broadcast_cost)
        self.channel = Channel(
            self.nodes, self.ledger, make_rng(seed), existence_base=existence_base
        )
        # Incremental run state (created by start()).
        self._started = False
        self._finalized = False
        self._t = 0
        self._rows: np.ndarray | None = None
        self._prev_row: np.ndarray | None = None
        self._changes = 0
        # Object fallback, entered only if an output ever has size != k
        # (a protocol-contract breach the engine tolerates for baselines).
        self._irregular = False
        self._outputs_list: list[frozenset[int]] = []
        self._previous: frozenset[int] | None = None

    # ------------------------------------------------------------------ #
    # One-shot wrapper
    # ------------------------------------------------------------------ #
    def run(self) -> RunResult:
        """Execute the full run over ``source`` and return the measurements."""
        source = self.source
        if source is None:
            raise RuntimeError(
                "run() needs a value source; push-driven engines are driven "
                "with start()/advance()/finalize()"
            )
        reset = getattr(source, "reset", None)
        if callable(reset):
            reset()  # streaming sources rewind to step 0 for this run
        T = source.num_steps
        self.start(expect_steps=T)
        validate = not bool(getattr(source, "prevalidated", False))
        nodes, step = self.nodes, self._step
        for t in range(T):
            step(source.values(t, nodes), validate)
        return self.finalize()

    # ------------------------------------------------------------------ #
    # Incremental drive: start / advance / finalize
    # ------------------------------------------------------------------ #
    def start(self, *, expect_steps: int | None = None) -> None:
        """Open the run: bind the algorithm, allocate recording buffers.

        ``expect_steps`` sizes the ``(T, k)`` output buffer exactly when
        the horizon is known (as :meth:`run` does); without it the buffer
        grows by amortized doubling, so open-ended sessions work too.
        """
        if self._started:
            raise RuntimeError("engine already started; one run per engine")
        self.algorithm.bind(self.channel)
        self._started = True
        if self.record_outputs:
            capacity = expect_steps if expect_steps else _INITIAL_ROWS
            self._rows = np.empty((int(capacity), self.k), dtype=np.int64)

    def advance(self, block: np.ndarray, *, prevalidated: bool = False) -> int:
        """Consume a ``(B, n)`` block of observations, one step per row.

        The block is shape/finiteness-checked once on entry (skipped for
        ``prevalidated=True`` blocks, e.g. rows already validated by a
        :class:`~repro.streams.streaming.StreamingSource`), then every
        row takes the same validation-free delivery fast path as a
        prevalidated source under :meth:`run`.  Returns the total number
        of steps consumed so far.
        """
        if not self._started:
            raise RuntimeError("call start() before advance()")
        if self._finalized:
            raise RuntimeError("engine already finalized")
        if not prevalidated:
            block = np.asarray(block, dtype=np.float64)
            if block.ndim == 1:  # a single step is a 1-row block
                block = block[None, :]
            if block.ndim != 2 or block.shape[1] != self.nodes.n:
                raise ValueError(
                    f"block must have shape (B, {self.nodes.n}), got {block.shape}"
                )
            if not np.all(np.isfinite(block)):
                raise ValueError("stream values must be finite")
        step = self._step
        for row in block:
            step(row, False)
        return self._t

    def finalize(self) -> RunResult:
        """Close the run: audit the accounting, package the result."""
        if not self._started:
            raise RuntimeError("call start() before finalize()")
        if self._finalized:
            raise RuntimeError("engine already finalized")
        self._finalized = True
        ledger = self.ledger
        ledger.flush_late_charges()
        T = self._t
        result = RunResult(
            ledger=ledger,
            num_steps=T,
            n=self.nodes.n,
            k=self.k,
            algorithm_name=getattr(self.algorithm, "name", type(self.algorithm).__name__),
        )
        changes = self._changes
        if self.record_outputs:
            if self._irregular:
                result._outputs_list = self._outputs_list
            else:
                assert self._rows is not None
                rows = self._rows if T == self._rows.shape[0] else self._rows[:T]
                changes = _count_changes(rows)
                result.outputs_array = rows
        result.output_changes = changes
        if T and ledger.unaccounted:
            raise RuntimeError(
                f"ledger accounting drift: {ledger.messages} messages charged "
                f"but per_step records {ledger.per_step.total} — some charge "
                "bypassed the begin_step/end_step bookkeeping"
            )
        return result

    # ------------------------------------------------------------------ #
    # Introspection (live sessions query these mid-run)
    # ------------------------------------------------------------------ #
    @property
    def steps_done(self) -> int:
        """Number of time steps consumed so far."""
        return self._t

    def current_output(self) -> frozenset[int] | None:
        """The algorithm's current ``F(t)`` (``None`` before step 0)."""
        if not self._started or self._t == 0:
            return None
        return self.algorithm.output()

    def output_changes_so_far(self) -> int:
        """Output changes over the steps consumed so far."""
        if self.record_outputs and not self._irregular and self._rows is not None:
            return _count_changes(self._rows[: self._t])
        return self._changes

    # ------------------------------------------------------------------ #
    # The per-step core (shared by run() and advance())
    # ------------------------------------------------------------------ #
    def _step(self, values: np.ndarray, validate: bool) -> None:
        ledger = self.ledger
        algorithm = self.algorithm
        t = self._t
        ledger.begin_step()
        self.nodes.deliver(values, validate=validate)
        if t == 0:
            algorithm.on_start()
        else:
            algorithm.on_step()
        ledger.end_step()
        out = algorithm.output()
        k = self.k
        record = self.record_outputs
        if not self._irregular and len(out) == k:
            if record:
                rows = self._rows
                if t == rows.shape[0]:  # open-ended horizon: amortized growth
                    rows = self._grow_rows()
                row = rows[t]
                row[:] = np.fromiter(out, dtype=np.int64, count=k)
                row.sort()  # change counting happens in one batch at finalize
            else:
                cur = np.fromiter(out, dtype=np.int64, count=k)
                cur.sort()
                prev_row = self._prev_row
                if prev_row is not None and not np.array_equal(cur, prev_row):
                    self._changes += 1
                self._prev_row = cur
        else:
            if not self._irregular:  # first irregular output: leave the fast path
                self._irregular = True
                if record:
                    done = self._rows[:t]
                    self._changes = _count_changes(done)
                    self._outputs_list = [frozenset(r) for r in done.tolist()]
                    self._previous = self._outputs_list[-1] if t else None
                elif self._prev_row is not None:
                    self._previous = frozenset(self._prev_row.tolist())
            if record:
                self._outputs_list.append(out)
            if self._previous is not None and out != self._previous:
                self._changes += 1
            self._previous = out
        self._t = t + 1
        if self.check:
            self._verify(t, out)

    def _grow_rows(self) -> np.ndarray:
        assert self._rows is not None
        grown = np.empty((max(self._rows.shape[0] * 2, _INITIAL_ROWS), self.k), dtype=np.int64)
        grown[: self._t] = self._rows[: self._t]
        self._rows = grown
        return grown

    # ------------------------------------------------------------------ #
    # Pickling (session checkpoints)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        # Compact the output buffer to its recorded prefix so checkpoint
        # bytes are a pure function of the steps consumed — not of buffer
        # capacity history or the ``np.empty`` garbage past ``_t``.  The
        # cross-topology differential harness asserts blobs bit-identical
        # across restore/migrate histories, which needs this canonical form.
        state = self.__dict__.copy()
        rows = state["_rows"]
        if rows is not None:
            state["_rows"] = rows[: self._t].copy()
        return state

    def __setstate__(self, state: dict) -> None:
        # A compacted buffer may be full (or empty); _grow_rows re-seeds
        # capacity on the next recorded step.  Keys are interned like
        # pickle's default load_build does — otherwise a restored engine
        # re-pickles with different string memoization and the blob bytes
        # drift from an uninterrupted run's.
        self.__dict__.update({sys.intern(key): value for key, value in state.items()})

    # ------------------------------------------------------------------ #
    def _verify(self, t: int, out: frozenset[int]) -> None:
        ok, why = output_valid(self.nodes.values, self.k, self.eps, out)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid output of {self.algorithm.name}: {why}")
        if not self.algorithm.filter_based:
            return
        ok, why = filters_form_valid_set(self.nodes.filter_lo, self.nodes.filter_hi, out, self.eps)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid filter set of {self.algorithm.name}: {why}")
        ok, why = values_within_filters(self.nodes.values, self.nodes.filter_lo, self.nodes.filter_hi)
        if not ok:
            raise InvariantViolation(f"[t={t}] {self.algorithm.name} did not settle: {why}")


def _count_changes(rows: np.ndarray) -> int:
    """Vectorized output-change count over sorted ``(T, k)`` output rows."""
    if rows.shape[0] < 2:
        return 0
    return int(np.count_nonzero((rows[1:] != rows[:-1]).any(axis=1)))
