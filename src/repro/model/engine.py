"""The time-step loop driving an algorithm over a value source.

The engine realizes the continuous monitoring model's clock: at each step
it delivers fresh observations to the nodes, lets the algorithm's protocol
settle, then (optionally) verifies the model's laws with the omniscient
checks of :mod:`repro.model.invariants`:

1. the output ``F(t)`` is a valid ε-top-k set,
2. the assigned filters form a valid set of filters (Observation 2.2), and
3. every node's value lies inside its filter (Definition 2.1) — i.e. the
   protocol really settled.

Value sources are either pre-generated traces or *adaptive adversaries*;
the latter receive the :class:`~repro.model.node.NodeArray` (they are
omniscient by definition — "the adversary knows the algorithm's code, the
current state of each node and the server", Sect. 2.1).

The non-check loop has a vectorized fast path (the sweep runner drives
thousands of such runs, see docs/ARCHITECTURE.md):

- sources that declare ``prevalidated = True`` skip the per-step
  shape/finiteness re-checks in :meth:`NodeArray.deliver` —
  :class:`~repro.streams.base.Trace` validates the whole matrix at
  construction, :class:`~repro.streams.streaming.StreamingSource`
  validates each lazily generated block once on arrival;
- filter-containment tests are served from the node array's cached batch
  (recomputed once per state version, not per query);
- outputs are recorded as rows of a preallocated ``(T, k)`` int array
  instead of a list of frozensets, and output-change counting runs as
  one vectorized pass over that array after the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.model.channel import Channel
from repro.model.invariants import (
    InvariantViolation,
    filters_form_valid_set,
    output_valid,
    values_within_filters,
)
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.model.protocol import MonitoringAlgorithm
from repro.util.rngtools import make_rng

__all__ = ["ValueSource", "MonitoringEngine", "RunResult"]


@runtime_checkable
class ValueSource(Protocol):
    """Anything that can feed values to the engine, step by step.

    The engine reads steps strictly in order ``0..T-1``, so sources may
    generate lazily (see :class:`repro.streams.streaming.StreamingSource`,
    which keeps one block resident).  Two optional attributes refine the
    contract:

    - ``prevalidated`` (bool): the source guarantees finite values of
      shape ``(n,)`` at every step — whole-matrix validation for
      :class:`~repro.streams.base.Trace`, per-block validation for
      streaming sources — and the engine skips per-step delivery checks.
    - ``reset()``: called once at the start of every run, letting
      single-pass sources rewind so one source object supports repeated
      runs.
    """

    @property
    def n(self) -> int:
        """Number of nodes."""

    @property
    def num_steps(self) -> int:
        """Number of time steps the source provides."""

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:
        """Observations for step ``t`` (may inspect ``nodes`` — adversaries)."""


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    ledger: CostLedger
    num_steps: int
    n: int
    k: int
    output_changes: int = 0
    algorithm_name: str = ""
    #: Recorded outputs as a ``(T, k)`` int array of sorted node ids —
    #: the engine's compact fast-path representation.  ``None`` when
    #: outputs were not recorded or were irregular (size ≠ k).
    #: Excluded from dataclass comparison (ndarray ``==`` is elementwise).
    outputs_array: np.ndarray | None = field(default=None, compare=False)
    _outputs_list: list[frozenset[int]] | None = field(default=None, repr=False, compare=False)

    @property
    def outputs(self) -> list[frozenset[int]]:
        """``F(t)`` per step as frozensets (empty when not recorded)."""
        if self._outputs_list is None:
            if self.outputs_array is None:
                return []
            self._outputs_list = [frozenset(row) for row in self.outputs_array.tolist()]
        return self._outputs_list

    @property
    def messages(self) -> int:
        """Total unit-cost messages of the run."""
        return self.ledger.messages

    @property
    def cumulative_messages(self) -> np.ndarray:
        """Cumulative message count after each time step (length T)."""
        return np.cumsum(np.asarray(self.ledger.per_step, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult({self.algorithm_name}, T={self.num_steps}, n={self.n}, "
            f"k={self.k}, messages={self.messages})"
        )


class MonitoringEngine:
    """Drive ``algorithm`` over ``source`` and account every message.

    Parameters
    ----------
    source:
        A :class:`ValueSource` (trace or adaptive adversary).  Sources
        with a true ``prevalidated`` attribute promise finite values of
        the right shape at every step and get validation-free delivery.
    algorithm:
        A fresh :class:`MonitoringAlgorithm` instance (one per run).
    k:
        The top-``k`` parameter, used for verification and result metadata.
    eps:
        The output error the algorithm is allowed; used only by the
        verification mode (pass the algorithm's own ε; ``0`` for exact).
    seed:
        Seed/generator for the channel's protocol randomness.
    check:
        When ``True``, verify the three model laws after every step and
        raise :class:`InvariantViolation` on the first breach.  Meant for
        tests and debugging (it reads values omnisciently); benchmarks run
        with ``check=False``.
    record_outputs:
        When ``True`` (default) keep ``F(t)`` per step in the result.
    broadcast_cost:
        Unit price of a broadcast (model ablation T13; default 1 — the
        paper's broadcast-channel model).
    existence_base:
        Growth base of the existence protocol's send probabilities
        (model ablation T14; default 2 — the Lemma 3.1 protocol).
    """

    def __init__(
        self,
        source: ValueSource,
        algorithm: MonitoringAlgorithm,
        *,
        k: int,
        eps: float = 0.0,
        seed: int | np.random.Generator | None = 0,
        check: bool = False,
        record_outputs: bool = True,
        broadcast_cost: int = 1,
        existence_base: float = 2.0,
    ) -> None:
        if not isinstance(source, ValueSource):
            raise TypeError(f"source must implement ValueSource, got {type(source).__name__}")
        self.source = source
        self.algorithm = algorithm
        self.k = int(k)
        self.eps = float(eps)
        self.check = bool(check)
        self.record_outputs = bool(record_outputs)
        self.nodes = NodeArray(source.n)
        self.ledger = CostLedger(broadcast_cost=broadcast_cost)
        self.channel = Channel(
            self.nodes, self.ledger, make_rng(seed), existence_base=existence_base
        )

    def run(self) -> RunResult:
        """Execute the full run and return the measurements."""
        reset = getattr(self.source, "reset", None)
        if callable(reset):
            reset()  # streaming sources rewind to step 0 for this run
        self.algorithm.bind(self.channel)
        result = RunResult(
            ledger=self.ledger,
            num_steps=self.source.num_steps,
            n=self.source.n,
            k=self.k,
            algorithm_name=getattr(self.algorithm, "name", type(self.algorithm).__name__),
        )
        T, k = self.source.num_steps, self.k
        nodes, ledger, algorithm = self.nodes, self.ledger, self.algorithm
        validate = not bool(getattr(self.source, "prevalidated", False))
        record = self.record_outputs

        rows = np.empty((T, k), dtype=np.int64) if record else None
        prev_row: np.ndarray | None = None
        changes = 0
        # Object fallback, entered only if an output ever has size != k
        # (a protocol-contract breach the engine tolerates for baselines).
        irregular = False
        outputs_list: list[frozenset[int]] = []
        previous: frozenset[int] | None = None

        for t in range(T):
            ledger.begin_step()
            nodes.deliver(self.source.values(t, nodes), validate=validate)
            if t == 0:
                algorithm.on_start()
            else:
                algorithm.on_step()
            ledger.end_step()
            out = algorithm.output()
            if not irregular and len(out) == k:
                if record:
                    row = rows[t]
                    row[:] = np.fromiter(out, dtype=np.int64, count=k)
                    row.sort()  # change counting happens in one batch below
                else:
                    cur = np.fromiter(out, dtype=np.int64, count=k)
                    cur.sort()
                    if prev_row is not None and not np.array_equal(cur, prev_row):
                        changes += 1
                    prev_row = cur
            else:
                if not irregular:  # first irregular output: leave the fast path
                    irregular = True
                    if record:
                        done = rows[:t]
                        changes = _count_changes(done)
                        outputs_list = [frozenset(r) for r in done.tolist()]
                        previous = outputs_list[-1] if t else None
                    elif prev_row is not None:
                        previous = frozenset(prev_row.tolist())
                if record:
                    outputs_list.append(out)
                if previous is not None and out != previous:
                    changes += 1
                previous = out
            if self.check:
                self._verify(t, out)

        if record:
            if irregular:
                result._outputs_list = outputs_list
            else:
                changes = _count_changes(rows)
                result.outputs_array = rows
        result.output_changes = changes
        return result

    # ------------------------------------------------------------------ #
    def _verify(self, t: int, out: frozenset[int]) -> None:
        ok, why = output_valid(self.nodes.values, self.k, self.eps, out)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid output of {self.algorithm.name}: {why}")
        if not self.algorithm.filter_based:
            return
        ok, why = filters_form_valid_set(self.nodes.filter_lo, self.nodes.filter_hi, out, self.eps)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid filter set of {self.algorithm.name}: {why}")
        ok, why = values_within_filters(self.nodes.values, self.nodes.filter_lo, self.nodes.filter_hi)
        if not ok:
            raise InvariantViolation(f"[t={t}] {self.algorithm.name} did not settle: {why}")


def _count_changes(rows: np.ndarray) -> int:
    """Vectorized output-change count over sorted ``(T, k)`` output rows."""
    if rows.shape[0] < 2:
        return 0
    return int(np.count_nonzero((rows[1:] != rows[:-1]).any(axis=1)))
