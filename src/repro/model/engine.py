"""The time-step loop driving an algorithm over a value source.

The engine realizes the continuous monitoring model's clock: at each step
it delivers fresh observations to the nodes, lets the algorithm's protocol
settle, then (optionally) verifies the model's laws with the omniscient
checks of :mod:`repro.model.invariants`:

1. the output ``F(t)`` is a valid ε-top-k set,
2. the assigned filters form a valid set of filters (Observation 2.2), and
3. every node's value lies inside its filter (Definition 2.1) — i.e. the
   protocol really settled.

Value sources are either pre-generated traces or *adaptive adversaries*;
the latter receive the :class:`~repro.model.node.NodeArray` (they are
omniscient by definition — "the adversary knows the algorithm's code, the
current state of each node and the server", Sect. 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.model.channel import Channel
from repro.model.invariants import (
    InvariantViolation,
    filters_form_valid_set,
    output_valid,
    values_within_filters,
)
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.model.protocol import MonitoringAlgorithm
from repro.util.rngtools import make_rng

__all__ = ["ValueSource", "MonitoringEngine", "RunResult"]


@runtime_checkable
class ValueSource(Protocol):
    """Anything that can feed values to the engine, step by step."""

    @property
    def n(self) -> int:
        """Number of nodes."""

    @property
    def num_steps(self) -> int:
        """Number of time steps the source provides."""

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:
        """Observations for step ``t`` (may inspect ``nodes`` — adversaries)."""


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    ledger: CostLedger
    num_steps: int
    n: int
    k: int
    outputs: list[frozenset[int]] = field(default_factory=list)
    output_changes: int = 0
    algorithm_name: str = ""

    @property
    def messages(self) -> int:
        """Total unit-cost messages of the run."""
        return self.ledger.messages

    @property
    def cumulative_messages(self) -> np.ndarray:
        """Cumulative message count after each time step (length T)."""
        return np.cumsum(np.asarray(self.ledger.per_step, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult({self.algorithm_name}, T={self.num_steps}, n={self.n}, "
            f"k={self.k}, messages={self.messages})"
        )


class MonitoringEngine:
    """Drive ``algorithm`` over ``source`` and account every message.

    Parameters
    ----------
    source:
        A :class:`ValueSource` (trace or adaptive adversary).
    algorithm:
        A fresh :class:`MonitoringAlgorithm` instance (one per run).
    k:
        The top-``k`` parameter, used for verification and result metadata.
    eps:
        The output error the algorithm is allowed; used only by the
        verification mode (pass the algorithm's own ε; ``0`` for exact).
    seed:
        Seed/generator for the channel's protocol randomness.
    check:
        When ``True``, verify the three model laws after every step and
        raise :class:`InvariantViolation` on the first breach.  Meant for
        tests and debugging (it reads values omnisciently); benchmarks run
        with ``check=False``.
    record_outputs:
        When ``True`` (default) keep ``F(t)`` per step in the result.
    broadcast_cost:
        Unit price of a broadcast (model ablation T13; default 1 — the
        paper's broadcast-channel model).
    existence_base:
        Growth base of the existence protocol's send probabilities
        (model ablation T14; default 2 — the Lemma 3.1 protocol).
    """

    def __init__(
        self,
        source: ValueSource,
        algorithm: MonitoringAlgorithm,
        *,
        k: int,
        eps: float = 0.0,
        seed: int | np.random.Generator | None = 0,
        check: bool = False,
        record_outputs: bool = True,
        broadcast_cost: int = 1,
        existence_base: float = 2.0,
    ) -> None:
        if not isinstance(source, ValueSource):
            raise TypeError(f"source must implement ValueSource, got {type(source).__name__}")
        self.source = source
        self.algorithm = algorithm
        self.k = int(k)
        self.eps = float(eps)
        self.check = bool(check)
        self.record_outputs = bool(record_outputs)
        self.nodes = NodeArray(source.n)
        self.ledger = CostLedger(broadcast_cost=broadcast_cost)
        self.channel = Channel(
            self.nodes, self.ledger, make_rng(seed), existence_base=existence_base
        )

    def run(self) -> RunResult:
        """Execute the full run and return the measurements."""
        self.algorithm.bind(self.channel)
        result = RunResult(
            ledger=self.ledger,
            num_steps=self.source.num_steps,
            n=self.source.n,
            k=self.k,
            algorithm_name=getattr(self.algorithm, "name", type(self.algorithm).__name__),
        )
        previous: frozenset[int] | None = None
        for t in range(self.source.num_steps):
            self.ledger.begin_step()
            self.nodes.deliver(self.source.values(t, self.nodes))
            if t == 0:
                self.algorithm.on_start()
            else:
                self.algorithm.on_step()
            self.ledger.end_step()
            out = self.algorithm.output()
            if self.record_outputs:
                result.outputs.append(out)
            if previous is not None and out != previous:
                result.output_changes += 1
            previous = out
            if self.check:
                self._verify(t, out)
        return result

    # ------------------------------------------------------------------ #
    def _verify(self, t: int, out: frozenset[int]) -> None:
        ok, why = output_valid(self.nodes.values, self.k, self.eps, out)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid output of {self.algorithm.name}: {why}")
        if not self.algorithm.filter_based:
            return
        ok, why = filters_form_valid_set(self.nodes.filter_lo, self.nodes.filter_hi, out, self.eps)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid filter set of {self.algorithm.name}: {why}")
        ok, why = values_within_filters(self.nodes.values, self.nodes.filter_lo, self.nodes.filter_hi)
        if not ok:
            raise InvariantViolation(f"[t={t}] {self.algorithm.name} did not settle: {why}")
