"""The time-step loop driving an algorithm over a value source.

The engine realizes the continuous monitoring model's clock: at each step
it delivers fresh observations to the nodes, lets the algorithm's protocol
settle, then (optionally) verifies the model's laws with the omniscient
checks of :mod:`repro.model.invariants`:

1. the output ``F(t)`` is a valid ε-top-k set,
2. the assigned filters form a valid set of filters (Observation 2.2), and
3. every node's value lies inside its filter (Definition 2.1) — i.e. the
   protocol really settled.

The loop is *incremental*: :meth:`MonitoringEngine.start` opens a run,
:meth:`MonitoringEngine.advance` consumes observations in arbitrary
chunks, and :meth:`MonitoringEngine.finalize` closes the accounting and
returns the :class:`RunResult`.  :meth:`MonitoringEngine.run` is the
classic one-shot wrapper: it drives the same three calls over a
:class:`ValueSource` from step 0 to ``T-1``.  Incremental runs need no
source at all — construct with ``source=None, n=...`` and push blocks;
this is how the service layer (:mod:`repro.service`) hosts long-lived
monitoring sessions over unbounded streams.

Value sources are either pre-generated traces or *adaptive adversaries*;
the latter receive the :class:`~repro.model.node.NodeArray` (they are
omniscient by definition — "the adversary knows the algorithm's code, the
current state of each node and the server", Sect. 2.1).

The non-check loop has a vectorized fast path (the sweep runner drives
thousands of such runs, see docs/ARCHITECTURE.md):

- sources that declare ``prevalidated = True`` skip the per-step
  shape/finiteness re-checks in :meth:`NodeArray.deliver` —
  :class:`~repro.streams.base.Trace` validates the whole matrix at
  construction, :class:`~repro.streams.streaming.StreamingSource`
  validates each lazily generated block once on arrival, and
  :meth:`MonitoringEngine.advance` validates each pushed block once on
  entry;
- filter-containment tests are served from the node array's cached batch
  (recomputed once per state version, not per query);
- outputs are recorded as rows of a preallocated ``(T, k)`` int array
  (grown by amortized doubling when the horizon is open-ended) instead
  of a list of frozensets, and output-change counting runs as one
  vectorized pass over that array at finalize.

Finalize additionally audits the ledger's accounting law: every charged
message must appear in the per-step series (``sum(per_step) ==
messages``); charges made after ``end_step()`` — e.g. from an
``output()`` side effect — are folded into the step they reacted to by
:class:`~repro.model.ledger.CostLedger`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.model.channel import Channel
from repro.model.invariants import (
    InvariantViolation,
    filters_form_valid_set,
    output_valid,
    values_within_filters,
)
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.model.protocol import MonitoringAlgorithm
from repro.util.rngtools import make_rng

__all__ = ["ValueSource", "MonitoringEngine", "EngineBatch", "RunResult"]

#: Initial ``(T, k)`` output-buffer rows for open-ended runs (no
#: ``expect_steps``); grown by doubling.
_INITIAL_ROWS = 1024


@runtime_checkable
class ValueSource(Protocol):
    """Anything that can feed values to the engine, step by step.

    The engine reads steps strictly in order ``0..T-1``, so sources may
    generate lazily (see :class:`repro.streams.streaming.StreamingSource`,
    which keeps one block resident).  Two optional attributes refine the
    contract:

    - ``prevalidated`` (bool): the source guarantees finite values of
      shape ``(n,)`` at every step — whole-matrix validation for
      :class:`~repro.streams.base.Trace`, per-block validation for
      streaming sources — and the engine skips per-step delivery checks.
    - ``reset()``: called once at the start of every run, letting
      single-pass sources rewind so one source object supports repeated
      runs.
    """

    @property
    def n(self) -> int:
        """Number of nodes."""

    @property
    def num_steps(self) -> int:
        """Number of time steps the source provides."""

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:
        """Observations for step ``t`` (may inspect ``nodes`` — adversaries)."""


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    ledger: CostLedger
    num_steps: int
    n: int
    k: int
    output_changes: int = 0
    algorithm_name: str = ""
    #: Recorded outputs as a ``(T, k)`` int array of sorted node ids —
    #: the engine's compact fast-path representation.  ``None`` when
    #: outputs were not recorded or were irregular (size ≠ k).
    #: Excluded from dataclass comparison (ndarray ``==`` is elementwise).
    outputs_array: np.ndarray | None = field(default=None, compare=False)
    _outputs_list: list[frozenset[int]] | None = field(default=None, repr=False, compare=False)
    _cumulative: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def outputs(self) -> list[frozenset[int]]:
        """``F(t)`` per step as frozensets (empty when not recorded)."""
        if self._outputs_list is None:
            if self.outputs_array is None:
                return []
            self._outputs_list = [frozenset(row) for row in self.outputs_array.tolist()]
        return self._outputs_list

    @property
    def messages(self) -> int:
        """Total unit-cost messages of the run."""
        return self.ledger.messages

    @property
    def cumulative_messages(self) -> np.ndarray:
        """Cumulative message count after each time step (length T).

        Cached after the first access; invalidated when the series has
        changed since — either grown (a live session's ledger) or had a
        late charge folded into its last entry (same length, larger
        total) — so repeated reads of a settled result don't re-run
        ``cumsum``.
        """
        series = self.ledger.per_step
        cached = self._cumulative
        if (
            cached is None
            or cached.shape[0] != len(series)
            or (cached.shape[0] and int(cached[-1]) != series.total)
        ):
            self._cumulative = np.cumsum(np.asarray(series, dtype=np.int64))
        return self._cumulative

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult({self.algorithm_name}, T={self.num_steps}, n={self.n}, "
            f"k={self.k}, messages={self.messages})"
        )


class MonitoringEngine:
    """Drive ``algorithm`` over observations and account every message.

    Parameters
    ----------
    source:
        A :class:`ValueSource` (trace or adaptive adversary), or ``None``
        for a push-driven run fed through :meth:`advance` (then ``n``
        must be given).  Sources with a true ``prevalidated`` attribute
        promise finite values of the right shape at every step and get
        validation-free delivery.
    algorithm:
        A fresh :class:`MonitoringAlgorithm` instance (one per run).
    k:
        The top-``k`` parameter, used for verification and result metadata.
    eps:
        The output error the algorithm is allowed; used only by the
        verification mode (pass the algorithm's own ε; ``0`` for exact).
    seed:
        Seed/generator for the channel's protocol randomness.
    check:
        When ``True``, verify the three model laws after every step and
        raise :class:`InvariantViolation` on the first breach.  Meant for
        tests and debugging (it reads values omnisciently); benchmarks run
        with ``check=False``.
    record_outputs:
        When ``True`` (default) keep ``F(t)`` per step in the result.
    broadcast_cost:
        Unit price of a broadcast (model ablation T13; default 1 — the
        paper's broadcast-channel model).
    existence_base:
        Growth base of the existence protocol's send probabilities
        (model ablation T14; default 2 — the Lemma 3.1 protocol).
    n:
        Number of nodes for push-driven runs (``source=None``); must
        match ``source.n`` when both are given.
    """

    def __init__(
        self,
        source: ValueSource | None,
        algorithm: MonitoringAlgorithm,
        *,
        k: int,
        eps: float = 0.0,
        seed: int | np.random.Generator | None = 0,
        check: bool = False,
        record_outputs: bool = True,
        broadcast_cost: int = 1,
        existence_base: float = 2.0,
        n: int | None = None,
    ) -> None:
        if source is None:
            if n is None:
                raise TypeError("a push-driven engine (source=None) needs n=...")
            num_nodes = int(n)
        else:
            if not isinstance(source, ValueSource):
                raise TypeError(f"source must implement ValueSource, got {type(source).__name__}")
            num_nodes = source.n
            if n is not None and int(n) != num_nodes:
                raise ValueError(f"n={n} contradicts source.n={num_nodes}")
        self.source = source
        self.algorithm = algorithm
        self.k = int(k)
        self.eps = float(eps)
        self.check = bool(check)
        self.record_outputs = bool(record_outputs)
        self.nodes = NodeArray(num_nodes)
        self.ledger = CostLedger(broadcast_cost=broadcast_cost)
        self.channel = Channel(
            self.nodes, self.ledger, make_rng(seed), existence_base=existence_base
        )
        # Incremental run state (created by start()).
        self._started = False
        self._finalized = False
        self._t = 0
        self._rows: np.ndarray | None = None
        self._prev_row: np.ndarray | None = None
        self._changes = 0
        # Object fallback, entered only if an output ever has size != k
        # (a protocol-contract breach the engine tolerates for baselines).
        self._irregular = False
        self._outputs_list: list[frozenset[int]] = []
        self._previous: frozenset[int] | None = None

    # ------------------------------------------------------------------ #
    # One-shot wrapper
    # ------------------------------------------------------------------ #
    def run(self) -> RunResult:
        """Execute the full run over ``source`` and return the measurements."""
        source = self.source
        if source is None:
            raise RuntimeError(
                "run() needs a value source; push-driven engines are driven "
                "with start()/advance()/finalize()"
            )
        reset = getattr(source, "reset", None)
        if callable(reset):
            reset()  # streaming sources rewind to step 0 for this run
        T = source.num_steps
        self.start(expect_steps=T)
        validate = not bool(getattr(source, "prevalidated", False))
        nodes, step = self.nodes, self._step
        for t in range(T):
            step(source.values(t, nodes), validate)
        return self.finalize()

    # ------------------------------------------------------------------ #
    # Incremental drive: start / advance / finalize
    # ------------------------------------------------------------------ #
    def start(self, *, expect_steps: int | None = None) -> None:
        """Open the run: bind the algorithm, allocate recording buffers.

        ``expect_steps`` sizes the ``(T, k)`` output buffer exactly when
        the horizon is known (as :meth:`run` does); without it the buffer
        grows by amortized doubling, so open-ended sessions work too.
        """
        if self._started:
            raise RuntimeError("engine already started; one run per engine")
        self.algorithm.bind(self.channel)
        self._started = True
        if self.record_outputs:
            capacity = expect_steps if expect_steps else _INITIAL_ROWS
            self._rows = np.empty((int(capacity), self.k), dtype=np.int64)

    def advance(self, block: np.ndarray, *, prevalidated: bool = False) -> int:
        """Consume a ``(B, n)`` block of observations, one step per row.

        The block is shape/finiteness-checked once on entry (skipped for
        ``prevalidated=True`` blocks, e.g. rows already validated by a
        :class:`~repro.streams.streaming.StreamingSource`), then every
        row takes the same validation-free delivery fast path as a
        prevalidated source under :meth:`run`.  Returns the total number
        of steps consumed so far.
        """
        if not self._started:
            raise RuntimeError("call start() before advance()")
        if self._finalized:
            raise RuntimeError("engine already finalized")
        if not prevalidated:
            block = np.asarray(block, dtype=np.float64)
            if block.ndim == 1:  # a single step is a 1-row block
                block = block[None, :]
            if block.ndim != 2 or block.shape[1] != self.nodes.n:
                raise ValueError(
                    f"block must have shape (B, {self.nodes.n}), got {block.shape}"
                )
            if not np.all(np.isfinite(block)):
                raise ValueError("stream values must be finite")
        step = self._step
        for row in block:
            step(row, False)
        return self._t

    def finalize(self) -> RunResult:
        """Close the run: audit the accounting, package the result."""
        if not self._started:
            raise RuntimeError("call start() before finalize()")
        if self._finalized:
            raise RuntimeError("engine already finalized")
        self._finalized = True
        ledger = self.ledger
        ledger.flush_late_charges()
        T = self._t
        result = RunResult(
            ledger=ledger,
            num_steps=T,
            n=self.nodes.n,
            k=self.k,
            algorithm_name=getattr(self.algorithm, "name", type(self.algorithm).__name__),
        )
        changes = self._changes
        if self.record_outputs:
            if self._irregular:
                result._outputs_list = self._outputs_list
            else:
                assert self._rows is not None
                rows = self._rows if T == self._rows.shape[0] else self._rows[:T]
                changes = _count_changes(rows)
                result.outputs_array = rows
        result.output_changes = changes
        if T and ledger.unaccounted:
            raise RuntimeError(
                f"ledger accounting drift: {ledger.messages} messages charged "
                f"but per_step records {ledger.per_step.total} — some charge "
                "bypassed the begin_step/end_step bookkeeping"
            )
        return result

    # ------------------------------------------------------------------ #
    # Introspection (live sessions query these mid-run)
    # ------------------------------------------------------------------ #
    @property
    def steps_done(self) -> int:
        """Number of time steps consumed so far."""
        return self._t

    def quiet_step_rounds(self) -> int | None:
        """The algorithm's fixed violation-free step cost (see protocol)."""
        return self.algorithm.quiet_step_rounds()

    @property
    def batchable(self) -> bool:
        """Whether this engine can join an :class:`EngineBatch` right now.

        Requires a started, live, regular-output, non-checking run of an
        algorithm that declares a quiet-step cost — everything else falls
        back to the serial per-engine path.
        """
        return (
            self._started
            and not self._finalized
            and not self._irregular
            and not self.check
            and self.algorithm.quiet_step_rounds() is not None
        )

    def current_output(self) -> frozenset[int] | None:
        """The algorithm's current ``F(t)`` (``None`` before step 0)."""
        if not self._started or self._t == 0:
            return None
        return self.algorithm.output()

    def output_changes_so_far(self) -> int:
        """Output changes over the steps consumed so far."""
        if self.record_outputs and not self._irregular and self._rows is not None:
            return _count_changes(self._rows[: self._t])
        return self._changes

    # ------------------------------------------------------------------ #
    # The per-step core (shared by run() and advance())
    # ------------------------------------------------------------------ #
    def _step(self, values: np.ndarray, validate: bool) -> None:
        ledger = self.ledger
        algorithm = self.algorithm
        t = self._t
        ledger.begin_step()
        self.nodes.deliver(values, validate=validate)
        if t == 0:
            algorithm.on_start()
        else:
            algorithm.on_step()
        ledger.end_step()
        out = algorithm.output()
        k = self.k
        record = self.record_outputs
        if not self._irregular and len(out) == k:
            if record:
                rows = self._rows
                if t == rows.shape[0]:  # open-ended horizon: amortized growth
                    rows = self._grow_rows()
                row = rows[t]
                row[:] = np.fromiter(out, dtype=np.int64, count=k)
                row.sort()  # change counting happens in one batch at finalize
            else:
                cur = np.fromiter(out, dtype=np.int64, count=k)
                cur.sort()
                prev_row = self._prev_row
                if prev_row is not None and not np.array_equal(cur, prev_row):
                    self._changes += 1
                self._prev_row = cur
        else:
            if not self._irregular:  # first irregular output: leave the fast path
                self._irregular = True
                if record:
                    done = self._rows[:t]
                    self._changes = _count_changes(done)
                    self._outputs_list = [frozenset(r) for r in done.tolist()]
                    self._previous = self._outputs_list[-1] if t else None
                elif self._prev_row is not None:
                    self._previous = frozenset(self._prev_row.tolist())
            if record:
                self._outputs_list.append(out)
            if self._previous is not None and out != self._previous:
                self._changes += 1
            self._previous = out
        self._t = t + 1
        if self.check:
            self._verify(t, out)

    def _grow_rows(self, min_rows: int | None = None) -> np.ndarray:
        assert self._rows is not None
        capacity = max(self._rows.shape[0] * 2, _INITIAL_ROWS)
        if min_rows is not None:
            while capacity < min_rows:  # bulk quiet replay can outgrow one doubling
                capacity *= 2
        grown = np.empty((capacity, self.k), dtype=np.int64)
        grown[: self._t] = self._rows[: self._t]
        self._rows = grown
        return grown

    def _record_quiet_steps(self, count: int, rounds_per_step: int) -> None:
        """Replay the bookkeeping of ``count`` violation-free steps at once.

        The batch pass (:class:`EngineBatch`) already wrote the values into
        this engine's node state and proved, step by step, that none of
        them violated the standing filters — so the algorithm was never
        entitled to act, the output is unchanged, and what remains of the
        serial ``_step`` sequence is pure accounting: the ledger's
        begin/rounds/end pattern, ``count`` repeats of the previous output
        row, and the node-state version clock.  Must mirror ``_step``
        exactly; checkpoints taken afterwards are asserted bit-identical
        to serially-fed twins.
        """
        if count <= 0:
            return
        # Step 0 always escalates (on_start) and irregular members are
        # never quiet again, so replay starts from a recorded prior step.
        assert self._t > 0 and not self._irregular
        t = self._t
        self.ledger.record_quiet_steps(count, rounds_per_step)
        if self.record_outputs:
            rows = self._rows
            needed = t + count
            if needed > rows.shape[0]:
                rows = self._grow_rows(min_rows=needed)
            rows[t:needed] = rows[t - 1]
        # Non-record mode: ``_prev_row`` keeps its (equal-content) array
        # and ``_changes`` is untouched — exactly what an unchanged output
        # leaves behind.  Values were delivered in place; only the version
        # clock still has to advance one tick per step.
        self.nodes.advance_version(count)
        self._t = t + count

    # ------------------------------------------------------------------ #
    # Pickling (session checkpoints)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        # Compact the output buffer to its recorded prefix so checkpoint
        # bytes are a pure function of the steps consumed — not of buffer
        # capacity history or the ``np.empty`` garbage past ``_t``.  The
        # cross-topology differential harness asserts blobs bit-identical
        # across restore/migrate histories, which needs this canonical form.
        state = self.__dict__.copy()
        rows = state["_rows"]
        if rows is not None:
            state["_rows"] = rows[: self._t].copy()
        return state

    def __setstate__(self, state: dict) -> None:
        # A compacted buffer may be full (or empty); _grow_rows re-seeds
        # capacity on the next recorded step.  Keys are interned like
        # pickle's default load_build does — otherwise a restored engine
        # re-pickles with different string memoization and the blob bytes
        # drift from an uninterrupted run's.
        self.__dict__.update({sys.intern(key): value for key, value in state.items()})

    # ------------------------------------------------------------------ #
    def _verify(self, t: int, out: frozenset[int]) -> None:
        ok, why = output_valid(self.nodes.values, self.k, self.eps, out)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid output of {self.algorithm.name}: {why}")
        if not self.algorithm.filter_based:
            return
        ok, why = filters_form_valid_set(self.nodes.filter_lo, self.nodes.filter_hi, out, self.eps)
        if not ok:
            raise InvariantViolation(f"[t={t}] invalid filter set of {self.algorithm.name}: {why}")
        ok, why = values_within_filters(self.nodes.values, self.nodes.filter_lo, self.nodes.filter_hi)
        if not ok:
            raise InvariantViolation(f"[t={t}] {self.algorithm.name} did not settle: {why}")


class EngineBatch:
    """Advance S same-width engines through one vectorized pass per step.

    The multi-tenant fast path: member engines' node state is rebased onto
    rows of shared ``(S, n)`` structure-of-arrays blocks (values, filter
    bounds), so one numpy comparison per step classifies every session as
    *quiet* (no node violates its filter — the algorithm, were it called,
    would charge its fixed quiet cost and change nothing) or *escalated*.
    Quiet sessions are advanced as pure bookkeeping in bulk
    (:meth:`MonitoringEngine._record_quiet_steps`); escalated sessions run
    the unmodified serial ``_step``, whose filter updates land directly in
    the shared rows and are seen by the very next vectorized precheck.
    Per member the observable state sequence is bit-identical to feeding
    the same rows serially.

    Members must be :attr:`~MonitoringEngine.batchable` and share ``n``;
    nothing else (algorithm, k, eps, step cursor) needs to match — cohort
    grouping beyond ``n`` is the service layer's policy, not a correctness
    requirement.  A member whose step raises is deactivated with the
    exception captured per member (its engine is left exactly as a serial
    ``advance`` raising mid-block would leave it); the others proceed.

    Call :meth:`close` (always — use ``try/finally``) to detach members
    back to private arrays before they are checkpointed or reused.
    """

    def __init__(self, engines) -> None:
        engines = list(engines)
        if not engines:
            raise ValueError("EngineBatch needs at least one engine")
        n = engines[0].nodes.n
        rounds = []
        for engine in engines:
            if engine.nodes.n != n:
                raise ValueError(f"mixed widths in batch: {engine.nodes.n} != {n}")
            if not engine.batchable:
                raise ValueError("engine is not batchable; use the serial path")
            rounds.append(engine.quiet_step_rounds())
        S = len(engines)
        self.engines = engines
        self.n = n
        self._values = np.empty((S, n), dtype=np.float64)
        self._lo = np.empty((S, n), dtype=np.float64)
        self._hi = np.empty((S, n), dtype=np.float64)
        self._above = np.empty((S, n), dtype=bool)
        self._below = np.empty((S, n), dtype=bool)
        self._viol = np.empty((S, n), dtype=bool)
        #: per-member quiet-step round cost (fixed for the batch's lifetime)
        self._rps = np.asarray(rounds, dtype=np.int64)
        #: quiet steps accumulated per member, not yet folded into engines
        self._pending = np.zeros(S, dtype=np.int64)
        # Step 0 must run on_start; irregular members re-arm this forever.
        self._force = np.fromiter((e.steps_done == 0 for e in engines), dtype=bool, count=S)
        self._active = np.ones(S, dtype=bool)
        #: member-steps classified quiet vs escalated by the vectorized
        #: precheck — observability only, never pickled (the batch is
        #: ephemeral), read by the service layer after each tick.
        self.quiet_member_steps = 0
        self.escalated_member_steps = 0
        self._bound = True
        for i, engine in enumerate(engines):
            engine.nodes.bind_rows(self._values[i], self._lo[i], self._hi[i])

    def advance_batch(self, blocks) -> list[Exception | None]:
        """Consume one ``(B, n)`` block per member, lockstep by step.

        All blocks must have the same row count (the caller segments
        unequal feeds).  Returns one entry per member: ``None`` on
        success, or the exception its serial ``_step`` raised (the member
        is deactivated; its remaining rows are not consumed — the serial
        ``advance`` contract).
        """
        if not self._bound:
            raise RuntimeError("batch already closed")
        S = len(self.engines)
        if len(blocks) != S:
            raise ValueError(f"expected {S} blocks, got {len(blocks)}")
        # (B, S, n) with contiguous (S, n) slabs per step.
        stacked = np.stack(blocks, axis=1).astype(np.float64, copy=False)
        if stacked.ndim != 3 or stacked.shape[2] != self.n:
            raise ValueError(f"blocks must be (B, {self.n}); stacked shape {stacked.shape}")
        errors: list[Exception | None] = [None] * S
        active, force, pending = self._active, self._force, self._pending
        for step_vals in stacked:
            np.greater(step_vals, self._hi, out=self._above)
            np.less(step_vals, self._lo, out=self._below)
            np.logical_or(self._above, self._below, out=self._viol)
            escalate = (self._viol.any(axis=1) | force) & active
            quiet = active & ~escalate
            self.quiet_member_steps += int(np.count_nonzero(quiet))
            self.escalated_member_steps += int(np.count_nonzero(escalate))
            # Quiet members: land the values; bookkeeping is replayed in
            # bulk when the member next escalates (or at block end).
            np.copyto(self._values, step_vals, where=quiet[:, None])
            pending[quiet] += 1
            for i in np.flatnonzero(escalate):
                engine = self.engines[i]
                if pending[i]:
                    engine._record_quiet_steps(int(pending[i]), int(self._rps[i]))
                    pending[i] = 0
                try:
                    engine._step(step_vals[i], False)
                except Exception as exc:  # noqa: BLE001 — per-member isolation
                    errors[i] = exc
                    active[i] = False
                    continue
                force[i] = engine._irregular
        for i in np.flatnonzero(pending):
            self.engines[i]._record_quiet_steps(int(pending[i]), int(self._rps[i]))
            pending[i] = 0
        return errors

    def close(self) -> None:
        """Detach every member back to private arrays (idempotent)."""
        if not self._bound:
            return
        self._bound = False
        for engine in self.engines:
            engine.nodes.unbind()


def _count_changes(rows: np.ndarray) -> int:
    """Vectorized output-change count over sorted ``(T, k)`` output rows."""
    if rows.shape[0] < 2:
        return 0
    return int(np.count_nonzero((rows[1:] != rows[:-1]).any(axis=1)))
