"""Omniscient reference semantics of ε-Top-k-Position Monitoring.

Everything in this module reads node values directly and is therefore
**off-limits to algorithms**; it exists for three purposes:

1. the engine's verification mode (assert output/filter validity per step),
2. the test suite (unit + property tests against these definitions), and
3. analysis (σ(t) series, ground-truth top-k sets for tables).

Definitions implemented 1:1 from Section 2 of the paper.  For time ``t``
with ``v_{π(k,t)}`` the k-th largest value and error ``ε ∈ (0, 1)``:

- ``E(t) = ( v_k / (1-ε), ∞ ]`` — values *clearly larger* than the k-th,
- ``A(t) = [ (1-ε)·v_k , v_k / (1-ε) ]`` — the ε-neighborhood,
- ``K(t) = { i : v_i ∈ A(t) }``, ``σ(t) = |K(t)|``.

A valid output ``F(t)`` has ``|F| = k``, contains every node of ``E`` and
takes the rest from ``K``.  With ``ε = 0`` this degenerates to the exact
problem (``F`` = the unique top-k set, given distinct values).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "kth_largest",
    "exact_topk_set",
    "EpsSets",
    "eps_sets",
    "sigma",
    "output_valid",
    "filters_form_valid_set",
    "values_within_filters",
    "InvariantViolation",
]


class InvariantViolation(AssertionError):
    """Raised by the engine's check mode when a protocol breaks a law."""


def kth_largest(values: np.ndarray, k: int) -> float:
    """The k-th largest value (k=1 → maximum)."""
    values = np.asarray(values, dtype=np.float64)
    if not 1 <= k <= values.size:
        raise ValueError(f"k={k} out of range for {values.size} values")
    return float(np.partition(values, values.size - k)[values.size - k])


def exact_topk_set(values: np.ndarray, k: int) -> frozenset[int]:
    """The exact top-k node set, ties broken toward lower node ids.

    The paper assumes distinct values for the exact problem ("at least by
    using the nodes' identifiers to break ties"); lower id wins here, which
    matches :func:`repro.streams.transforms.make_distinct`.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} values")
    # Sort by (value desc, id asc): lexsort uses the last key as primary.
    order = np.lexsort((np.arange(n), -values))
    return frozenset(int(i) for i in order[:k])


@dataclass(frozen=True, slots=True)
class EpsSets:
    """The Section-2 sets for one time step."""

    vk: float
    """The k-th largest value ``v_{π(k,t)}``."""
    clearly_larger: frozenset[int]
    """``F_E`` candidates: nodes with values in ``E(t)``."""
    neighborhood: frozenset[int]
    """``K(t)``: nodes in the ε-neighborhood ``A(t)``."""
    lo: float
    """Lower end of ``A(t)``: ``(1-ε)·v_k``."""
    hi: float
    """Upper end of ``A(t)``: ``v_k / (1-ε)``."""


def eps_sets(values: np.ndarray, k: int, eps: float) -> EpsSets:
    """Compute ``E``, ``K`` and the ε-neighborhood bounds for one step."""
    values = np.asarray(values, dtype=np.float64)
    if not 0.0 <= eps < 1.0:
        raise ValueError(f"eps must be in [0,1), got {eps}")
    vk = kth_largest(values, k)
    hi = vk / (1.0 - eps)
    lo = (1.0 - eps) * vk
    clearly = np.flatnonzero(values > hi)
    near = np.flatnonzero((values >= lo) & (values <= hi))
    return EpsSets(
        vk=vk,
        clearly_larger=frozenset(int(i) for i in clearly),
        neighborhood=frozenset(int(i) for i in near),
        lo=lo,
        hi=hi,
    )


def sigma(values: np.ndarray, k: int, eps: float) -> int:
    """``σ(t) = |K(t)|`` — the ε-neighborhood population (Sect. 2)."""
    return len(eps_sets(values, k, eps).neighborhood)


def output_valid(values: np.ndarray, k: int, eps: float, output: frozenset[int]) -> tuple[bool, str]:
    """Check output validity per the Section-2 definition.

    Returns ``(ok, reason)``; ``reason`` is empty when valid and otherwise
    names the broken property (used in engine error messages and tests).
    """
    values = np.asarray(values, dtype=np.float64)
    if len(output) != k:
        return False, f"|F| = {len(output)} != k = {k}"
    if any(not (0 <= i < values.size) for i in output):
        return False, "output contains an invalid node id"
    sets_ = eps_sets(values, k, eps)
    missing = sets_.clearly_larger - output
    if missing:
        return False, f"nodes {sorted(missing)} are clearly larger (> {sets_.hi:g}) but not in F"
    rest = output - sets_.clearly_larger
    stray = rest - sets_.neighborhood
    if stray:
        return False, (
            f"nodes {sorted(stray)} are in F but outside the ε-neighborhood "
            f"[{sets_.lo:g}, {sets_.hi:g}]"
        )
    return True, ""


def filters_form_valid_set(
    filter_lo: np.ndarray,
    filter_hi: np.ndarray,
    output: frozenset[int],
    eps: float,
) -> tuple[bool, str]:
    """Observation 2.2: ``∀ i ∈ F, j ∉ F: l_i ≥ (1-ε)·u_j``.

    Vectorized as ``min_{i∈F} l_i ≥ (1-ε)·max_{j∉F} u_j`` (the pairwise
    condition factorizes through the extremes).  A tiny relative tolerance
    absorbs float round-off in ``(1-ε)``-scaling.
    """
    n = filter_lo.size
    in_f = np.zeros(n, dtype=bool)
    in_f[list(output)] = True
    if in_f.all() or not in_f.any():
        return True, ""  # no constraining pair
    min_lo = float(filter_lo[in_f].min())
    max_hi = float(filter_hi[~in_f].max())
    bound = (1.0 - eps) * max_hi
    tol = 1e-12 * max(1.0, abs(bound))
    if min_lo >= bound - tol:
        return True, ""
    return False, (
        f"filter overlap too large: min lower endpoint over F is {min_lo:g} "
        f"< (1-ε)·max upper endpoint over complement = {bound:g}"
    )


def values_within_filters(
    values: np.ndarray, filter_lo: np.ndarray, filter_hi: np.ndarray
) -> tuple[bool, str]:
    """Definition 2.1 requires ``v_i ∈ F_i`` once the protocol settled."""
    bad = np.flatnonzero((values < filter_lo) | (values > filter_hi))
    if bad.size == 0:
        return True, ""
    i = int(bad[0])
    return False, (
        f"{bad.size} node(s) outside their filters after settling, e.g. node {i}: "
        f"value {values[i]:g} not in [{filter_lo[i]:g}, {filter_hi[i]:g}]"
    )
