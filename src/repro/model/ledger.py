"""Message and round accounting.

The efficiency measure of every algorithm in the paper is the *number of
messages*: node→server unicast, server→node unicast and server broadcast
each cost exactly one unit ("these communication methods incur unit
communication cost per message").  Protocol *rounds* are free but bounded
(polylogarithmic between consecutive time steps); the ledger records them
so the bound is auditable.

The ledger additionally keeps

- a per-time-step series of total messages (for the cumulative
  communication-over-time figures), backed by an amortized-growth int64
  buffer so 10⁶-step sessions do not pay per-element ``list`` overhead,
  and
- per-scope counters: primitives run inside ``with ledger.scope("max")``
  attribute their costs to that scope, which the experiment tables use to
  break down where communication goes.

The per-step series satisfies an accounting law the engine asserts at the
end of every run: ``sum(per_step) == messages``.  Messages charged
*between* ``end_step()`` and the next ``begin_step()`` (e.g. from a
side effect of reading the algorithm's output) are folded into the step
that just ended — they happened in reaction to that step — instead of
silently vanishing from the series.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["CostLedger", "CostSnapshot", "StepSeries"]


@dataclass(frozen=True, slots=True)
class CostSnapshot:
    """Immutable view of ledger totals, used for before/after deltas."""

    node_to_server: int
    server_to_node: int
    broadcasts: int
    rounds: int
    broadcast_cost: int = 1

    @property
    def messages(self) -> int:
        """Total message cost (rounds are not messages)."""
        return self.node_to_server + self.server_to_node + self.broadcasts * self.broadcast_cost

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        if self.broadcast_cost != other.broadcast_cost:
            raise ValueError(
                "cannot subtract snapshots taken under different broadcast "
                f"costs ({self.broadcast_cost} vs {other.broadcast_cost}); "
                "the delta's message total would be priced inconsistently"
            )
        return CostSnapshot(
            self.node_to_server - other.node_to_server,
            self.server_to_node - other.server_to_node,
            self.broadcasts - other.broadcasts,
            self.rounds - other.rounds,
            self.broadcast_cost,
        )


class StepSeries:
    """The per-step message series: an amortized-growth int64 buffer.

    Behaves like the ``list[int]`` it replaces — ``len``, indexing,
    slicing, iteration, ``==`` against lists — while storing the counts
    in one contiguous ``int64`` array (appending is amortized O(1) with
    doubling growth, and ``np.asarray(series)`` is a zero-copy view, so
    a 10⁶-step run neither boxes a million ints nor copies to cumsum).

    Only the :class:`CostLedger` appends; consumers treat it as
    read-only.
    """

    __slots__ = ("_buf", "_len")

    _INITIAL_CAPACITY = 64

    def __init__(self) -> None:
        self._buf = np.zeros(self._INITIAL_CAPACITY, dtype=np.int64)
        self._len = 0

    # -------------------------------------------------------------- #
    # Mutation (ledger-internal)
    # -------------------------------------------------------------- #
    def _append(self, value: int) -> None:
        if self._len == self._buf.shape[0]:
            grown = np.empty(self._buf.shape[0] * 2, dtype=np.int64)
            grown[: self._len] = self._buf
            self._buf = grown
        self._buf[self._len] = value
        self._len += 1

    def _add_to_last(self, amount: int) -> None:
        if self._len == 0:
            raise IndexError("cannot fold into an empty step series")
        self._buf[self._len - 1] += amount

    def _extend_zeros(self, count: int) -> None:
        """Append ``count`` zero entries in one pass (quiet-step replay)."""
        needed = self._len + count
        if needed > self._buf.shape[0]:
            capacity = self._buf.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._len] = self._buf[: self._len]
            self._buf = grown
        self._buf[self._len : needed] = 0
        self._len = needed

    # -------------------------------------------------------------- #
    # Sequence protocol
    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return self._len

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._buf[: self._len][index]
        value = self._buf[: self._len][index]  # IndexError past the end
        return int(value)

    def __iter__(self):
        return iter(self._buf[: self._len].tolist())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StepSeries):
            return np.array_equal(np.asarray(self), np.asarray(other))
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        if isinstance(other, np.ndarray):
            return bool(np.array_equal(np.asarray(self), other))
        return NotImplemented

    def __array__(self, dtype=None, copy=None):
        view = self._buf[: self._len]
        if dtype is not None and dtype != view.dtype:
            return view.astype(dtype)
        if copy:
            return view.copy()
        return view

    def tolist(self) -> list[int]:
        """The series as a plain list of Python ints."""
        return self._buf[: self._len].tolist()

    # -------------------------------------------------------------- #
    # Pickling
    # -------------------------------------------------------------- #
    def __getstate__(self):
        # Canonical form: exactly the recorded prefix.  Pickling the raw
        # buffer would bake amortized-growth capacity (and ``np.empty``
        # garbage past ``_len``) into checkpoints, making the blob bytes
        # depend on append/restore history instead of the series alone —
        # the cross-topology harness asserts blobs bit-identical.
        return self._buf[: self._len].copy()

    def __setstate__(self, state) -> None:
        data = np.ascontiguousarray(state, dtype=np.int64)
        self._len = int(data.shape[0])
        # An empty buffer cannot grow by doubling; reseed capacity.
        self._buf = data if self._len else np.zeros(self._INITIAL_CAPACITY, dtype=np.int64)

    @property
    def total(self) -> int:
        """Sum of the series (one vectorized pass)."""
        return int(self._buf[: self._len].sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = self._buf[: min(self._len, 8)].tolist()
        tail = ", ..." if self._len > 8 else ""
        return f"StepSeries([{', '.join(map(str, head))}{tail}], len={self._len})"


class CostLedger:
    """Mutable account of all communication in one simulation run.

    Parameters
    ----------
    broadcast_cost:
        Unit price of one broadcast.  The paper's model (Cormode et al.'s
        broadcast enhancement) uses 1; setting it to ``n`` recovers the
        plain model where reaching all nodes takes ``n`` unicasts —
        experiment T13 quantifies what the broadcast channel buys.
    """

    def __init__(self, broadcast_cost: int = 1) -> None:
        if broadcast_cost < 1:
            raise ValueError(f"broadcast_cost must be >= 1, got {broadcast_cost}")
        self.broadcast_cost = int(broadcast_cost)
        self.node_to_server = 0
        self.server_to_node = 0
        self.broadcasts = 0
        self.rounds = 0
        #: messages charged during each completed time step
        self.per_step = StepSeries()
        #: message total already recorded in ``per_step``
        self._accounted = 0
        self._scopes: list[str] = []
        self._by_scope: dict[str, int] = defaultdict(int)
        self._max_rounds_in_step = 0
        self._step_start_rounds = 0

    # ------------------------------------------------------------------ #
    # Charging
    # ------------------------------------------------------------------ #
    def charge_up(self, count: int = 1) -> None:
        """Charge ``count`` node→server messages."""
        self._charge("node_to_server", count)

    def charge_down(self, count: int = 1) -> None:
        """Charge ``count`` server→node unicast messages."""
        self._charge("server_to_node", count)

    def charge_broadcast(self, count: int = 1) -> None:
        """Charge ``count`` broadcasts (``broadcast_cost`` units each)."""
        self._charge("broadcasts", count, scope_amount=count * self.broadcast_cost)

    def charge_rounds(self, count: int = 1) -> None:
        """Record ``count`` protocol rounds (free, but bounded)."""
        if count < 0:
            raise ValueError(f"negative round count {count}")
        self.rounds += count

    def _charge(self, attr: str, count: int, scope_amount: int | None = None) -> None:
        if count < 0:
            raise ValueError(f"negative message count {count}")
        setattr(self, attr, getattr(self, attr) + count)
        if self._scopes:
            # Dedupe in stack order, not via ``set()``: set iteration is
            # hash-randomized *per process*, which would make ``_by_scope``
            # insertion order — and hence checkpoint blob bytes — differ
            # between a worker process and an in-process oracle.
            charged: set[str] = set()
            for name in self._scopes:
                if name not in charged:
                    charged.add(name)
                    self._by_scope[name] += count if scope_amount is None else scope_amount

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def messages(self) -> int:
        """Total message cost so far (broadcasts weighted by their price)."""
        return self.node_to_server + self.server_to_node + self.broadcasts * self.broadcast_cost

    def snapshot(self) -> CostSnapshot:
        """Immutable totals; subtract two snapshots to get a phase cost."""
        return CostSnapshot(
            self.node_to_server,
            self.server_to_node,
            self.broadcasts,
            self.rounds,
            self.broadcast_cost,
        )

    def by_scope(self) -> dict[str, int]:
        """Message totals attributed to each named scope."""
        return dict(self._by_scope)

    @property
    def max_rounds_per_step(self) -> int:
        """The largest number of rounds used between two time steps."""
        return self._max_rounds_in_step

    # ------------------------------------------------------------------ #
    # Time-step bookkeeping (driven by the engine)
    # ------------------------------------------------------------------ #
    def begin_step(self) -> None:
        """Mark the start of a time step (engine hook).

        Any messages charged since the previous ``end_step()`` — e.g.
        from a side effect of reading the algorithm's output after the
        step was closed — are folded into the step that just ended, so
        the series never loses charges (``sum(per_step) == messages``).
        """
        late = self.messages - self._accounted
        if late and len(self.per_step):
            self.per_step._add_to_last(late)
            self._accounted = self.messages
        self._step_start_rounds = self.rounds

    def end_step(self) -> None:
        """Mark the end of a time step; append to the per-step series."""
        self.per_step._append(self.messages - self._accounted)
        self._accounted = self.messages
        self._max_rounds_in_step = max(
            self._max_rounds_in_step, self.rounds - self._step_start_rounds
        )

    def flush_late_charges(self) -> int:
        """Fold post-``end_step()`` charges of the final step into the series.

        The engine calls this once at finalize (there is no trailing
        ``begin_step()`` to catch them).  Returns the folded amount.
        Charges made when *no* step has completed cannot be attributed
        and are left for the engine's accounting check to flag.
        """
        late = self.messages - self._accounted
        if late and len(self.per_step):
            self.per_step._add_to_last(late)
            self._accounted = self.messages
        return late

    def record_quiet_steps(self, count: int, rounds_per_step: int) -> None:
        """Account ``count`` violation-free steps in one bulk update.

        Replays exactly what ``count`` iterations of ``begin_step()`` /
        ``charge_rounds(rounds_per_step)`` / ``end_step()`` would have
        left behind when no messages are charged: the late-charge fold of
        the *first* ``begin_step()`` (subsequent ones see nothing late),
        ``count`` zeros appended to ``per_step``, the round counter and
        the max-rounds watermark, and ``_step_start_rounds`` as the last
        step's starting point.  Used by the engine's batch fast path; any
        divergence from the serial sequence here breaks checkpoint
        bit-identity.
        """
        if count <= 0:
            return
        late = self.messages - self._accounted
        if late and len(self.per_step):
            self.per_step._add_to_last(late)
            self._accounted = self.messages
        self.per_step._extend_zeros(count)
        self.rounds += count * rounds_per_step
        self._step_start_rounds = self.rounds - rounds_per_step
        if rounds_per_step > self._max_rounds_in_step:
            self._max_rounds_in_step = rounds_per_step

    @property
    def unaccounted(self) -> int:
        """Messages not (yet) recorded in ``per_step``."""
        return self.messages - self.per_step.total

    # ------------------------------------------------------------------ #
    # Scoping
    # ------------------------------------------------------------------ #
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Attribute messages charged inside the block to ``name``.

        Scopes nest *hierarchically*: a message charged inside nested
        scopes counts toward every scope on the stack (once per distinct
        name), so a composite primitive's total includes its building
        blocks.  Different scopes therefore overlap and do not sum to the
        ledger total.
        """
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostLedger(up={self.node_to_server}, down={self.server_to_node}, "
            f"bcast={self.broadcasts}, rounds={self.rounds})"
        )
