"""Message and round accounting.

The efficiency measure of every algorithm in the paper is the *number of
messages*: node→server unicast, server→node unicast and server broadcast
each cost exactly one unit ("these communication methods incur unit
communication cost per message").  Protocol *rounds* are free but bounded
(polylogarithmic between consecutive time steps); the ledger records them
so the bound is auditable.

The ledger additionally keeps

- a per-time-step series of total messages (for the cumulative
  communication-over-time figures), and
- per-scope counters: primitives run inside ``with ledger.scope("max")``
  attribute their costs to that scope, which the experiment tables use to
  break down where communication goes.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["CostLedger", "CostSnapshot"]


@dataclass(frozen=True, slots=True)
class CostSnapshot:
    """Immutable view of ledger totals, used for before/after deltas."""

    node_to_server: int
    server_to_node: int
    broadcasts: int
    rounds: int
    broadcast_cost: int = 1

    @property
    def messages(self) -> int:
        """Total message cost (rounds are not messages)."""
        return self.node_to_server + self.server_to_node + self.broadcasts * self.broadcast_cost

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        if self.broadcast_cost != other.broadcast_cost:
            raise ValueError(
                "cannot subtract snapshots taken under different broadcast "
                f"costs ({self.broadcast_cost} vs {other.broadcast_cost}); "
                "the delta's message total would be priced inconsistently"
            )
        return CostSnapshot(
            self.node_to_server - other.node_to_server,
            self.server_to_node - other.server_to_node,
            self.broadcasts - other.broadcasts,
            self.rounds - other.rounds,
            self.broadcast_cost,
        )


class CostLedger:
    """Mutable account of all communication in one simulation run.

    Parameters
    ----------
    broadcast_cost:
        Unit price of one broadcast.  The paper's model (Cormode et al.'s
        broadcast enhancement) uses 1; setting it to ``n`` recovers the
        plain model where reaching all nodes takes ``n`` unicasts —
        experiment T13 quantifies what the broadcast channel buys.
    """

    def __init__(self, broadcast_cost: int = 1) -> None:
        if broadcast_cost < 1:
            raise ValueError(f"broadcast_cost must be >= 1, got {broadcast_cost}")
        self.broadcast_cost = int(broadcast_cost)
        self.node_to_server = 0
        self.server_to_node = 0
        self.broadcasts = 0
        self.rounds = 0
        #: messages charged during each completed time step
        self.per_step: list[int] = []
        self._step_start_messages = 0
        self._scopes: list[str] = []
        self._by_scope: dict[str, int] = defaultdict(int)
        self._max_rounds_in_step = 0
        self._step_start_rounds = 0

    # ------------------------------------------------------------------ #
    # Charging
    # ------------------------------------------------------------------ #
    def charge_up(self, count: int = 1) -> None:
        """Charge ``count`` node→server messages."""
        self._charge("node_to_server", count)

    def charge_down(self, count: int = 1) -> None:
        """Charge ``count`` server→node unicast messages."""
        self._charge("server_to_node", count)

    def charge_broadcast(self, count: int = 1) -> None:
        """Charge ``count`` broadcasts (``broadcast_cost`` units each)."""
        self._charge("broadcasts", count, scope_amount=count * self.broadcast_cost)

    def charge_rounds(self, count: int = 1) -> None:
        """Record ``count`` protocol rounds (free, but bounded)."""
        if count < 0:
            raise ValueError(f"negative round count {count}")
        self.rounds += count

    def _charge(self, attr: str, count: int, scope_amount: int | None = None) -> None:
        if count < 0:
            raise ValueError(f"negative message count {count}")
        setattr(self, attr, getattr(self, attr) + count)
        if self._scopes:
            for name in set(self._scopes):
                self._by_scope[name] += count if scope_amount is None else scope_amount

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def messages(self) -> int:
        """Total message cost so far (broadcasts weighted by their price)."""
        return self.node_to_server + self.server_to_node + self.broadcasts * self.broadcast_cost

    def snapshot(self) -> CostSnapshot:
        """Immutable totals; subtract two snapshots to get a phase cost."""
        return CostSnapshot(
            self.node_to_server,
            self.server_to_node,
            self.broadcasts,
            self.rounds,
            self.broadcast_cost,
        )

    def by_scope(self) -> dict[str, int]:
        """Message totals attributed to each named scope."""
        return dict(self._by_scope)

    @property
    def max_rounds_per_step(self) -> int:
        """The largest number of rounds used between two time steps."""
        return self._max_rounds_in_step

    # ------------------------------------------------------------------ #
    # Time-step bookkeeping (driven by the engine)
    # ------------------------------------------------------------------ #
    def begin_step(self) -> None:
        """Mark the start of a time step (engine hook)."""
        self._step_start_messages = self.messages
        self._step_start_rounds = self.rounds

    def end_step(self) -> None:
        """Mark the end of a time step; append to the per-step series."""
        self.per_step.append(self.messages - self._step_start_messages)
        self._max_rounds_in_step = max(
            self._max_rounds_in_step, self.rounds - self._step_start_rounds
        )

    # ------------------------------------------------------------------ #
    # Scoping
    # ------------------------------------------------------------------ #
    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Attribute messages charged inside the block to ``name``.

        Scopes nest *hierarchically*: a message charged inside nested
        scopes counts toward every scope on the stack (once per distinct
        name), so a composite primitive's total includes its building
        blocks.  Different scopes therefore overlap and do not sum to the
        ledger total.
        """
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostLedger(up={self.node_to_server}, down={self.server_to_node}, "
            f"bcast={self.broadcasts}, rounds={self.rounds})"
        )
