"""Node-local state: private values and server-assigned filters.

A :class:`NodeArray` holds what the *nodes* know — their current stream
values and the filter interval each was last assigned.  Server-side
algorithms must never read ``values`` directly; they interact with nodes
exclusively through :class:`repro.model.channel.Channel`, which charges the
cost ledger.  (The attribute is deliberately public so that *omniscient*
components — invariant checks, offline OPT, adaptive adversaries — can read
it; the layering is enforced by convention and by the test suite, which
audits that algorithms only hold a ``Channel``.)

Filters follow Definition 2.1: one closed interval per node, ``[lo, hi]``
with ``hi = +inf`` allowed.  A node *violates from below* when its value
exceeds ``hi`` (it crossed the upper boundary coming from below) and
*violates from above* when its value drops under ``lo`` — the paper's
slightly counter-intuitive naming, kept here for 1:1 traceability.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.intervals import Interval

__all__ = ["NodeArray", "VIOLATION_NONE", "VIOLATION_BELOW", "VIOLATION_ABOVE"]

#: No violation: the value lies inside the assigned filter.
VIOLATION_NONE = 0
#: Violation *from below*: value > filter upper bound (Sect. 2.1).
VIOLATION_BELOW = 1
#: Violation *from above*: value < filter lower bound (Sect. 2.1).
VIOLATION_ABOVE = 2


class NodeArray:
    """Vectorized state of the ``n`` distributed nodes.

    Parameters
    ----------
    n:
        Number of nodes.  Node ids are ``0..n-1`` (the paper uses 1-based
        ids only for exposition).
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"need at least 2 nodes, got {n}")
        self.n = int(n)
        self.values = np.zeros(n, dtype=np.float64)
        # Initial filters are [-inf, +inf]: silent until the server speaks.
        self.filter_lo = np.full(n, -math.inf, dtype=np.float64)
        self.filter_hi = np.full(n, math.inf, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Value delivery (engine-side)
    # ------------------------------------------------------------------ #
    def deliver(self, values: np.ndarray) -> None:
        """Install the time step's observations (one per node)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {values.shape}")
        if not np.all(np.isfinite(values)):
            raise ValueError("stream values must be finite")
        self.values[:] = values

    # ------------------------------------------------------------------ #
    # Filter assignment (channel-side; costs charged by the channel)
    # ------------------------------------------------------------------ #
    def set_filter(self, node_id: int, interval: Interval) -> None:
        """Assign ``interval`` as node ``node_id``'s filter."""
        self.filter_lo[node_id] = interval.lo
        self.filter_hi[node_id] = interval.hi

    def set_filters_bulk(self, ids: np.ndarray, lo: float, hi: float) -> None:
        """Assign the same ``[lo, hi]`` filter to every node in ``ids``."""
        self.filter_lo[ids] = lo
        self.filter_hi[ids] = hi

    def get_filter(self, node_id: int) -> Interval:
        """Return node ``node_id``'s current filter."""
        return Interval(float(self.filter_lo[node_id]), float(self.filter_hi[node_id]))

    # ------------------------------------------------------------------ #
    # Node-local predicates (free: local computation costs nothing)
    # ------------------------------------------------------------------ #
    def violation_kind(self) -> np.ndarray:
        """Per-node violation code (``VIOLATION_*``) for current values."""
        kind = np.zeros(self.n, dtype=np.int8)
        kind[self.values > self.filter_hi] = VIOLATION_BELOW
        kind[self.values < self.filter_lo] = VIOLATION_ABOVE
        return kind

    def violating_mask(self) -> np.ndarray:
        """Boolean mask of nodes whose value is outside their filter."""
        return (self.values > self.filter_hi) | (self.values < self.filter_lo)

    def mask_above(self, threshold: float, *, strict: bool = True) -> np.ndarray:
        """Mask of nodes with value above ``threshold``."""
        return self.values > threshold if strict else self.values >= threshold

    def mask_below(self, threshold: float, *, strict: bool = True) -> np.ndarray:
        """Mask of nodes with value below ``threshold``."""
        return self.values < threshold if strict else self.values <= threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeArray(n={self.n})"
