"""Node-local state: private values and server-assigned filters.

A :class:`NodeArray` holds what the *nodes* know — their current stream
values and the filter interval each was last assigned.  Server-side
algorithms must never read ``values`` directly; they interact with nodes
exclusively through :class:`repro.model.channel.Channel`, which charges the
cost ledger.  (The attribute is deliberately public so that *omniscient*
components — invariant checks, offline OPT, adaptive adversaries — can read
it; the layering is enforced by convention and by the test suite, which
audits that algorithms only hold a ``Channel``.)

Filters follow Definition 2.1: one closed interval per node, ``[lo, hi]``
with ``hi = +inf`` allowed.  A node *violates from below* when its value
exceeds ``hi`` (it crossed the upper boundary coming from below) and
*violates from above* when its value drops under ``lo`` — the paper's
slightly counter-intuitive naming, kept here for 1:1 traceability.

Filter-containment is the per-step hot predicate of every filter-based
protocol, so the array keeps a *batched* violation state (per-node kind
codes plus the violating ids) computed at most once per state version:
every mutator bumps ``version`` and the next violation query recomputes
the whole batch into preallocated buffers.  External code that mutates
``values``/``filter_lo``/``filter_hi`` arrays directly (only the channel
legitimately writes filters) must either go through the methods here or
call :meth:`touch`.
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro.util.intervals import Interval

__all__ = ["NodeArray", "VIOLATION_NONE", "VIOLATION_BELOW", "VIOLATION_ABOVE"]

#: No violation: the value lies inside the assigned filter.
VIOLATION_NONE = 0
#: Violation *from below*: value > filter upper bound (Sect. 2.1).
VIOLATION_BELOW = 1
#: Violation *from above*: value < filter lower bound (Sect. 2.1).
VIOLATION_ABOVE = 2


class NodeArray:
    """Vectorized state of the ``n`` distributed nodes.

    Parameters
    ----------
    n:
        Number of nodes.  Node ids are ``0..n-1`` (the paper uses 1-based
        ids only for exposition).
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"need at least 2 nodes, got {n}")
        self.n = int(n)
        self.values = np.zeros(n, dtype=np.float64)
        # Initial filters are [-inf, +inf]: silent until the server speaks.
        self.filter_lo = np.full(n, -math.inf, dtype=np.float64)
        self.filter_hi = np.full(n, math.inf, dtype=np.float64)
        #: Monotone state version; bumped by every mutator.
        self.version = 0
        # Batched violation state, recomputed lazily per version.
        self._viol_version = -1
        self._viol_kind = np.zeros(n, dtype=np.int8)
        self._viol_ids = np.empty(0, dtype=np.int64)
        self._above_buf = np.empty(n, dtype=bool)
        self._below_buf = np.empty(n, dtype=bool)

    # ------------------------------------------------------------------ #
    # Value delivery (engine-side)
    # ------------------------------------------------------------------ #
    def deliver(self, values: np.ndarray, *, validate: bool = True) -> None:
        """Install the time step's observations (one per node).

        ``validate=False`` skips the shape/finiteness checks — the
        engine's fast path for sources that pre-validate whole traces at
        construction (see :class:`repro.streams.base.Trace`).
        """
        if validate:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (self.n,):
                raise ValueError(f"expected shape ({self.n},), got {values.shape}")
            if not np.all(np.isfinite(values)):
                raise ValueError("stream values must be finite")
        self.values[:] = values
        self.version += 1

    # ------------------------------------------------------------------ #
    # Filter assignment (channel-side; costs charged by the channel)
    # ------------------------------------------------------------------ #
    def set_filter(self, node_id: int, interval: Interval) -> None:
        """Assign ``interval`` as node ``node_id``'s filter."""
        self.filter_lo[node_id] = interval.lo
        self.filter_hi[node_id] = interval.hi
        self.version += 1

    def set_filters_bulk(self, ids: np.ndarray, lo: float, hi: float) -> None:
        """Assign the same ``[lo, hi]`` filter to every node in ``ids``."""
        self.filter_lo[ids] = lo
        self.filter_hi[ids] = hi
        self.version += 1

    def freeze_all(self) -> None:
        """Every node adopts the point filter ``[v_i, v_i]`` locally."""
        self.filter_lo[:] = self.values
        self.filter_hi[:] = self.values
        self.version += 1

    def freeze_one(self, node_id: int) -> None:
        """One node re-arms its point filter from its own value."""
        i = int(node_id)
        self.filter_lo[i] = self.values[i]
        self.filter_hi[i] = self.values[i]
        self.version += 1

    def touch(self) -> None:
        """Invalidate cached violation state after a direct array write."""
        self.version += 1

    # ------------------------------------------------------------------ #
    # Structure-of-arrays binding (multi-session batch fast path)
    # ------------------------------------------------------------------ #
    def bind_rows(self, values_row: np.ndarray, lo_row: np.ndarray, hi_row: np.ndarray) -> None:
        """Rebase state onto caller-owned row views of a ``(S, n)`` block.

        :class:`~repro.model.engine.EngineBatch` points each member session
        at one row of a shared structure-of-arrays block so that quiet
        steps touch all sessions in a single vectorized pass.  Current
        state is copied in and the arrays are swapped; every existing
        mutator keeps working unchanged because they all write through
        ``self.values``/``self.filter_lo``/``self.filter_hi`` in place.
        Binding is invisible to the protocol (same contents, same version)
        and must be undone with :meth:`unbind` before the array is
        pickled or outlives the block.
        """
        values_row[:] = self.values
        lo_row[:] = self.filter_lo
        hi_row[:] = self.filter_hi
        self.values = values_row
        self.filter_lo = lo_row
        self.filter_hi = hi_row
        self._viol_version = -1

    def unbind(self) -> None:
        """Detach from a shared block by re-owning copies of the rows.

        ``.copy()`` rather than ``np.ascontiguousarray``: row views of a
        C-contiguous 2-D block are themselves contiguous, so the latter
        would return the view unchanged and the "private" state would
        keep aliasing the (about to be reused) block.
        """
        self.values = self.values.copy()
        self.filter_lo = self.filter_lo.copy()
        self.filter_hi = self.filter_hi.copy()
        self._viol_version = -1

    def advance_version(self, count: int) -> None:
        """Bump the state version by ``count`` mutations at once.

        The batch path's quiet-step replay delivers ``count`` steps of
        values in bulk; the version must advance exactly as if
        :meth:`deliver` had run once per step, so that checkpoints taken
        afterwards are bit-identical to the serial path's.
        """
        self.version += int(count)

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        # The violation cache and its scratch buffers are derived state,
        # recomputed lazily per version.  Excluding them keeps checkpoint
        # bytes a pure function of (values, filters, version): ``np.empty``
        # scratch would otherwise leak uninitialized memory, and the cache
        # contents would depend on whether violations were read since the
        # last mutation.
        state = self.__dict__.copy()
        for key in ("_viol_version", "_viol_kind", "_viol_ids", "_above_buf", "_below_buf"):
            del state[key]
        return state

    def __setstate__(self, state: dict) -> None:
        # Intern keys like pickle's default load_build would, so restored
        # node arrays re-pickle with identical string memoization.
        self.__dict__.update({sys.intern(key): value for key, value in state.items()})
        n = self.n
        self._viol_version = -1
        self._viol_kind = np.zeros(n, dtype=np.int8)
        self._viol_ids = np.empty(0, dtype=np.int64)
        self._above_buf = np.empty(n, dtype=bool)
        self._below_buf = np.empty(n, dtype=bool)

    def get_filter(self, node_id: int) -> Interval:
        """Return node ``node_id``'s current filter."""
        return Interval(float(self.filter_lo[node_id]), float(self.filter_hi[node_id]))

    # ------------------------------------------------------------------ #
    # Node-local predicates (free: local computation costs nothing)
    # ------------------------------------------------------------------ #
    def _refresh_violations(self) -> None:
        """Batch-recompute the violation state for the current version."""
        if self._viol_version == self.version:
            return
        np.greater(self.values, self.filter_hi, out=self._above_buf)
        np.less(self.values, self.filter_lo, out=self._below_buf)
        kind = self._viol_kind
        kind[:] = VIOLATION_NONE
        kind[self._above_buf] = VIOLATION_BELOW
        kind[self._below_buf] = VIOLATION_ABOVE
        self._viol_ids = np.flatnonzero(self._above_buf | self._below_buf)
        self._viol_version = self.version

    def violation_kind(self) -> np.ndarray:
        """Per-node violation code (``VIOLATION_*``) for current values.

        Returns the cached batch buffer — treat it as read-only; it is
        rewritten in place on the next state change.
        """
        self._refresh_violations()
        return self._viol_kind

    def violation_ids(self) -> np.ndarray:
        """Ids of nodes outside their filter (cached; treat as read-only)."""
        self._refresh_violations()
        return self._viol_ids

    def violating_mask(self) -> np.ndarray:
        """Boolean mask of nodes whose value is outside their filter.

        Always a fresh array — callers may mutate it freely.
        """
        self._refresh_violations()
        return self._viol_kind != VIOLATION_NONE

    def mask_above(self, threshold: float, *, strict: bool = True) -> np.ndarray:
        """Mask of nodes with value above ``threshold``."""
        return self.values > threshold if strict else self.values >= threshold

    def mask_below(self, threshold: float, *, strict: bool = True) -> np.ndarray:
        """Mask of nodes with value below ``threshold``."""
        return self.values < threshold if strict else self.values <= threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeArray(n={self.n})"
