"""The interface every server-side monitoring algorithm implements.

An algorithm is the *server* of the paper: it owns an output set ``F(t)``
of ``k`` node ids, assigns filters through its :class:`Channel`, and reacts
to filter-violations.  The engine drives it with one call per time step;
within that call the algorithm may run as many protocol rounds as it needs
to *settle* — i.e. to reach a state where no node violates its assigned
filter — before the next observations arrive (the model allows polylog
rounds between steps; the ledger audits this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.model.channel import Channel, Violation

__all__ = ["MonitoringAlgorithm", "ProtocolError", "drain_violations"]

#: Hard cap on violation-processing iterations within one time step.  A
#: correct protocol settles in O(polylog) iterations; hitting the cap means
#: a progress bug (or a pathological float stream below the algorithm's
#: resolution) and raises :class:`ProtocolError` instead of hanging.
MAX_SETTLE_ITERATIONS = 200_000


class ProtocolError(RuntimeError):
    """Raised when a protocol fails to make progress within a time step."""


class MonitoringAlgorithm(ABC):
    """Base class for server-side (online) monitoring algorithms."""

    #: Human-readable name used in tables and benchmark ids.
    name: str = "abstract"

    #: Whether the algorithm maintains Definition-2.1 filters.  The engine
    #: only enforces the filter laws (Observation 2.2, values-in-filters)
    #: for filter-based algorithms; naive baselines opt out.
    filter_based: bool = True

    def __init__(self) -> None:
        self._channel: Channel | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle (called by the engine)
    # ------------------------------------------------------------------ #
    def bind(self, channel: Channel) -> None:
        """Attach the communication channel (engine hook, called once)."""
        if self._channel is not None:
            raise RuntimeError("algorithm already bound to a channel; create a fresh instance per run")
        self._channel = channel

    @property
    def channel(self) -> Channel:
        """The bound channel; raises if the engine has not bound one yet."""
        if self._channel is None:
            raise RuntimeError("algorithm not bound; run it through MonitoringEngine")
        return self._channel

    @abstractmethod
    def on_start(self) -> None:
        """Initialize at time 0 (first observations already delivered)."""

    @abstractmethod
    def on_step(self) -> None:
        """React to one new time step's observations and settle."""

    @abstractmethod
    def output(self) -> frozenset[int]:
        """The current output set ``F(t)`` (exactly ``k`` node ids)."""

    # ------------------------------------------------------------------ #
    # Optional statistics
    # ------------------------------------------------------------------ #
    @property
    def phases(self) -> int:
        """Number of phases started (algorithm-specific; 0 if untracked)."""
        return 0

    # ------------------------------------------------------------------ #
    # Batch fast-path contract
    # ------------------------------------------------------------------ #
    def quiet_step_rounds(self) -> int | None:
        """Fixed round cost of a violation-free :meth:`on_step`, or ``None``.

        Returning an integer ``R`` asserts a strict contract: whenever no
        node violates its currently assigned filter, :meth:`on_step`
        charges exactly ``R`` protocol rounds, zero messages, draws no
        randomness from the channel RNG, and mutates no algorithm or
        filter state (so :meth:`output` is unchanged).  The engine's
        multi-session batch path (:class:`repro.model.engine.EngineBatch`)
        relies on this to replay quiet steps as pure bookkeeping without
        calling the algorithm — bit-identically to the serial loop.

        ``None`` (the default) opts out: every step runs through
        :meth:`on_step` even inside a batch.
        """
        return None


def drain_violations(
    channel: Channel,
    handle: Callable[[Violation], None],
    *,
    max_iterations: int = MAX_SETTLE_ITERATIONS,
) -> int:
    """Process filter-violations one at a time until the system is silent.

    Implements the paper's convention that "the server processes one
    violation at a time in an arbitrary order" and "may ignore" reports
    made stale by filter updates: each loop iteration re-runs the
    existence-based violation detection (Cor. 3.2) against the *current*
    filters, so stale reports vanish by construction.  Multiple responders
    in one existence round are all charged (their messages were sent), but
    only the first is acted upon.

    Returns the number of violations handled.  Raises
    :class:`ProtocolError` if the handler fails to make progress.
    """
    handled = 0
    for _ in range(max_iterations):
        reports = channel.existence_violations()
        if not reports:
            return handled
        handle(reports[0])
        handled += 1
    raise ProtocolError(
        f"no settlement after {max_iterations} violation-processing iterations; "
        "the protocol is not making progress (check `resolution` vs the stream's value grid)"
    )
