"""The offline adversary's optimum (the competitive-ratio denominator).

Proposition 2.4 shows an optimal filter-based offline algorithm needs only
two filters at any time, and Lemma 2.5 characterizes when it can stay
silent.  This package turns that into a computable quantity:

- :mod:`repro.offline.feasibility` — can a window ``[t, t']`` be survived
  with one fixed output and two fixed filters?
- :mod:`repro.offline.phases` — greedy maximal feasible windows (optimal
  for the downward-monotone feasibility predicate).
- :mod:`repro.offline.opt` — OPT's message lower bound and the explicit
  two-filter offline algorithm's cost.
"""

from repro.offline.feasibility import window_feasible, witness_set
from repro.offline.opt import OfflineResult, offline_opt
from repro.offline.phases import greedy_phases
from repro.offline.schedule import OfflinePlayer, OfflineSchedule, build_schedule

__all__ = [
    "OfflinePlayer",
    "OfflineResult",
    "OfflineSchedule",
    "build_schedule",
    "greedy_phases",
    "offline_opt",
    "window_feasible",
    "witness_set",
]
