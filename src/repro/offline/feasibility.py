"""Window feasibility for a two-filter offline algorithm.

**Claim** (Lemma 2.5 + converse).  An offline filter-based algorithm can
survive a window ``[t, t']`` without communication — one fixed output
``S``, one fixed pair of filters — **iff** there is a k-subset ``S`` with

    MIN_S(t, t') ≥ (1-ε) · MAX_{S̄}(t, t'),

where MIN/MAX are the per-node window extremes of Definition 2.3.

*Necessity* is Lemma 2.5 verbatim.  *Sufficiency*: set
``F1 = [MIN_S, ∞]``, ``F2 = [-∞, MAX_{S̄}]`` (Prop. 2.4's two filters) —
no violations by construction, valid by Observation 2.2; and ``S`` is a
valid ε-output at every step in the window:

- with ``m := MIN_S``, ``M := MAX_{S̄}`` and ``m ≥ (1-ε)M``, the k-th
  largest value satisfies ``m ≤ v_k ≤ m/(1-ε)`` (S's k members give the
  lower bound; any node beating ``m/(1-ε) ≥ M`` must be in S, and S's own
  minimum does not, giving the upper bound);
- hence no outsider is clearly-larger (``v_j ≤ M ≤ v_k/(1-ε)``, using
  ``v_k ≥ m ≥ (1-ε)M``), and every member of S sits above
  ``m ≥ (1-ε)·v_k·(1-ε)/(1-ε) … ≥ (1-ε)v_k`` — inside the ε-neighborhood
  or above, as required.

**Checking ∃S** efficiently: let ``a_i`` = window min and ``b_i`` = window
max of node ``i``.  If ``S`` works, ``θ := MAX_{S̄} b`` is one of the
``b`` values and every node with ``b_j > θ`` must be in ``S``; so it
suffices to scan the k+1 largest ``b`` values as candidate θ (any smaller
θ forces more than k mandatory members).  For each candidate:

1. all mandatory nodes (``b > θ``) must satisfy ``a ≥ (1-ε)θ``, and
2. at least ``k`` nodes overall must satisfy ``a ≥ (1-ε)θ``.

Both checks are vectorized; the scan is O(k) candidates over O(n) work.
"""

from __future__ import annotations

import numpy as np

__all__ = ["window_feasible", "witness_set"]


def _candidate_thetas(b: np.ndarray, k: int) -> np.ndarray:
    """The k+1 largest window maxima (descending, with duplicates kept)."""
    m = min(k + 1, b.size)
    idx = np.argpartition(b, b.size - m)[b.size - m :]
    return np.sort(b[idx])[::-1]


def window_feasible(a: np.ndarray, b: np.ndarray, k: int, eps: float) -> bool:
    """∃ k-set S with ``min_S a ≥ (1-eps)·max_{S̄} b``?

    ``a``/``b`` are per-node window minima/maxima (``a <= b`` pointwise).
    """
    return _feasible_theta(a, b, k, eps) is not None


def witness_set(a: np.ndarray, b: np.ndarray, k: int, eps: float) -> np.ndarray | None:
    """A concrete witness S (node ids) or ``None`` when infeasible.

    Mandatory members (``b > θ``) come first; the remainder is filled with
    the largest-``a`` qualifying nodes.  Used by tests to cross-validate
    the fast feasibility check against the definition.
    """
    theta = _feasible_theta(a, b, k, eps)
    if theta is None:
        return None
    mandatory = np.flatnonzero(b > theta)
    mandatory_set = {int(i) for i in mandatory}
    qualified = np.flatnonzero(a >= (1.0 - eps) * theta)
    by_a_desc = qualified[np.argsort(-a[qualified], kind="stable")]
    fill = [int(i) for i in by_a_desc if int(i) not in mandatory_set]
    chosen = sorted(mandatory_set) + fill[: k - len(mandatory_set)]
    return np.array(sorted(chosen[:k]), dtype=np.int64)


def _feasible_theta(a: np.ndarray, b: np.ndarray, k: int, eps: float) -> float | None:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.size
    if b.shape != a.shape or a.ndim != 1:
        raise ValueError("a and b must be 1-D arrays of equal length")
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, n), got k={k}, n={n}")
    if np.any(a > b):
        raise ValueError("window minima exceed maxima — a/b swapped?")
    scale = 1.0 - eps
    for theta in _candidate_thetas(b, k):
        mandatory = b > theta
        count_mandatory = int(mandatory.sum())
        if count_mandatory > k:
            continue  # too many forced members; smaller θ only adds more
        bound = scale * theta
        qualifies = a >= bound
        if count_mandatory and not np.all(qualifies[mandatory]):
            continue
        if int(qualifies.sum()) >= k:
            return float(theta)
    return None
