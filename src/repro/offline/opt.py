"""OPT's cost: the competitive-ratio denominator.

Two numbers are reported for every trace (DESIGN.md §4 item 9):

- ``message_lb`` — the information-theoretic lower bound every
  filter-based offline algorithm obeys: with ``P`` greedy feasible
  windows, any algorithm with ``c`` communications splits time into
  ``c + 1`` silent stretches, each of which must be feasible, so
  ``c ≥ P - 1``.  Competitive ratios in the experiment tables divide by
  ``max(1, P - 1)`` (pessimistic *for the online algorithm*).
- ``explicit_cost`` — what the concrete offline strategy of the
  Theorem 5.1 proof pays: at the start of each window, one unicast filter
  to each of the k output nodes plus one broadcast for everyone else,
  i.e. ``(k + 1) · P`` messages.  This is an upper bound on OPT and the
  fair comparison point for end-to-end message tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.offline.phases import greedy_phases
from repro.streams.base import Trace

__all__ = ["OfflineResult", "offline_opt"]


@dataclass(frozen=True, slots=True)
class OfflineResult:
    """Offline optimum summary for one trace."""

    phases: int
    """Minimum number of feasible windows P."""
    phase_starts: tuple[int, ...]
    """Start index of each window."""
    k: int
    eps: float

    @property
    def message_lb(self) -> int:
        """Lower bound on any filter-based offline algorithm: P − 1."""
        return max(0, self.phases - 1)

    @property
    def ratio_denominator(self) -> int:
        """``max(1, P − 1)`` — the denominator used in ratio tables."""
        return max(1, self.message_lb)

    @property
    def explicit_cost(self) -> int:
        """The Thm 5.1-style explicit offline algorithm: (k+1)·P."""
        return (self.k + 1) * self.phases


def offline_opt(trace: Trace, k: int, eps: float) -> OfflineResult:
    """Compute the offline optimum summary for ``trace``.

    ``eps`` is the *offline* algorithm's allowed error — pass ``0`` to
    model the exact adversary of Section 4, the online algorithm's ε for
    Theorem 5.8 comparisons, or ``ε/2`` for Corollary 5.9.
    """
    starts = greedy_phases(trace, k, eps)
    return OfflineResult(
        phases=len(starts),
        phase_starts=tuple(starts),
        k=int(k),
        eps=float(eps),
    )
