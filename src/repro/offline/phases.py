"""Greedy decomposition of a trace into maximal feasible windows.

Feasibility (see :mod:`repro.offline.feasibility`) is *downward monotone*:
any sub-window of a feasible window is feasible (shrinking the window only
relaxes the per-node extremes).  For monotone predicates the greedy
longest-feasible-prefix partition uses the minimum possible number of
windows — the standard exchange argument: the greedy window starting at
``t`` reaches at least as far as any other feasible window starting at or
before ``t``, so by induction greedy never needs more windows than any
partition.

The per-node window extremes are maintained incrementally (O(n) per step),
so decomposing a ``(T, n)`` trace costs O(T·(n + k·n)) — well under a
second for the experiment sizes.
"""

from __future__ import annotations

import numpy as np

from repro.offline.feasibility import window_feasible
from repro.streams.base import Trace
from repro.util.checks import check_epsilon

__all__ = ["greedy_phases"]


def greedy_phases(trace: Trace, k: int, eps: float) -> list[int]:
    """Start indices of the greedy maximal feasible windows.

    The first window always starts at 0; the return value has one entry
    per window, so ``len(result)`` is the minimum number of feasible
    windows (``P`` in DESIGN.md §4) and ``len(result) - 1`` lower-bounds
    OPT's communications.
    """
    eps = check_epsilon(eps, allow_zero=True)
    data = trace.data
    T, n = data.shape
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, n), got k={k}, n={n}")
    starts = [0]
    a = data[0].copy()  # window minima
    b = data[0].copy()  # window maxima
    for t in range(1, T):
        row = data[t]
        new_a = np.minimum(a, row)
        new_b = np.maximum(b, row)
        if window_feasible(new_a, new_b, k, eps):
            a, b = new_a, new_b
        else:
            starts.append(t)
            a = row.copy()
            b = row.copy()
            # A single step is always feasible: S = the current top-k has
            # min_S v = v_k ≥ (1-ε)·v_{k+1} = (1-ε)·max_{S̄} v.
    return starts
