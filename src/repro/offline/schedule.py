"""An *executable* offline optimum: the adversary's concrete filter plan.

:func:`repro.offline.opt.offline_opt` counts what OPT must pay;
this module constructs what OPT actually *does* — per greedy window, a
witness output set ``S`` and the Prop. 2.4 two-filter assignment

    F1 = [MIN_S(window), ∞]   for i ∈ S,
    F2 = [-∞, MAX_{S̄}(window)] for the rest,

which provably produces zero filter-violations inside the window and a
valid ε-output at every step (see :mod:`repro.offline.feasibility`).
:class:`OfflinePlayer` replays the schedule through the normal engine, so
the offline algorithm's bill is *measured* by the same ledger as every
online algorithm — the timeline figure's OPT curve is a real run, not an
estimate.

The player is, of course, omniscient (it was built from the whole trace);
it exists to realize the adversary's side of the competitive game, never
as a deployable algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.protocol import MonitoringAlgorithm
from repro.offline.feasibility import witness_set
from repro.offline.phases import greedy_phases
from repro.streams.base import Trace
from repro.util.intervals import Interval

__all__ = ["OfflineSchedule", "ScheduleWindow", "build_schedule", "OfflinePlayer"]


@dataclass(frozen=True, slots=True)
class ScheduleWindow:
    """One no-communication stretch of the offline plan."""

    start: int
    stop: int  # exclusive
    output: tuple[int, ...]
    lower: float  # F1 = [lower, ∞] for the output nodes
    upper: float  # F2 = [-∞, upper] for everyone else

    @property
    def length(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True, slots=True)
class OfflineSchedule:
    """The full plan: windows + bookkeeping."""

    windows: tuple[ScheduleWindow, ...]
    k: int
    eps: float

    @property
    def reconfigurations(self) -> int:
        """Window switches — each costs (k + 1) messages when replayed."""
        return len(self.windows)


def build_schedule(trace: Trace, k: int, eps: float) -> OfflineSchedule:
    """Construct the two-filter offline plan for ``trace``.

    Windows come from the greedy decomposition (minimum count); the
    witness set and filter endpoints come straight from the feasibility
    characterization.  Raises if a window has no witness — impossible by
    construction, so it doubles as an internal consistency check.
    """
    starts = greedy_phases(trace, k, eps)
    bounds = list(starts) + [trace.num_steps]
    windows = []
    for start, stop in zip(starts, bounds[1:]):
        segment = trace.data[start:stop]
        a = segment.min(axis=0)
        b = segment.max(axis=0)
        witness = witness_set(a, b, k, eps)
        if witness is None:  # pragma: no cover - greedy guarantees feasibility
            raise AssertionError(f"greedy window [{start},{stop}) has no witness")
        members = np.asarray(witness, dtype=np.int64)
        rest_mask = np.ones(trace.n, dtype=bool)
        rest_mask[members] = False
        windows.append(
            ScheduleWindow(
                start=start,
                stop=stop,
                output=tuple(int(i) for i in members),
                lower=float(a[members].min()),
                upper=float(b[rest_mask].max()),
            )
        )
    return OfflineSchedule(windows=tuple(windows), k=int(k), eps=float(eps))


class OfflinePlayer(MonitoringAlgorithm):
    """Replay an :class:`OfflineSchedule` through the engine.

    At each window start it pays the Theorem 5.1 offline price: one
    unicast filter per output node plus one broadcast for the rest.
    Inside a window it is silent by construction (tests assert this via
    the engine's check mode).
    """

    name = "offline-player"

    def __init__(self, schedule: OfflineSchedule) -> None:
        super().__init__()
        self.schedule = schedule
        self._t = 0
        self._window_idx = -1

    def on_start(self) -> None:
        self._apply_if_boundary()
        self._t = 1

    def on_step(self) -> None:
        self._apply_if_boundary()
        self._t += 1

    def output(self) -> frozenset[int]:
        return frozenset(self.schedule.windows[self._window_idx].output)

    # ------------------------------------------------------------------ #
    def _apply_if_boundary(self) -> None:
        nxt = self._window_idx + 1
        if nxt < len(self.schedule.windows) and self.schedule.windows[nxt].start == self._t:
            window = self.schedule.windows[nxt]
            self._window_idx = nxt
            for node in window.output:
                self.channel.unicast_filter(node, Interval.at_least(window.lower))
            rest = np.setdiff1d(
                np.arange(self.channel.n, dtype=np.int64),
                np.asarray(window.output, dtype=np.int64),
            )
            self.channel.broadcast_filters([(rest, Interval.at_most(window.upper))])
