"""The sweep runner: declarative grids, parallel evaluation, caching.

The experiment suite's chassis (see docs/ARCHITECTURE.md):

- :mod:`repro.runner.grid` — declare a sweep (:func:`sweep`) as cells of
  plain params with content-derived per-cell seeds,
- :mod:`repro.runner.pool` — evaluate it (:func:`run_grid`) serially or
  with a process pool, deterministically either way,
- :mod:`repro.runner.cache` — skip cells whose content-hash key already
  has an on-disk result,
- :mod:`repro.runner.results` — merge ordered cell results into the
  experiment suite's tables.

Typical experiment shape::

    def _cell(params, seed):            # module-level, pure, picklable
        trace = random_walk(params["T"], params["n"], rng=params["trace_seed"])
        res = MonitoringEngine(trace, make_algo(params), k=params["k"],
                               seed=seed, record_outputs=False).run()
        return {"msgs": res.messages}

    def run(quick=True, seed=0, runner=None):
        spec = sweep("T4", _cell, {"n": [16, 64], "T": [300], ...}, seed=seed)
        rows = zip_params((c.as_dict() for c in spec.cells),
                          run_grid(spec, runner))
        ...build tables/figures from rows...
"""

from repro.runner.cache import ResultCache, default_cache_dir, grid_fingerprint
from repro.runner.grid import Cell, CellFn, GridSpec, canonical_json, derive_seed, sweep
from repro.runner.pool import SERIAL, RunnerConfig, default_jobs, run_grid
from repro.runner.results import zip_params

__all__ = [
    "Cell",
    "CellFn",
    "GridSpec",
    "ResultCache",
    "RunnerConfig",
    "SERIAL",
    "canonical_json",
    "default_cache_dir",
    "default_jobs",
    "derive_seed",
    "grid_fingerprint",
    "run_grid",
    "sweep",
    "zip_params",
]
