"""Content-hash keyed on-disk cache of sweep-cell results.

A cell's cache key digests everything that determines its result:

- the grid *fingerprint* — experiment id, root seed, the cell
  function's qualified name, a digest of the **entire ``repro`` package
  source tree**, the package version, and a cache-format version, and
- the cell itself — its canonical params and derived seed.

Digesting the whole package (not just the cell function) is a
deliberately conservative choice: cells call through every layer —
engine, protocols, stream generators — so *any* source edit must
invalidate, or a cache-on-by-default CLI would silently serve stale
tables after a bug fix.  The package is small (~70 files); the digest
is computed once per process and costs milliseconds.  Out-of-tree cell
functions (e.g. user notebooks) additionally contribute their own
module's source.

Entries are one JSON file per cell under ``<root>/<exp_id>/``, written
atomically (temp file + rename) so concurrent pool workers and parallel
CLI invocations never observe torn entries.  Unreadable or mismatched
entries count as misses and are overwritten.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import platform
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.runner.grid import Cell, GridSpec, canonical_json

__all__ = ["CACHE_FORMAT", "ResultCache", "default_cache_dir", "grid_fingerprint"]

#: Bump when the on-disk entry layout changes.
CACHE_FORMAT = 1


def default_cache_dir() -> Path:
    """``results/.cache`` under the results root (see experiments.common).

    Honors the same ``REPRO_RESULTS_DIR`` override as every other result
    artifact, plus a dedicated ``REPRO_CACHE_DIR`` override.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    from repro.experiments.common import default_results_dir

    return default_results_dir() / ".cache"


_package_digest_cache: str | None = None


def _package_digest() -> str:
    """Digest of every ``.py`` file under the ``repro`` package.

    Computed once per process; any source edit anywhere in the package
    yields a new digest and thus a cold cache.
    """
    global _package_digest_cache
    if _package_digest_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _package_digest_cache = h.hexdigest()
    return _package_digest_cache


def grid_fingerprint(spec: GridSpec) -> str:
    """Digest of everything grid-wide that determines cell results."""
    import repro

    fn = spec.fn
    module_name = getattr(fn, "__module__", "") or ""
    if module_name.split(".")[0] == "repro":
        source = ""  # already covered by the package digest
    else:
        try:
            module = inspect.getmodule(fn)
            source = inspect.getsource(module if module is not None else fn)
        except (OSError, TypeError):  # builtins, REPL definitions
            source = ""
    material = canonical_json(
        [
            "repro-grid",
            CACHE_FORMAT,
            repro.__version__,
            _package_digest(),
            # Environment: numeric results may legitimately change across
            # interpreter/numpy upgrades (e.g. NEP 50 promotion rules).
            platform.python_version(),
            np.__version__,
            spec.exp_id,
            spec.seed,
            f"{module_name}.{getattr(fn, '__qualname__', fn.__name__)}",
            source,
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """On-disk result store for one cache root directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def cell_key(self, fingerprint: str, cell: Cell) -> str:
        """The cell's content hash (file stem of its entry)."""
        material = canonical_json(
            ["repro-cell", fingerprint, dict(cell.params), cell.seed]
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, exp_id: str, key: str) -> Path:
        return self.root / exp_id / f"{key}.json"

    # ------------------------------------------------------------------ #
    def lookup(self, spec: GridSpec, fingerprint: str, cell: Cell) -> dict[str, Any] | None:
        """The cached result for ``cell``, or ``None`` on a miss."""
        path = self._path(spec.exp_id, self.cell_key(fingerprint, cell))
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def store(self, spec: GridSpec, fingerprint: str, cell: Cell, result: dict[str, Any]) -> None:
        """Persist one cell result (atomic; last writer wins)."""
        path = self._path(spec.exp_id, self.cell_key(fingerprint, cell))
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "exp_id": spec.exp_id,
            "params": cell.as_dict(),
            "seed": cell.seed,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
