"""Declarative sweep grids: the *what* of an experiment, minus the loop.

A :class:`GridSpec` names an experiment, a **cell function**, and an
ordered list of **cells**.  One cell is one point of the sweep — a flat
``params`` mapping of JSON-scalar values plus a derived per-cell seed —
and the cell function maps ``(params, seed)`` to a plain ``dict`` of
measurements.  The runner (:mod:`repro.runner.pool`) evaluates the cells
serially or in a process pool and always returns results in cell order,
so a grid's output is independent of how it was scheduled.

Two rules make the whole pipeline deterministic and cacheable:

1. **Cells are pure.**  A cell function must build everything it needs
   (traces, algorithms, engines) from ``params`` and ``seed`` alone and
   must return JSON-serializable data (dicts of scalars/lists).  It must
   be a *module-level* function so the process pool can pickle it.
2. **Seeds are content-derived.**  Each cell's seed is a stable hash of
   ``(experiment id, root seed, params)`` — independent of the cell's
   position, so extending or reordering a grid never reshuffles the
   randomness (or the cache keys) of existing cells.

Experiments that need *shared* randomness across cells (e.g. T4's single
master walk rescaled per Δ) pass the shared seed explicitly as a param;
the derived per-cell seed then covers only the cell-local randomness
(typically the channel's protocol coins).

Workloads ride in cells as plain data, too: a registry slug plus its
parameters serialized with :func:`canonical_json` (cell params must be
JSON scalars, so nested mappings travel as one canonical string — see
``exp_timeline`` and :mod:`repro.streams.registry`).  That makes the
*scenario* a sweep axis like any other, with caching and determinism
intact.

See docs/ARCHITECTURE.md for the grid → pool → cache → results data
flow.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = ["Cell", "CellFn", "GridSpec", "sweep", "canonical_json", "derive_seed"]

#: A cell function: ``(params, seed) -> result dict``.  Must live at
#: module level (picklable by reference) and be pure.
CellFn = Callable[[dict[str, Any], int], dict[str, Any]]

def _normalize_value(key: str, value: Any) -> Any:
    """Coerce a param value to JSON-stable form (scalars or lists of them)."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, float)):
        return value
    if isinstance(value, int):
        return int(value)  # collapses numpy integer scalars
    if isinstance(value, (list, tuple)):
        return [_normalize_value(key, v) for v in value]
    # numpy float scalars and the like: accept anything that round-trips
    # through float without losing identity.
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise TypeError(
            f"param {key!r} has non-JSON-scalar value {value!r} "
            f"({type(value).__name__}); cells must be plain data"
        ) from None
    return as_float


def normalize_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and normalize one cell's params to plain JSON data."""
    return {str(k): _normalize_value(str(k), v) for k, v in params.items()}


def canonical_json(obj: Any) -> str:
    """A stable, whitespace-free JSON encoding (sorted keys)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(root_seed: int, exp_id: str, params: Mapping[str, Any]) -> int:
    """Stable 63-bit per-cell seed from ``(exp_id, root_seed, params)``.

    Content-keyed (not index-keyed): the same cell keeps the same seed
    when the grid around it grows, shrinks, or is reordered.
    """
    material = canonical_json(["repro-cell-seed", exp_id, int(root_seed), dict(params)])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


@dataclass(frozen=True)
class Cell:
    """One point of a sweep: ordered params plus the derived seed."""

    index: int
    params: tuple[tuple[str, Any], ...]
    seed: int

    def as_dict(self) -> dict[str, Any]:
        """The params as a fresh mutable dict (what the cell fn receives)."""
        return dict(self.params)


@dataclass(frozen=True)
class GridSpec:
    """A fully-specified sweep: ``fn`` evaluated over ``cells``.

    Build one with :func:`sweep` rather than by hand; it validates params
    and derives the per-cell seeds.
    """

    exp_id: str
    fn: CellFn
    cells: tuple[Cell, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.cells)


def sweep(
    exp_id: str,
    fn: CellFn,
    axes: Mapping[str, Sequence[Any]] | None = None,
    *,
    cells: Iterable[Mapping[str, Any]] | None = None,
    seed: int = 0,
) -> GridSpec:
    """Build a :class:`GridSpec`.

    Parameters
    ----------
    exp_id:
        Experiment id (``"T4"``); part of every cell's seed and cache key.
    fn:
        The module-level cell function.
    axes:
        Cartesian-product shorthand: ``{"n": [16, 64], "eps": [0.1]}``
        expands, in axis order, to one cell per combination.
    cells:
        Explicit cell params for irregular sweeps (e.g. axes whose range
        depends on another axis).  Exactly one of ``axes``/``cells``.
    seed:
        The experiment's root seed.
    """
    if (axes is None) == (cells is None):
        raise TypeError("pass exactly one of axes= or cells=")
    if axes is not None:
        names = list(axes)
        combos: Iterable[Mapping[str, Any]] = (
            dict(zip(names, values)) for values in itertools.product(*(axes[n] for n in names))
        )
    else:
        combos = cells  # type: ignore[assignment]
    built: list[Cell] = []
    for index, raw in enumerate(combos):
        params = normalize_params(raw)
        built.append(
            Cell(
                index=index,
                params=tuple(params.items()),
                seed=derive_seed(seed, exp_id, params),
            )
        )
    if not built:
        raise ValueError(f"grid {exp_id!r} has no cells")
    return GridSpec(exp_id=exp_id, fn=fn, cells=tuple(built), seed=int(seed))
