"""Grid evaluation: serial or multiprocessing fan-out, same results.

:func:`run_grid` is the single entry point.  The determinism law it
upholds — and tests/runner/test_pool.py enforces — is:

    the same :class:`~repro.runner.grid.GridSpec` produces the same
    result list whether evaluated with ``jobs=1``, ``jobs=8``, with a
    cold cache, or with a warm one.

It holds because cells are pure functions of ``(params, seed)``, because
the pool maps cells back to their submission order, and because every
result — computed or cached — is normalized through a JSON round-trip
(so a cache hit can never differ from the computation that produced it,
e.g. by tuple-vs-list drift).

``jobs=1`` never touches :mod:`multiprocessing`; ``jobs>1`` uses a
``fork`` pool where available (no re-import, inherits ``sys.path``) and
falls back to ``spawn`` elsewhere.  On a single-core host a parallel run
is still *correct* — it just cannot be faster.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.runner.cache import ResultCache, default_cache_dir, grid_fingerprint
from repro.runner.grid import CellFn, GridSpec

__all__ = ["RunnerConfig", "SERIAL", "default_jobs", "run_grid"]


def default_jobs() -> int:
    """A sensible ``--jobs auto`` value: the usable CPU count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


@dataclass(frozen=True)
class RunnerConfig:
    """How to evaluate grids: parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) evaluates in-process.
    cache:
        When ``True``, completed cells are served from / stored to the
        on-disk :class:`~repro.runner.cache.ResultCache`.
    cache_dir:
        Cache root; defaults to ``results/.cache`` (see
        :func:`~repro.runner.cache.default_cache_dir`).
    """

    jobs: int = 1
    cache: bool = False
    cache_dir: Path | str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")


#: The default config: in-process, no cache — what library callers and
#: the test/benchmark suites get unless they opt in.
SERIAL = RunnerConfig()


def _execute(payload: tuple[CellFn, dict[str, Any], int]) -> dict[str, Any]:
    """Pool worker: evaluate one cell (module-level, hence picklable)."""
    fn, params, seed = payload
    return fn(params, seed)


def _roundtrip(spec: GridSpec, result: Any) -> dict[str, Any]:
    """Normalize a freshly-computed result exactly as the cache would."""
    if not isinstance(result, dict):
        raise TypeError(
            f"cell function of {spec.exp_id} returned {type(result).__name__}; "
            "cells must return a dict of JSON-serializable measurements"
        )
    try:
        return json.loads(json.dumps(result))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"cell result of {spec.exp_id} is not JSON-serializable: {exc}"
        ) from None


def run_grid(
    spec: GridSpec,
    config: RunnerConfig | None = None,
    *,
    stats: dict[str, int] | None = None,
) -> list[dict[str, Any]]:
    """Evaluate every cell of ``spec`` and return results in cell order.

    Parameters
    ----------
    spec:
        The sweep to evaluate (build with :func:`repro.runner.sweep`).
    config:
        Parallelism/caching knobs; ``None`` means :data:`SERIAL`.
    stats:
        Optional dict that receives ``{"computed": x, "cached": y}`` —
        how many cells actually ran versus were served from disk.
    """
    config = config or SERIAL
    cache: ResultCache | None = None
    fingerprint = ""
    if config.cache:
        cache = ResultCache(config.cache_dir or default_cache_dir())
        fingerprint = grid_fingerprint(spec)

    results: list[dict[str, Any] | None] = [None] * len(spec.cells)
    pending = list(spec.cells)
    if cache is not None:
        pending = []
        for cell in spec.cells:
            hit = cache.lookup(spec, fingerprint, cell)
            if hit is not None:
                results[cell.index] = hit
            else:
                pending.append(cell)

    payloads = [(spec.fn, cell.as_dict(), cell.seed) for cell in pending]
    if payloads:
        if config.jobs > 1 and len(payloads) > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            with ctx.Pool(processes=min(config.jobs, len(payloads))) as pool:
                computed = pool.map(_execute, payloads)
        else:
            computed = [_execute(p) for p in payloads]
        for cell, raw in zip(pending, computed):
            result = _roundtrip(spec, raw)
            results[cell.index] = result
            if cache is not None:
                cache.store(spec, fingerprint, cell, result)

    if stats is not None:
        stats["computed"] = stats.get("computed", 0) + len(pending)
        stats["cached"] = stats.get("cached", 0) + (len(spec.cells) - len(pending))
    return results  # type: ignore[return-value]  # every slot is filled
