"""Merging ordered cell results back into experiment presentation.

Cell functions return flat measurement dicts; experiments keep their
presentation logic (tables, derived columns, notes, figures) and use
:func:`zip_params` to reunite each cell's params with its result before
building rows.  Because :func:`~repro.runner.pool.run_grid` returns
results in cell order, anything built from the merged rows is
byte-identical across serial, parallel, and cached evaluations of the
same spec.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["zip_params"]


def zip_params(
    cells: Iterable[Mapping[str, Any]], results: Iterable[Mapping[str, Any]]
) -> list[dict[str, Any]]:
    """Merge each cell's params into its result (params first, result wins)."""
    return [{**dict(c), **dict(r)} for c, r in zip(cells, results)]
