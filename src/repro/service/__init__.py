"""The monitoring service layer: long-lived sessions over the model core.

The paper's algorithms are *continuous* monitors — the server must be
able to answer the top-k query at every step of an unbounded stream.
This package hosts them that way:

- :mod:`repro.service.algorithms` — algorithm slugs → monitor factories
  (the algorithm-side twin of :mod:`repro.streams.registry`).
- :mod:`repro.service.session` — :class:`Session`: one incremental run,
  fed in batches, queryable at any time, checkpoint/resumable; and
  :class:`SessionBatch`: many same-cohort sessions advanced per
  vectorized tick, bit-identical to feeding each alone.
- :mod:`repro.service.wire` — the wire protocols: v1 JSON lines and
  the v2 binary framing (raw float64/blob payloads, ``hello``
  negotiation), shared by every peer.
- :mod:`repro.service.server` — the asyncio TCP server hosting many
  concurrent sessions.
- :mod:`repro.service.shard` — sharded serving: a supervisor process
  consistent-hashing sessions onto N shared-nothing worker processes
  (same wire protocols; v2 session frames are spliced through the
  supervisor undecoded; scales with cores).
- :mod:`repro.service.client` — async + sync client libraries, with
  windowed feed pipelining over either framing.
- :mod:`repro.service.loadgen` — workload replay against a live server,
  with throughput reporting.
- :mod:`repro.service.cli` — the ``serve`` / ``loadgen`` subcommands of
  ``python -m repro.experiments``.

Quickstart (in-process; see examples/service_quickstart.py for the
served version)::

    from repro.service import Session, SessionConfig

    session = Session(SessionConfig(
        algorithm="approx-monitor", n=32, k=4, eps=0.1, seed=7,
    ))
    session.feed(block)            # any (B, 32) chunk of observations
    session.output()               # current F(t)
    session.cost().messages        # total communication so far
    blob = session.snapshot()      # checkpoint ...
    resumed = Session.restore(blob)  # ... and continue bit-identically
"""

from repro.service.algorithms import AlgorithmParamError, make_algorithm
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.server import MonitoringServer
from repro.service.session import Session, SessionBatch, SessionConfig, SnapshotError
from repro.service.shard import ShardedMonitoringServer, ShardError, ShardRing

__all__ = [
    "AlgorithmParamError",
    "AsyncServiceClient",
    "MonitoringServer",
    "ServiceClient",
    "ServiceError",
    "Session",
    "SessionBatch",
    "SessionConfig",
    "ShardError",
    "ShardRing",
    "ShardedMonitoringServer",
    "SnapshotError",
    "make_algorithm",
]
