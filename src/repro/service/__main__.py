"""``python -m repro.service`` — ops-plane terminal tools.

One subcommand so far::

    python -m repro.service top --port 8181 [--host H] [--interval 2]

``top`` polls a running server's admin plane (``GET /stats``, see
:mod:`repro.service.admin`) and renders a live terminal dashboard:
fleet counters, per-shard link/forward gauges, op latency percentiles,
and sparkline F(t)/cost series straight from the registry's ring
buffers.  Pure stdlib (urllib + ANSI clears); ``--once`` prints a
single frame for scripts and tests.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any

from repro.service import metrics as metricslib

#: Eighth-block glyphs, the classic terminal sparkline alphabet.
_SPARK = " ▁▂▃▄▅▆▇█"


def fetch_stats(host: str, port: int, timeout: float = 5.0) -> dict[str, Any]:
    """One ``GET /stats`` against the admin plane."""
    url = f"http://{host}:{port}/stats"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def sparkline(values: list[float], width: int = 48) -> str:
    """Render a series tail as one line of block glyphs."""
    if not values:
        return "(no data)"
    tail = values[-width:]
    lo, hi = min(tail), max(tail)
    span = (hi - lo) or 1.0
    return "".join(
        _SPARK[1 + int((v - lo) / span * (len(_SPARK) - 2))] for v in tail
    )


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


def render_stats(stats: dict[str, Any], width: int = 78) -> str:
    """One dashboard frame from a ``/stats`` payload (pure; testable)."""
    dump = stats.get("metrics", {})
    counters = dump.get("counters", {})
    gauges = dump.get("gauges", {})
    histograms = dump.get("histograms", {})
    series = dump.get("series", {})

    lines = []
    shards = stats.get("shards")
    topology = f"{shards} shards" if shards is not None else "single process"
    lines.append(
        f"repro fleet · {topology} · {stats.get('sessions', 0)} sessions · "
        f"metrics {'on' if stats.get('enabled') else 'off'} · "
        f"batching {'on' if stats.get('batching') else 'off'}"
    )
    lines.append("─" * width)

    def total(name: str) -> int:
        # Fleet view: the bare supervisor counter plus shard-labelled ones.
        out = 0
        for key, value in counters.items():
            base, _ = metricslib.split_key(key)
            if base == name:
                out += value
        return out

    lines.append(
        f"requests {_fmt(total('repro_requests_total'))}   "
        f"steps {_fmt(total('repro_steps_ingested_total'))}   "
        f"batched ticks/steps {_fmt(total('repro_batched_ticks_total'))}/"
        f"{_fmt(total('repro_batched_steps_total'))}   "
        f"quiet/escalated {_fmt(total('repro_quiet_steps_total'))}/"
        f"{_fmt(total('repro_escalated_steps_total'))}"
    )

    # Per-shard gauges (sharded topologies only).
    by_shard: dict[str, list[str]] = {}
    for key, value in sorted(gauges.items()):
        name, labels = metricslib.split_key(key)
        if "shard" in labels and name == "repro_links_in_use":
            by_shard.setdefault(labels["shard"], []).append(f"links {_fmt(value)}")
    for key, hist in sorted(histograms.items()):
        name, labels = metricslib.split_key(key)
        if name == "repro_forward_seconds" and "shard" in labels:
            p95 = hist.get("p95")
            if p95 is None:
                p95 = metricslib.histogram_percentiles(hist)["p95"]
            by_shard.setdefault(labels["shard"], []).append(
                f"fwd p95 {p95 * 1000:.2f}ms ({_fmt(hist['count'])} calls)"
            )
    if by_shard:
        lines.append("")
        for shard in sorted(by_shard, key=lambda s: (len(s), s)):
            lines.append(f"  shard {shard}: " + " · ".join(by_shard[shard]))

    # Op latency percentiles (the supervisor-/server-local view).
    rows = []
    for key, hist in sorted(histograms.items()):
        name, labels = metricslib.split_key(key)
        if name != "repro_op_latency_seconds" or not hist.get("count"):
            continue
        pct = {
            q: hist.get(q) if hist.get(q) is not None else p
            for q, p in metricslib.histogram_percentiles(hist).items()
        }
        rows.append(
            f"  {labels.get('op', '?'):<9} {_fmt(hist['count']):>9}  "
            f"{pct['p50'] * 1000:>8.2f} {pct['p95'] * 1000:>8.2f} "
            f"{pct['p99'] * 1000:>8.2f}"
        )
    if rows:
        lines.append("")
        lines.append(f"  {'op':<9} {'requests':>9}  {'p50ms':>8} {'p95ms':>8} {'p99ms':>8}")
        lines.extend(rows)

    # Sparkline series: fleet ingest curve, then per-session cost/F(t).
    def spark_row(label: str, key: str) -> None:
        data = series.get(key) or {}
        ys = data.get("y") or []
        if ys:
            lines.append(f"  {label:<26} {sparkline(ys)}  now {_fmt(ys[-1])}")

    named = sorted(series)
    shown = 0
    if named:
        lines.append("")
        spark_row("steps ingested", "repro_steps_ingested_series")
        for key in named:
            name, labels = metricslib.split_key(key)
            if name == "repro_session_cost" and shown < 4:
                sid = labels.get("session", "?")
                spark_row(f"cost {sid}", key)
                spark_row(
                    f"F(t) changes {sid}",
                    f'repro_session_fchanges{{session="{sid}"}}',
                )
                shown += 1
    return "\n".join(lines)


def main_top(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service top",
        description="Live terminal dashboard over a server's admin plane.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True,
                        help="the server's --admin-port")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N frames (0 = until interrupted)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit (no ANSI clears)")
    parser.add_argument("--width", type=int, default=78)
    args = parser.parse_args(argv)

    frames = 1 if args.once else args.iterations
    count = 0
    try:
        while True:
            try:
                stats = fetch_stats(args.host, args.port)
            except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
                print(f"admin plane unreachable at "
                      f"{args.host}:{args.port}: {exc}", file=sys.stderr)
                return 1
            frame = render_stats(stats, width=args.width)
            if args.once or frames:
                print(frame)
            else:
                # Clear + home, then the frame: flicker-free enough for a
                # diagnostic top, no curses dependency.
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                sys.stdout.flush()
            count += 1
            if frames and count >= frames:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    if argv[0] == "top":
        return main_top(argv[1:])
    print(f"unknown subcommand {argv[0]!r} (expected: top)", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
