"""The HTTP admin plane: scrape, inspect, and steer a running fleet.

A tiny hand-rolled HTTP/1.1 endpoint (stdlib asyncio only — no web
framework) bound next to the wire-protocol listener by ``serve(...,
admin_port=...)`` / ``--admin-port``.  It speaks to operators and
scrapers, not to monitoring clients, so it lives on its own socket and
never touches the op wire format:

- ``GET /metrics`` — Prometheus text exposition of the fleet registry
  (:func:`repro.service.metrics.render_prometheus`); on a sharded
  server this is the cross-generation aggregate over every worker.
- ``GET /stats`` — the same registry as JSON, histograms annotated
  with p50/p95/p99, plus session/shard headcounts (the ``top``
  dashboard's poll target).
- ``GET /sessions`` — the ``list`` op's view over HTTP.
- ``POST /migrate?session=s7&shard=2`` — checkpoint-based session
  migration (sharded servers only).
- ``POST /drain`` — graceful shutdown, same as the ``shutdown`` op.
- ``GET /watch?interval=0.5`` — server-sent events: one JSON delta of
  counters/gauges per interval until the client disconnects or the
  server drains.  The live push channel for dashboards that don't
  want to poll.

Every connection is single-request (``Connection: close``) — admin
traffic is low-rate and the no-keepalive contract keeps the loop
trivial.  Request bodies are ignored; arguments travel in the query
string.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import parse_qs

from repro.service import metrics as metricslib

__all__ = ["AdminServer", "http_get", "probe_admin"]

#: Reading a request (line + headers) may not stall the plane forever.
_REQUEST_TIMEOUT = 30.0

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}


class AdminServer:
    """The admin endpoint wrapped around one monitoring server."""

    def __init__(self, server: Any, host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._http: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        """Bind; returns the actual ``(host, port)``."""
        if self._http is not None:
            raise RuntimeError("admin server already started")
        self._http = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._http.sockets[0].getsockname()[1]
        return self.host, self.port

    async def aclose(self) -> None:
        """Stop listening and cancel open (watch) connections."""
        if self._http is not None:
            self._http.close()
        tasks = [t for t in self._connections if t is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._http is not None:
            await self._http.wait_closed()

    # ------------------------------------------------------------------ #
    # One connection = one request
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=_REQUEST_TIMEOUT
            )
            if not request:
                return
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                await self._send(writer, 400, {"error": "malformed request line"})
                return
            method, target = parts[0].upper(), parts[1]
            while True:  # drain headers; bodies are ignored by contract
                line = await asyncio.wait_for(
                    reader.readline(), timeout=_REQUEST_TIMEOUT
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            path, _, query = target.partition("?")
            params = parse_qs(query)
            await self._route(writer, method, path, params)
        except (
            asyncio.TimeoutError,
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # slow/vanished peer or server drain — nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        params: dict[str, list[str]],
    ) -> None:
        try:
            if method == "GET" and path == "/metrics":
                text = metricslib.render_prometheus(await self.server.metrics_fleet())
                await self._send_raw(
                    writer, 200, "text/plain; version=0.0.4; charset=utf-8",
                    text.encode("utf-8"),
                )
            elif method == "GET" and path == "/stats":
                await self._send(writer, 200, await self._stats())
            elif method == "GET" and path == "/sessions":
                await self._send(writer, 200, await self.server._op_list({}))
            elif method == "POST" and path == "/migrate":
                await self._migrate(writer, params)
            elif method == "POST" and path == "/drain":
                self.server.request_shutdown()
                await self._send(writer, 200, {"stopping": True})
            elif method == "GET" and path == "/watch":
                await self._watch(writer, params)
            else:
                await self._send(
                    writer, 404, {"error": f"no route {method} {path}"}
                )
        except (KeyError, ValueError) as exc:
            await self._send(
                writer, 400, {"error": str(exc), "error_type": type(exc).__name__}
            )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            raise
        except Exception as exc:  # fail closed, never crash the plane
            await self._send(
                writer, 500, {"error": str(exc), "error_type": type(exc).__name__}
            )

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    async def _stats(self) -> dict[str, Any]:
        fleet = await self.server.metrics_fleet()
        out: dict[str, Any] = {
            "sessions": self._session_count(),
            "enabled": self.server.metrics.enabled,
            "batching": self.server.batching,
            "metrics": metricslib.summarize(fleet),
        }
        shards = getattr(self.server, "num_shards", None)
        if shards is not None:
            out["shards"] = shards
        return out

    def _session_count(self) -> int:
        routes = getattr(self.server, "_routes", None)
        return len(routes) if routes is not None else len(self.server._slots)

    async def _migrate(
        self, writer: asyncio.StreamWriter, params: dict[str, list[str]]
    ) -> None:
        migrate = getattr(self.server, "migrate_session", None)
        if migrate is None:
            await self._send(
                writer, 400, {"error": "migrate needs a sharded server"}
            )
            return
        session = params.get("session", [None])[0]
        if not session:
            await self._send(
                writer, 400, {"error": "migrate needs ?session=<id>"}
            )
            return
        raw_shard = params.get("shard", [None])[0]
        target = int(raw_shard) if raw_shard is not None else None
        await self._send(writer, 200, await migrate(session, target))

    async def _watch(
        self, writer: asyncio.StreamWriter, params: dict[str, list[str]]
    ) -> None:
        """Stream counter/gauge deltas as server-sent events."""
        try:
            interval = float(params.get("interval", ["1.0"])[0])
        except ValueError:
            interval = 1.0
        interval = min(max(interval, 0.05), 60.0)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        seq = 0
        while not self.server._stop.is_set():
            fleet = await self.server.metrics_fleet()
            event = {
                "seq": seq,
                "sessions": self._session_count(),
                "counters": fleet["counters"],
                "gauges": fleet["gauges"],
            }
            writer.write(f"id: {seq}\ndata: {json.dumps(event)}\n\n".encode("utf-8"))
            await writer.drain()  # raises once the subscriber went away
            seq += 1
            await asyncio.sleep(interval)

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #
    async def _send(
        self, writer: asyncio.StreamWriter, status: int, payload: dict[str, Any]
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        await self._send_raw(writer, status, "application/json", body)

    @staticmethod
    async def _send_raw(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


# ---------------------------------------------------------------------- #
# Client-side helpers (loadgen --admin-check, tests, the top dashboard's
# async twin) — raw HTTP over asyncio streams, no urllib in the loop.
# ---------------------------------------------------------------------- #
async def http_get(
    host: str, port: int, path: str
) -> tuple[int, dict[str, str], bytes]:
    """One blocking-free GET; returns ``(status, headers, body)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
            .encode("latin-1")
        )
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


async def probe_admin(host: str, port: int) -> dict[str, Any]:
    """Exercise ``/metrics`` + ``/stats`` and lint the exposition.

    The shared health check behind ``loadgen --admin-check`` and the CI
    smoke: returns ``ok=True`` only when both endpoints answer 200 and
    the exposition passes :func:`repro.service.metrics.lint_exposition`.
    """
    status, headers, body = await http_get(host, port, "/metrics")
    problems = (
        metricslib.lint_exposition(body.decode("utf-8"))
        if status == 200
        else [f"/metrics answered HTTP {status}"]
    )
    s_status, _, s_body = await http_get(host, port, "/stats")
    stats = json.loads(s_body) if s_status == 200 else None
    if s_status != 200:
        problems.append(f"/stats answered HTTP {s_status}")
    return {
        "ok": not problems,
        "metrics_bytes": len(body),
        "content_type": headers.get("content-type", ""),
        "lint_problems": problems,
        "sessions": stats.get("sessions") if stats else None,
        "samples": sum(
            1 for line in body.decode("utf-8", "replace").splitlines()
            if line and not line.startswith("#")
        ),
    }
