"""The algorithm registry: every monitor resolvable by slug.

The service layer creates sessions from plain wire data — an algorithm
slug plus scalar parameters — mirroring how
:mod:`repro.streams.registry` resolves workloads.  Each
:class:`AlgorithmSpec` wraps one of the paper's monitors with the
constructor shape the service needs: ``factory(k, eps, **params)``.

Slugs match the names the experiment tables use, so a served session
and a table row are directly comparable:

- ``exact-cor3.3`` — exact Top-k, Corollary 3.3 (existence-based).
- ``exact-ipdps15`` — exact Top-k without the existence protocol
  (the `[6]`-style baseline).
- ``approx-monitor`` — the Theorem 5.8 dispatcher (needs ε).
- ``topk-protocol`` — Section 4's TOP-K-PROTOCOL (needs ε).
- ``halfeps-monitor`` — the Corollary 5.9 variant (needs ε).
- ``send-always`` — the naive every-step baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core import (
    ApproxTopKMonitor,
    ExactTopKMonitor,
    HalfEpsMonitor,
    SendAlwaysMonitor,
    TopKMonitor,
)
from repro.model.protocol import MonitoringAlgorithm

__all__ = [
    "AlgorithmParamError",
    "AlgorithmSpec",
    "available",
    "get",
    "make_algorithm",
]


class AlgorithmParamError(ValueError):
    """An algorithm was requested with out-of-range or unusable parameters.

    A distinct type so the service can answer bad client input with a
    protocol error instead of a server-side crash.
    """


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered monitoring algorithm."""

    slug: str
    summary: str
    factory: Callable[..., MonitoringAlgorithm]
    #: Whether the algorithm takes an output error ε in (0, 1).  Exact
    #: monitors and naive baselines ignore ε (it must be left at 0).
    uses_eps: bool = False
    #: Extra keyword parameters the factory accepts, ``name -> default``.
    extra_params: dict[str, Any] = field(default_factory=dict)


_REGISTRY: dict[str, AlgorithmSpec] = {}


def _register(spec: AlgorithmSpec) -> None:
    if spec.slug in _REGISTRY:
        raise ValueError(f"algorithm slug {spec.slug!r} already registered")
    _REGISTRY[spec.slug] = spec


def available() -> tuple[str, ...]:
    """All registered slugs, in registration order."""
    return tuple(_REGISTRY)


def get(slug: str) -> AlgorithmSpec:
    """The spec for ``slug`` (raises with the valid slugs on a miss)."""
    try:
        return _REGISTRY[slug]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {slug!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def make_algorithm(
    slug: str, k: int, eps: float = 0.0, params: Mapping[str, Any] | None = None
) -> MonitoringAlgorithm:
    """Instantiate a fresh monitor for one run/session.

    Raises :class:`AlgorithmParamError` on any parameter problem (wrong
    ε usage, unknown extras, or a rejection by the constructor itself).
    """
    spec = get(slug)
    params = dict(params or {})
    unknown = sorted(set(params) - set(spec.extra_params))
    if unknown:
        raise AlgorithmParamError(
            f"algorithm {slug!r} got unknown params {unknown}; "
            f"valid: {sorted(spec.extra_params)}"
        )
    if spec.uses_eps:
        if not 0.0 < eps < 1.0:
            raise AlgorithmParamError(
                f"algorithm {slug!r} needs eps in (0, 1), got {eps}"
            )
    elif eps:
        raise AlgorithmParamError(
            f"algorithm {slug!r} is exact — leave eps at 0, got {eps}"
        )
    try:
        if spec.uses_eps:
            return spec.factory(int(k), float(eps), **params)
        return spec.factory(int(k), **params)
    except (ValueError, TypeError) as exc:
        raise AlgorithmParamError(
            f"algorithm {slug!r}: {exc.args[0] if exc.args else exc}"
        ) from None


# --------------------------------------------------------------------- #
# Registrations
# --------------------------------------------------------------------- #
_register(AlgorithmSpec(
    slug="exact-cor3.3",
    summary="Exact Top-k monitor, Corollary 3.3 (existence-based violation detection)",
    factory=lambda k: ExactTopKMonitor(k),
))

_register(AlgorithmSpec(
    slug="exact-ipdps15",
    summary="Exact Top-k monitor without the existence protocol ([6]-style baseline)",
    factory=lambda k: ExactTopKMonitor(k, use_existence=False),
))

_register(AlgorithmSpec(
    slug="approx-monitor",
    summary="ε-approximate dispatcher of Theorem 5.8 (TOP-K / DENSE by density probe)",
    factory=lambda k, eps, resolution=1.0: ApproxTopKMonitor(k, eps, resolution=resolution),
    uses_eps=True,
    extra_params={"resolution": 1.0},
))

_register(AlgorithmSpec(
    slug="topk-protocol",
    summary="Section 4 TOP-K-PROTOCOL with strategies (P1)–(P4) (Theorem 4.5)",
    factory=lambda k, eps: TopKMonitor(k, eps),
    uses_eps=True,
))

_register(AlgorithmSpec(
    slug="halfeps-monitor",
    summary="Corollary 5.9 one-round-dense variant (competitive vs ε/2 offline player)",
    factory=lambda k, eps: HalfEpsMonitor(k, eps),
    uses_eps=True,
))

_register(AlgorithmSpec(
    slug="send-always",
    summary="Naive baseline: every node reports every step",
    factory=lambda k: SendAlwaysMonitor(k),
))
