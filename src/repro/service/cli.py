"""CLI entry points for the service layer: ``serve`` and ``loadgen``.

Reached through the experiments CLI front door::

    python -m repro.experiments serve  --port 7071
    python -m repro.experiments loadgen --port 7071 --workload zipf \\
        --sessions 8 --concurrency 4 --steps 5000

``serve`` prints exactly one ``serving on <host>:<port>`` line once
bound (machine-parseable — ``--port 0`` binds an OS-assigned port) and
runs until a client sends the ``shutdown`` op.

``loadgen --spawn`` owns the whole lifecycle for smoke tests and CI:
it launches a server subprocess on a free port, drives it, sends
``shutdown``, and fails unless the server exits cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import subprocess
import sys

from repro.service import server as server_mod
from repro.service.client import ServiceClient
from repro.service.loadgen import run_loadgen
from repro.streams import registry

__all__ = ["main_serve", "main_loadgen"]


def main_serve(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Host monitoring sessions over the JSON-lines TCP protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7071,
                        help="TCP port (0 = OS-assigned, printed on the announce line)")
    parser.add_argument("--max-sessions", type=int, default=1024,
                        help="reject session creation beyond this many live sessions")
    parser.add_argument("--shards", type=int, default=0,
                        help="host sessions in N worker processes behind a "
                             "supervisor (0 = single process, the default); "
                             "see docs/ARCHITECTURE.md §5")
    parser.add_argument("--wire", choices=["v1", "v2"], default="v2",
                        help="highest wire framing hello may grant: v2 binary "
                             "frames (default) or v1 JSON lines only; v1 "
                             "clients work either way (DESIGN.md §8)")
    parser.add_argument("--admin-port", type=int, default=None, metavar="PORT",
                        help="also bind the HTTP admin plane (/metrics, "
                             "/stats, /watch, ...) on this port (0 = "
                             "OS-assigned, printed on a second announce "
                             "line); off by default")
    parser.add_argument("--wal-dir", default=None, metavar="DIR",
                        help="write-ahead log directory: append acknowledged "
                             "ops and checkpoint periodically so sessions "
                             "survive worker crashes (docs/OPERATIONS.md); "
                             "off by default")
    parser.add_argument("--wal-fsync", action="store_true",
                        help="fsync every WAL append (survives machine "
                             "crashes, not just process death; slower)")
    parser.add_argument("--wal-checkpoint-bytes", type=int,
                        default=server_mod.wallib.DEFAULT_CHECKPOINT_BYTES,
                        metavar="N",
                        help="checkpoint and truncate the log after N "
                             "appended bytes (default %(default)s)")
    args = parser.parse_args(argv)
    if args.shards < 0:
        parser.error(f"--shards must be >= 0, got {args.shards}")
    if args.wal_checkpoint_bytes <= 0:
        parser.error("--wal-checkpoint-bytes must be > 0, "
                     f"got {args.wal_checkpoint_bytes}")
    try:
        asyncio.run(server_mod.serve(
            args.host, args.port, max_sessions=args.max_sessions,
            shards=args.shards, accept_wire=2 if args.wire == "v2" else 1,
            admin_port=args.admin_port,
            wal_dir=args.wal_dir, wal_fsync=args.wal_fsync,
            wal_checkpoint_bytes=args.wal_checkpoint_bytes,
        ))
    except KeyboardInterrupt:
        pass
    return 0


def _spawn_server(
    shards: int = 0, accept_wire: str = "v2", admin: bool = False,
    wal_dir: str | None = None,
):
    """Launch a server subprocess on a free port; returns (process, port).

    With ``shards > 0`` the subprocess runs the sharded supervisor; the
    announce line is only printed once every worker process is up, so
    waiting for it below covers the whole topology.  With ``admin=True``
    the server also binds an OS-assigned admin port (announced on a
    second line) and the return value grows to
    ``(process, port, admin_port)``.  ``wal_dir`` spawns the server
    durable (used by the durability-overhead benchmark cell).
    """
    command = [sys.executable, "-m", "repro.experiments", "serve", "--port", "0",
               "--wire", accept_wire]
    if shards:
        command += ["--shards", str(shards)]
    if admin:
        command += ["--admin-port", "0"]
    if wal_dir is not None:
        command += ["--wal-dir", str(wal_dir)]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        text=True,
    )

    def announced_port(prefix: str) -> int:
        line = process.stdout.readline().strip()
        if not line.startswith(prefix):
            process.kill()
            raise RuntimeError(f"server did not announce itself (got {line!r})")
        return int(line[len(prefix):].rsplit(":", 1)[1])

    port = announced_port("serving on ")
    if not admin:
        return process, port
    return process, port, announced_port("admin on ")


def main_loadgen(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments loadgen",
        description="Replay a registry workload against a live monitoring server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7071)
    parser.add_argument("--spawn", action="store_true",
                        help="launch (and cleanly shut down) a server subprocess; "
                             "ignores --host/--port")
    parser.add_argument("--shards", type=int, default=0,
                        help="with --spawn: launch the server with N shard "
                             "worker processes (0 = single process)")
    parser.add_argument("--workload", default="iid", metavar="SLUG",
                        help="registry slug (must be block-streamable)")
    parser.add_argument("--workload-param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="workload parameter, parsed against the registry schema")
    parser.add_argument("--algorithm", default="approx-monitor",
                        help="algorithm slug (see repro.service.algorithms)")
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--steps", type=int, default=2_000, help="steps per session")
    parser.add_argument("--n", type=int, default=32)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--eps", type=float, default=0.1,
                        help="output error for ε-algorithms (use 0 with exact ones)")
    parser.add_argument("--block-size", type=int, default=256,
                        help="rows per feed batch")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--encoding", choices=["b64", "json"], default="b64",
                        help="v1 batch encoding (a v2 connection ships raw "
                             "binary frames regardless)")
    parser.add_argument("--wire", choices=["v1", "v2", "auto"], default="auto",
                        help="wire framing to negotiate per connection "
                             "(auto = v2 when the server grants it)")
    parser.add_argument("--pipeline", type=int, default=0, metavar="W",
                        help="stream up to W in-flight feed frames per "
                             "session (0 = request-response lockstep)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full report as JSON")
    parser.add_argument("--admin-check", action="store_true",
                        help="with --spawn: bind the admin plane on the "
                             "spawned server and probe /metrics + /stats "
                             "(exposition lint included) while the load is "
                             "live; result lands under 'admin_check'")
    args = parser.parse_args(argv)
    if args.shards < 0:
        parser.error(f"--shards must be >= 0, got {args.shards}")
    if args.pipeline < 0:
        parser.error(f"--pipeline must be >= 0, got {args.pipeline}")
    if args.shards and not args.spawn:
        parser.error("--shards only applies with --spawn (the server owns "
                     "its shard count; pass --shards to `serve` instead)")
    if args.admin_check and not args.spawn:
        parser.error("--admin-check only applies with --spawn (point other "
                     "tooling at a standing server's --admin-port directly)")

    try:
        workload_params = registry.parse_cli_params(args.workload, args.workload_param)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2

    process = None
    host, port = args.host, args.port
    admin_port = None
    try:
        if args.spawn:
            # --wire v1 pins the spawned server too, so the smoke
            # measures a v1-only topology end to end; v2/auto spawn the
            # v2-default server and let each connection negotiate.
            spawned = _spawn_server(
                args.shards, accept_wire="v1" if args.wire == "v1" else "v2",
                admin=args.admin_check,
            )
            if args.admin_check:
                process, port, admin_port = spawned
            else:
                process, port = spawned
            host = "127.0.0.1"

        async def drive():
            load = asyncio.ensure_future(run_loadgen(
                host, port,
                workload=args.workload, workload_params=workload_params,
                algorithm=args.algorithm,
                sessions=args.sessions, concurrency=args.concurrency,
                num_steps=args.steps, n=args.n, k=args.k, eps=args.eps,
                block_size=args.block_size, seed=args.seed,
                encoding=args.encoding,
                wire_protocol=args.wire, pipeline=args.pipeline,
            ))
            check = None
            if admin_port is not None:
                # Probe mid-flight: the point of the check is a scrape
                # while traffic is live, not against an idle server.
                from repro.service.admin import probe_admin

                await asyncio.sleep(0.2)
                check = await probe_admin(host, admin_port)
            out = await load
            if check is not None:
                out["admin_check"] = check
            return out

        report = asyncio.run(drive())
    except Exception as exc:
        if process is not None:
            process.kill()
        print(f"loadgen failed: {exc}", file=sys.stderr)
        return 1

    clean_shutdown = None
    if args.spawn:
        report["shards"] = args.shards
    if process is not None:
        try:
            with ServiceClient(host, port) as client:
                client.shutdown()
            process.wait(timeout=30)
        except Exception as exc:
            process.kill()
            print(f"server shutdown failed: {exc}", file=sys.stderr)
            return 1
        clean_shutdown = process.returncode == 0
        report["clean_shutdown"] = clean_shutdown

    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        topology = f", shards {args.shards}" if args.shards else ""
        pipelining = f", pipeline {report['pipeline']}" if report["pipeline"] else ""
        print(
            f"{report['sessions']} sessions x {report['num_steps']} steps "
            f"(concurrency {report['concurrency']}, workload {report['workload']}, "
            f"algorithm {report['algorithm']}, wire v{report['wire']}"
            f"{pipelining}{topology})"
        )
        print(
            f"  {report['total_steps']} steps in {report['wall_seconds']}s -> "
            f"{report['steps_per_s']:,} steps/s, {report['values_per_s']:,} values/s"
        )
        print(f"  {report['messages_per_step']} messages/step (algorithmic cost)")
        latency = report.get("latency_ms")
        if latency:
            # Queue-inclusive under --pipeline: the clock stops when the
            # client reads the ack, not when the server answered.
            kind = "completion" if report["pipeline"] else "request"
            print(
                f"  {kind} latency p50/p95/p99: {latency['p50']}/"
                f"{latency['p95']}/{latency['p99']} ms ({latency['count']} requests)"
            )
        admin_check = report.get("admin_check")
        if admin_check is not None:
            verdict = "ok" if admin_check["ok"] else "FAILED"
            print(
                f"  admin check: {verdict} ({admin_check['samples']} samples, "
                f"{admin_check['metrics_bytes']} exposition bytes)"
            )
            for problem in admin_check["lint_problems"]:
                print(f"    {problem}", file=sys.stderr)
        if clean_shutdown is not None:
            print(f"  server shutdown: {'clean' if clean_shutdown else 'UNCLEAN'}")
    if clean_shutdown is False:
        return 1
    if report.get("admin_check", {}).get("ok") is False:
        return 1
    return 0
