"""Client library for the monitoring service.

:class:`AsyncServiceClient` speaks the JSON-lines protocol over one TCP
connection; requests on a connection are serialized (the server answers
in order), so concurrent load uses one client per worker — see
:mod:`repro.service.loadgen`.  :class:`ServiceClient` wraps it for
synchronous callers (examples, benchmarks, notebooks) by driving a
private event loop.

Every error response raises :class:`ServiceError` carrying the server's
``error_type``, so callers can tell bad input (``AlgorithmParamError``,
``WireError``…) from server-side failures.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from repro.service import wire

__all__ = ["AsyncServiceClient", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An ``ok=false`` response from the server."""

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        self.error_type = error_type


#: Frames above this size are JSON-encoded/decoded off the event loop
#: (the client-side twin of the server's ``_INLINE_DECODE_BYTES``): a
#: near-cap b64 batch is tens of MB, and serializing it inline would
#: stall every other coroutine sharing the loop — in particular the
#: shard supervisor, which forwards feed batches through this client.
_INLINE_CODEC_BYTES = 64 * 1024


def _payload_size_hint(fields: dict[str, Any]) -> int:
    """Rough request-payload size without serializing (b64/state dominate)."""
    values = fields.get("values")
    if isinstance(values, dict):
        b64 = values.get("b64")
        if isinstance(b64, str):
            return len(b64)
    state = fields.get("state")
    if isinstance(state, str):
        return len(state)
    return 0


class AsyncServiceClient:
    """One JSON-lines connection to a :class:`~repro.service.server.MonitoringServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()  # serialize request/response pairs
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=wire.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    def close(self) -> None:
        """Synchronously drop the transport (no drain).

        For pool management (e.g. the shard supervisor discarding a
        poisoned link); ordinary callers should ``await aclose()``.
        """
        self._writer.close()

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    async def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one op and return the ``ok=true`` payload (or raise)."""
        loop = asyncio.get_running_loop()
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            message = {"id": request_id, "op": op, **fields}
            if _payload_size_hint(fields) > _INLINE_CODEC_BYTES:
                encoded = await loop.run_in_executor(None, wire.encode_line, message)
            else:
                encoded = wire.encode_line(message)
            self._writer.write(encoded)
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServiceError("connection closed by server", "ConnectionClosed")
        if len(line) > _INLINE_CODEC_BYTES:
            response = await loop.run_in_executor(None, wire.decode_line, line)
        else:
            response = wire.decode_line(line)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown error"),
                response.get("error_type", ""),
            )
        if response.get("id") != request_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match request "
                f"{request_id!r} (protocol desync)",
                "WireError",
            )
        return response

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    async def ping(self) -> dict[str, Any]:
        return await self.request("ping")

    async def create_session(self, **spec: Any) -> str:
        """Create a session from :class:`~repro.service.session.SessionConfig` fields."""
        response = await self.request("create", spec=spec)
        return response["session"]

    async def feed(
        self, session: str, values: np.ndarray, *, encoding: str = "b64"
    ) -> dict[str, Any]:
        """Push one observation batch; returns ``{step, messages}``."""
        return await self.request(
            "feed", session=session, values=wire.encode_values(values, encoding)
        )

    async def advance(self, session: str, steps: int | None = None) -> dict[str, Any]:
        """Drive a workload-backed session forward by up to ``steps``."""
        return await self.request("advance", session=session, steps=steps)

    async def query(self, session: str) -> dict[str, Any]:
        """Current status: step, messages, output ``F(t)``, done flags."""
        return await self.request("query", session=session)

    async def cost(self, session: str) -> dict[str, Any]:
        """Cost snapshot totals plus the per-scope bill."""
        return await self.request("cost", session=session)

    async def snapshot(self, session: str) -> bytes:
        """Checkpoint the session; returns the binary blob."""
        response = await self.request("snapshot", session=session)
        return wire.decode_blob(response["state"])

    async def restore(self, blob: bytes) -> str:
        """Create a new session resuming from a checkpoint blob."""
        response = await self.request("restore", state=wire.encode_blob(blob))
        return response["session"]

    async def migrate(self, session: str, shard: int | None = None) -> dict[str, Any]:
        """Move a session to another shard (sharded servers only).

        ``shard=None`` lets the supervisor pick the next shard; the
        session id stays valid across the move.
        """
        fields: dict[str, Any] = {"session": session}
        if shard is not None:
            fields["shard"] = shard
        return await self.request("migrate", **fields)

    async def finalize(self, session: str) -> dict[str, Any]:
        """Close the session and return its result summary."""
        response = await self.request("finalize", session=session)
        return response["result"]

    async def close_session(self, session: str) -> None:
        """Drop the session without a result."""
        await self.request("close", session=session)

    async def list_sessions(self) -> list[dict[str, Any]]:
        return (await self.request("list"))["sessions"]

    async def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop (it answers, then exits its serve loop)."""
        return await self.request("shutdown")


class ServiceClient:
    """Synchronous facade over :class:`AsyncServiceClient`.

    Owns a private event loop; not thread-safe.  Use as a context
    manager so the connection and loop are released deterministically.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            self._client = self._loop.run_until_complete(
                AsyncServiceClient.connect(host, port)
            )
        except BaseException:
            self._loop.close()
            raise

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._loop.run_until_complete(self._client.aclose())
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, coro):
        return self._loop.run_until_complete(coro)

    # One sync wrapper per op; signatures mirror AsyncServiceClient.
    def ping(self) -> dict[str, Any]:
        return self._call(self._client.ping())

    def create_session(self, **spec: Any) -> str:
        return self._call(self._client.create_session(**spec))

    def feed(self, session: str, values: np.ndarray, *, encoding: str = "b64") -> dict[str, Any]:
        return self._call(self._client.feed(session, values, encoding=encoding))

    def advance(self, session: str, steps: int | None = None) -> dict[str, Any]:
        return self._call(self._client.advance(session, steps))

    def query(self, session: str) -> dict[str, Any]:
        return self._call(self._client.query(session))

    def cost(self, session: str) -> dict[str, Any]:
        return self._call(self._client.cost(session))

    def snapshot(self, session: str) -> bytes:
        return self._call(self._client.snapshot(session))

    def restore(self, blob: bytes) -> str:
        return self._call(self._client.restore(blob))

    def migrate(self, session: str, shard: int | None = None) -> dict[str, Any]:
        return self._call(self._client.migrate(session, shard))

    def finalize(self, session: str) -> dict[str, Any]:
        return self._call(self._client.finalize(session))

    def close_session(self, session: str) -> None:
        self._call(self._client.close_session(session))

    def list_sessions(self) -> list[dict[str, Any]]:
        return self._call(self._client.list_sessions())

    def shutdown(self) -> dict[str, Any]:
        return self._call(self._client.shutdown())
