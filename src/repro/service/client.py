"""Client library for the monitoring service.

:class:`AsyncServiceClient` speaks either wire protocol over one TCP
connection.  A connection starts as v1 JSON lines; ``connect(...,
wire="v2")`` performs the ``hello`` negotiation of
:mod:`repro.service.wire` and switches to binary frames when the
server grants them (``wire="auto"``, the default, falls back to v1
against a pinned server instead of failing).

Requests on a connection are answered in order, which enables two
client shapes:

- **lockstep** — :meth:`~AsyncServiceClient.request` and the op
  wrappers send one message and await its response;
- **pipelined feeds** — :meth:`~AsyncServiceClient.feed_nowait` streams
  up to ``window`` feed frames before reading the oldest ack, and
  :meth:`~AsyncServiceClient.flush` is the explicit barrier that drains
  every outstanding ack (any op wrapper is an implicit barrier: it
  drains the pipeline before sending, so a ``query`` always observes
  every prior feed).  A failed pipelined feed surfaces at the next
  barrier as :class:`ServiceError`.

Concurrent load still uses one client per worker — see
:mod:`repro.service.loadgen`.  :class:`ServiceClient` wraps the async
client for synchronous callers (examples, benchmarks, notebooks) by
driving a private event loop.

Every error response raises :class:`ServiceError` carrying the server's
``error_type``, so callers can tell bad input (``AlgorithmParamError``,
``WireError``…) from server-side failures.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from typing import Any

import numpy as np

from repro.service import wire

__all__ = ["AsyncServiceClient", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An ``ok=false`` response from the server."""

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        self.error_type = error_type


#: Frames above this size are encoded/decoded off the event loop
#: (the client-side twin of the server's ``_INLINE_DECODE_BYTES``): a
#: near-cap v1 b64 batch is tens of MB, and serializing it inline would
#: stall every other coroutine sharing the loop — in particular the
#: shard supervisor, which forwards feed batches through this client.
#: v2 framing is a memcpy, so only multi-MB payloads are worth the
#: executor round trip.
_INLINE_CODEC_BYTES = 64 * 1024
_INLINE_FRAME_BYTES = 4 * 1024 * 1024


def _payload_size_hint(fields: dict[str, Any]) -> tuple[int, bool]:
    """Rough request-payload ``(size, cheap_encode)`` without serializing.

    ``cheap_encode`` is True when the bulk field is already raw
    (ndarray / bytes): v2 framing is then a memcpy and big frames can
    encode inline.  Text forms (b64 dicts/strings, json lists — the
    v1→v2 re-encode path through the shard supervisor) cost a real
    decode + finiteness scan, so they keep the small v1 offload
    threshold.
    """
    values = fields.get("values")
    if isinstance(values, np.ndarray):
        return values.nbytes, True
    if isinstance(values, dict):
        b64 = values.get("b64")
        if isinstance(b64, str):
            return len(b64), False
    if isinstance(values, list):
        rows = len(values)
        cols = len(values[0]) if rows and isinstance(values[0], (list, tuple)) else 1
        return rows * cols * 8, False  # ~raw payload size after conversion
    state = fields.get("state")
    if isinstance(state, (bytes, bytearray)):
        return len(state), True
    if isinstance(state, str):
        return len(state), False
    return 0, True


def _default_wire() -> str:
    return os.environ.get("REPRO_WIRE", "auto")


class AsyncServiceClient:
    """One connection to a :class:`~repro.service.server.MonitoringServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        window: int = 32,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()  # serialize request/response pairs
        self._next_id = 0
        #: Negotiated framing version (1 until a granted ``hello``).
        self.wire_version = wire.WIRE_V1
        if window < 1:
            raise ValueError(f"pipeline window must be >= 1, got {window}")
        self._window = window
        self._pending: deque[tuple[int, float]] = deque()  # (id, send time)
        self._pipeline_error: ServiceError | None = None
        #: Set ``record_latency = True`` to append each request's
        #: send→response-read seconds to :attr:`latencies` (loadgen's
        #: p50/p95/p99).  For pipelined feeds the clock stops when the
        #: ack is *read* (window-full or a barrier), so the figure is
        #: queue-inclusive client-observed latency, not server service
        #: time.
        self.record_latency = False
        self.latencies: list[float] = []

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        wire_protocol: str | None = None,
        window: int = 32,
    ) -> "AsyncServiceClient":
        """Open a connection and negotiate framing.

        ``wire_protocol``: ``"v1"`` (never negotiate), ``"v2"`` (require
        binary frames; :class:`ServiceError` if refused), or ``"auto"``
        (ask, fall back to v1 if the server is pinned).  ``None`` reads
        the ``REPRO_WIRE`` environment variable, defaulting to auto.
        """
        wire_protocol = wire_protocol or _default_wire()
        if wire_protocol not in ("v1", "v2", "auto"):
            raise ValueError(
                f"wire_protocol must be 'v1', 'v2' or 'auto', got {wire_protocol!r}"
            )
        reader, writer = await asyncio.open_connection(
            host, port, limit=wire.MAX_LINE_BYTES
        )
        wire.set_nodelay(writer)
        client = cls(reader, writer, window=window)
        if wire_protocol != "v1":
            try:
                granted = (await client.request("hello", wire=wire.WIRE_V2))["wire"]
            except ServiceError as exc:
                # A server predating the hello op answers "unknown op":
                # in auto mode that IS the negotiation result — stay on
                # JSON lines.  Strict v2 (and a dead connection) still
                # fails loudly.
                if wire_protocol == "v2" or exc.error_type == "ConnectionClosed":
                    await client.aclose()
                    raise
                granted = wire.WIRE_V1
            except BaseException:
                await client.aclose()
                raise
            if granted >= wire.WIRE_V2:
                client.wire_version = wire.WIRE_V2
            elif wire_protocol == "v2":
                await client.aclose()
                raise ServiceError(
                    f"server only grants wire v{granted}; connect with "
                    "wire_protocol='auto' (or 'v1') to fall back",
                    "WireError",
                )
        return client

    def close(self) -> None:
        """Synchronously drop the transport (no drain).

        For pool management (e.g. the shard supervisor discarding a
        poisoned link); ordinary callers should ``await aclose()``.
        """
        self._writer.close()

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    async def _send(self, message: dict[str, Any]) -> None:
        """Encode one request per the negotiated framing and write it."""
        loop = asyncio.get_running_loop()
        size_hint, cheap_encode = _payload_size_hint(message)
        if self.wire_version == wire.WIRE_V2:
            # Raw bulk (ndarray/bytes) frames as a memcpy — inline up to
            # multi-MB; text bulk (b64/json, the v1→v2 re-encode path)
            # pays a real decode + finiteness scan and keeps the small
            # v1 offload threshold.
            threshold = _INLINE_FRAME_BYTES if cheap_encode else _INLINE_CODEC_BYTES
            if size_hint > threshold:
                encoded = await loop.run_in_executor(None, wire.encode_frame, message)
            else:
                encoded = wire.encode_frame(message)
        elif size_hint > _INLINE_CODEC_BYTES:
            encoded = await loop.run_in_executor(None, wire.encode_v1_message, message)
        else:
            encoded = wire.encode_v1_message(message)
        self._writer.write(encoded)
        await self._writer.drain()

    async def _read_message(self) -> dict[str, Any]:
        """Read and decode one response per the negotiated framing."""
        loop = asyncio.get_running_loop()
        if self.wire_version == wire.WIRE_V2:
            try:
                frame = await wire.read_frame(self._reader)
            except asyncio.IncompleteReadError:
                frame = None
            except wire.WireError as exc:
                # Covers a server dying mid-header (truncation) as well
                # as a malformed response frame — both leave the stream
                # unusable, and callers are promised ServiceError.
                raise ServiceError(
                    f"server broke v2 framing: {exc}", "WireError"
                ) from exc
            if frame is None:
                raise ServiceError("connection closed by server", "ConnectionClosed")
            header, meta, payload = frame
            if header.payload_len > _INLINE_FRAME_BYTES:
                return await loop.run_in_executor(
                    None, wire.decode_frame, header, meta, payload
                )
            return wire.decode_frame(header, meta, payload)
        line = await self._reader.readline()
        if not line:
            raise ServiceError("connection closed by server", "ConnectionClosed")
        try:
            if len(line) > _INLINE_CODEC_BYTES:
                return await loop.run_in_executor(None, wire.decode_line, line)
            return wire.decode_line(line)
        except wire.WireError as exc:
            # Wrapped so that a raw WireError out of request() always
            # means a *client-side encode* failure with nothing written
            # — the shard link pool relies on that to know a link is
            # still in sync (see shard._forward).
            raise ServiceError(
                f"server sent an invalid frame: {exc}", "WireError"
            ) from exc

    async def _read_ack(self) -> None:
        """Consume the oldest in-flight pipelined response."""
        request_id, sent = self._pending.popleft()
        response = await self._read_message()
        if self.record_latency:
            self.latencies.append(time.perf_counter() - sent)
        # Id first, ok second: an error reply with the wrong id (e.g. a
        # fatal-framing frame carrying id=0) is a desync, and must not
        # be silently attributed to the oldest pending feed.
        if response.get("id") != request_id:
            detail = ""
            if not response.get("ok") and response.get("error"):
                detail = f"; server reported: {response['error']}"
            raise ServiceError(
                f"response id {response.get('id')!r} does not match request "
                f"{request_id!r} (protocol desync){detail}",
                "WireError",
            )
        if not response.get("ok") and self._pipeline_error is None:
            self._pipeline_error = ServiceError(  # keep the first failure
                response.get("error", "unknown error"),
                response.get("error_type", ""),
            )

    def _raise_pipeline_error(self) -> None:
        if self._pipeline_error is not None:
            error, self._pipeline_error = self._pipeline_error, None
            raise error

    async def _drain_pending(self) -> None:
        while self._pending:
            await self._read_ack()

    async def flush(self) -> None:
        """Barrier: wait for every in-flight pipelined feed's ack.

        Raises the first queued :class:`ServiceError` (after draining),
        so a failed feed cannot be lost by later successes.
        """
        async with self._lock:
            await self._drain_pending()
            self._raise_pipeline_error()

    async def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one op and return the ``ok=true`` payload (or raise).

        An implicit pipeline barrier: outstanding pipelined feeds are
        drained first (their failures raise here, before the op is
        sent), so the response observes every previously queued feed.
        """
        async with self._lock:
            await self._drain_pending()
            self._raise_pipeline_error()
            self._next_id += 1
            request_id = self._next_id
            message = {"id": request_id, "op": op, **fields}
            sent = time.perf_counter()
            await self._send(message)
            response = await self._read_message()
        if self.record_latency:
            self.latencies.append(time.perf_counter() - sent)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown error"),
                response.get("error_type", ""),
            )
        if response.get("id") != request_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match request "
                f"{request_id!r} (protocol desync)",
                "WireError",
            )
        return response

    async def passthrough_frame(
        self,
        header: wire.FrameHeader,
        meta: bytes,
        payload: bytes,
        session: int,
    ) -> tuple[wire.FrameHeader, bytes, bytes]:
        """Forward a pre-parsed v2 frame without decoding its bytes.

        The shard supervisor's splice path: the frame goes out under
        this link's own request id and the worker-local ``session``,
        with the meta and payload segments written through verbatim;
        the raw response frame parts come back for the caller to
        re-head.  v2 links only.
        """
        if self.wire_version != wire.WIRE_V2:
            raise ServiceError(
                "passthrough_frame needs a v2 link", "WireError"
            )
        async with self._lock:
            await self._drain_pending()
            self._raise_pipeline_error()
            self._next_id += 1
            self._writer.write(
                wire.pack_header(
                    kind=header.kind,
                    code=header.code,
                    request_id=self._next_id,
                    session=session,
                    meta_len=header.meta_len,
                    payload_len=header.payload_len,
                )
            )
            if meta:
                self._writer.write(meta)
            if payload:
                self._writer.write(payload)
            await self._writer.drain()
            frame = await wire.read_frame(self._reader)
            if frame is None:
                raise ServiceError("connection closed by server", "ConnectionClosed")
            if frame[0].request_id != self._next_id:
                raise ServiceError(
                    f"response id {frame[0].request_id!r} does not match request "
                    f"{self._next_id!r} (protocol desync)",
                    "WireError",
                )
            return frame

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    async def ping(self) -> dict[str, Any]:
        return await self.request("ping")

    async def create_session(self, **spec: Any) -> str:
        """Create a session from :class:`~repro.service.session.SessionConfig` fields."""
        response = await self.request("create", spec=spec)
        return response["session"]

    def _wire_values(self, values: np.ndarray, encoding: str) -> Any:
        """A batch in the form the negotiated framing ships fastest."""
        if self.wire_version == wire.WIRE_V2:
            # encode_frame splits the raw array into the frame payload;
            # the v1 text encodings only exist for the line protocol.
            return np.asarray(values, dtype=np.float64)
        return wire.encode_values(values, encoding)

    async def feed(
        self, session: str, values: np.ndarray, *, encoding: str = "b64"
    ) -> dict[str, Any]:
        """Push one observation batch; returns ``{step, messages}``."""
        return await self.request(
            "feed", session=session, values=self._wire_values(values, encoding)
        )

    async def feed_nowait(
        self, session: str, values: np.ndarray, *, encoding: str = "b64"
    ) -> None:
        """Queue one observation batch without awaiting its ack.

        Up to ``window`` feeds ride the connection at once; when the
        window is full this awaits the oldest ack before sending.  Call
        :meth:`flush` (or any other op — an implicit barrier) to drain
        acks and surface any queued failure.
        """
        payload = self._wire_values(values, encoding)
        async with self._lock:
            while len(self._pending) >= self._window:
                await self._read_ack()
            self._raise_pipeline_error()
            self._next_id += 1
            message = {"id": self._next_id, "op": "feed",
                       "session": session, "values": payload}
            self._pending.append((self._next_id, time.perf_counter()))
            try:
                await self._send(message)
            except BaseException:
                # Encode failures (e.g. a misshapen batch) happen before
                # any bytes hit the wire: the entry must not stay
                # pending, or the next barrier would wait forever for an
                # ack the server will never send.
                self._pending.pop()
                raise

    async def advance(self, session: str, steps: int | None = None) -> dict[str, Any]:
        """Drive a workload-backed session forward by up to ``steps``."""
        return await self.request("advance", session=session, steps=steps)

    async def query(self, session: str) -> dict[str, Any]:
        """Current status: step, messages, output ``F(t)``, done flags."""
        return await self.request("query", session=session)

    async def cost(self, session: str) -> dict[str, Any]:
        """Cost snapshot totals plus the per-scope bill."""
        return await self.request("cost", session=session)

    async def snapshot(self, session: str) -> bytes:
        """Checkpoint the session; returns the binary blob."""
        response = await self.request("snapshot", session=session)
        return wire.decode_blob(response["state"])

    async def restore(self, blob: bytes) -> str:
        """Create a new session resuming from a checkpoint blob."""
        state: Any = blob if self.wire_version == wire.WIRE_V2 else wire.encode_blob(blob)
        response = await self.request("restore", state=state)
        return response["session"]

    async def migrate(self, session: str, shard: int | None = None) -> dict[str, Any]:
        """Move a session to another shard (sharded servers only).

        ``shard=None`` lets the supervisor pick the next shard; the
        session id stays valid across the move.
        """
        fields: dict[str, Any] = {"session": session}
        if shard is not None:
            fields["shard"] = shard
        return await self.request("migrate", **fields)

    async def finalize(self, session: str) -> dict[str, Any]:
        """Close the session and return its result summary."""
        response = await self.request("finalize", session=session)
        return response["result"]

    async def close_session(self, session: str) -> None:
        """Drop the session without a result."""
        await self.request("close", session=session)

    async def list_sessions(self) -> list[dict[str, Any]]:
        return (await self.request("list"))["sessions"]

    async def set_batching(self, enabled: bool = True) -> dict[str, Any]:
        """Toggle the server's cross-session feed coalescing.

        Batching is on by default and observably invisible (per-session
        responses, costs and checkpoints are bit-identical either way);
        turning it off pins every feed to the serial path.  On a sharded
        server the toggle fans out to every worker.
        """
        return await self.request("batch", enabled=enabled)

    async def metrics(self, enabled: bool | None = None) -> dict[str, Any]:
        """Scrape the server's metrics registry (fleet-wide on shards).

        ``enabled`` toggles the optional telemetry first — like batching,
        the toggle is observably invisible to session results.  With no
        argument this is a pure read.
        """
        fields = {} if enabled is None else {"enabled": enabled}
        return await self.request("metrics", **fields)

    async def durability(self, enabled: bool | None = None) -> dict[str, Any]:
        """Toggle or inspect WAL appends (fleet-wide on shards).

        Durability is on by default when the server was started with a
        WAL directory and cannot be enabled without one.  Re-enabling
        forces an immediate full checkpoint so the log restarts from a
        consistent base.  With no argument this is a pure read; the
        reply reports ``enabled`` and whether a WAL is configured.
        """
        fields = {} if enabled is None else {"enabled": enabled}
        return await self.request("durability", **fields)

    async def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop (it answers, then exits its serve loop)."""
        return await self.request("shutdown")


class ServiceClient:
    """Synchronous facade over :class:`AsyncServiceClient`.

    Owns a private event loop; not thread-safe.  Use as a context
    manager so the connection and loop are released deterministically.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        wire_protocol: str | None = None,
        window: int = 32,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        try:
            self._client = self._loop.run_until_complete(
                AsyncServiceClient.connect(
                    host, port, wire_protocol=wire_protocol, window=window
                )
            )
        except BaseException:
            self._loop.close()
            raise

    @property
    def wire_version(self) -> int:
        """The negotiated framing version (1 = JSON lines, 2 = binary)."""
        return self._client.wire_version

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._loop.run_until_complete(self._client.aclose())
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, coro):
        return self._loop.run_until_complete(coro)

    # One sync wrapper per op; signatures mirror AsyncServiceClient.
    def ping(self) -> dict[str, Any]:
        return self._call(self._client.ping())

    def create_session(self, **spec: Any) -> str:
        return self._call(self._client.create_session(**spec))

    def feed(self, session: str, values: np.ndarray, *, encoding: str = "b64") -> dict[str, Any]:
        return self._call(self._client.feed(session, values, encoding=encoding))

    def feed_nowait(self, session: str, values: np.ndarray, *, encoding: str = "b64") -> None:
        self._call(self._client.feed_nowait(session, values, encoding=encoding))

    def flush(self) -> None:
        self._call(self._client.flush())

    def advance(self, session: str, steps: int | None = None) -> dict[str, Any]:
        return self._call(self._client.advance(session, steps))

    def query(self, session: str) -> dict[str, Any]:
        return self._call(self._client.query(session))

    def cost(self, session: str) -> dict[str, Any]:
        return self._call(self._client.cost(session))

    def snapshot(self, session: str) -> bytes:
        return self._call(self._client.snapshot(session))

    def restore(self, blob: bytes) -> str:
        return self._call(self._client.restore(blob))

    def migrate(self, session: str, shard: int | None = None) -> dict[str, Any]:
        return self._call(self._client.migrate(session, shard))

    def finalize(self, session: str) -> dict[str, Any]:
        return self._call(self._client.finalize(session))

    def close_session(self, session: str) -> None:
        self._call(self._client.close_session(session))

    def list_sessions(self) -> list[dict[str, Any]]:
        return self._call(self._client.list_sessions())

    def set_batching(self, enabled: bool = True) -> dict[str, Any]:
        return self._call(self._client.set_batching(enabled))

    def metrics(self, enabled: bool | None = None) -> dict[str, Any]:
        return self._call(self._client.metrics(enabled))

    def durability(self, enabled: bool | None = None) -> dict[str, Any]:
        return self._call(self._client.durability(enabled))

    def shutdown(self) -> dict[str, Any]:
        return self._call(self._client.shutdown())
