"""Replay a shrunk fuzz failure without hypothesis in the loop.

The stateful fuzz tier (tests/service/stateful/) dumps every diverging
op sequence as JSON — the ops, the wire pin and the topology set — via
:func:`repro.service.fuzzharness.TopologyHarness._dump_failure`.  This
entry point re-drives such a file through a fresh harness::

    python -m repro.service.fuzz_replay .hypothesis/fuzz-failure.json

Exit status 1 means the divergence reproduced (the diagnosis is
printed, and the re-dump overwrites the input's dump path unless
``REPRO_FUZZ_DUMP`` redirects it); 0 means the sequence now passes.
Flags override the recorded environment to bisect a failure across
serving configurations — e.g. ``--topologies inproc,shard4`` or
``--wire v1``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.service.fuzzharness import (
    TOPOLOGIES,
    DivergenceError,
    TopologyHarness,
)

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.fuzz_replay",
        description="Re-drive a dumped fuzz op sequence through the "
        "cross-topology differential harness.",
    )
    parser.add_argument("dump", type=Path, help="failure JSON written by the fuzz tier")
    parser.add_argument(
        "--wire",
        choices=("v1", "auto"),
        default=None,
        help="override the recorded wire pin",
    )
    parser.add_argument(
        "--topologies",
        default=None,
        metavar="NAMES",
        help=f"override the recorded topology set (comma-separated, from "
        f"{sorted(TOPOLOGIES)})",
    )
    args = parser.parse_args(argv)

    record = json.loads(args.dump.read_text())
    ops = record.get("ops")
    if not isinstance(ops, list):
        parser.error(f"{args.dump} has no 'ops' list — not a fuzz failure dump")
    wire_pin = args.wire or record.get("wire_pin", "auto")
    topologies = tuple(
        name.strip()
        for name in (args.topologies or ",".join(record.get("topologies", []))).split(",")
        if name.strip()
    ) or None

    harness = TopologyHarness(wire_pin, topologies=topologies)
    print(
        f"replaying {len(ops)} op(s) against "
        f"{', '.join(harness.topology_names)} (wire pin: {wire_pin})"
    )
    try:
        harness.reset()
        for index, op in enumerate(ops):
            print(f"  [{index + 1}/{len(ops)}] {op['op']}")
            harness.apply(op)
    except DivergenceError as exc:
        print(f"\nDIVERGED:\n{exc}", file=sys.stderr)
        return 1
    finally:
        harness.teardown()
    print("sequence replayed cleanly — no divergence")
    return 0


if __name__ == "__main__":
    sys.exit(main())
