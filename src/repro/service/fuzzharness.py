"""Cross-topology differential harness for the stateful protocol fuzzer.

The topology-independence law says one op sequence must produce
bit-identical observables no matter how it is served: in-process,
behind a 1-shard supervisor, or spread over 4 shard workers — under
either wire framing, across mid-sequence v1→v2 upgrades, checkpoint
migrations and whole-shard restarts.  This module turns that law into
an executable check: :class:`TopologyHarness` applies every op of a
generated sequence to

- a pure in-process :class:`~repro.service.session.Session` **oracle**
  (no sockets, no server — the semantics the model layer defines), and
- one live server per configured topology,

in lockstep, and compares the normalized responses — or the raised
error's type — across all of them after every single op.  The oracle
needs no mocking because a server hosts the very same ``Session``
stack: a healthy server's error type is ``type(exc).__name__`` of the
exception the oracle raises.  Checkpoint blobs are compared as raw
bytes: sessions pickle canonically (see ``model/ledger.py``,
``model/engine.py``, ``model/node.py``), so the blob is a pure
function of session state.

The harness is deliberately hypothesis-agnostic: the state machine in
tests/service/stateful/ drives it, and ``python -m
repro.service.fuzz_replay failure.json`` re-drives a recorded sequence
without hypothesis in the loop.  Every op is appended to
:attr:`TopologyHarness.trace` in a JSON-serializable form; on the
first divergence the harness dumps the trace (see
:func:`failure_dump_path`) and raises :class:`DivergenceError`, which
hypothesis shrinks to a minimal sequence.

Hangs are failures too: every client call runs under :data:`OP_TIMEOUT`,
so a lost ack or a deadlocked lock surfaces as a shrinkable assertion
instead of wedging the test run.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.service import wire
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.server import MonitoringServer
from repro.service.session import Session, session_from_wire
from repro.service.shard import ShardedMonitoringServer

__all__ = [
    "OP_TIMEOUT",
    "TOPOLOGIES",
    "DivergenceError",
    "TopologyHarness",
    "configured_topologies",
    "failure_dump_path",
]

#: Ceiling on one client call.  Deliberately above the shard
#: supervisor's ``_FORWARD_TIMEOUT`` so a hung *worker* surfaces as the
#: supervisor's ShardError response (a comparable outcome) before the
#: harness declares the whole topology hung.
OP_TIMEOUT = 90.0

#: All known topologies, name -> shard worker count (0 = in-process).
TOPOLOGIES: dict[str, int] = {"inproc": 0, "shard1": 1, "shard4": 4}


def configured_topologies() -> tuple[str, ...]:
    """Topology set under test (env ``REPRO_FUZZ_TOPOLOGIES``).

    Defaults to all three.  CI's short profile trims to
    ``inproc,shard1``; the nightly long profile runs the full set.
    """
    raw = os.environ.get("REPRO_FUZZ_TOPOLOGIES", "inproc,shard1,shard4")
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    unknown = [name for name in names if name not in TOPOLOGIES]
    if unknown or not names:
        raise ValueError(
            f"REPRO_FUZZ_TOPOLOGIES must name topologies from "
            f"{sorted(TOPOLOGIES)}, got {raw!r}"
        )
    return names


def failure_dump_path() -> Path:
    """Where a diverging sequence is dumped (env ``REPRO_FUZZ_DUMP``)."""
    return Path(os.environ.get("REPRO_FUZZ_DUMP", ".hypothesis/fuzz-failure.json"))


class DivergenceError(AssertionError):
    """Two serving topologies (or a topology and the oracle) disagreed."""


def _short(value: Any, limit: int = 800) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + f"… [{len(text)} chars]"


class _Topology:
    """One live serving stack: server + a single client connection."""

    def __init__(self, name: str, server: MonitoringServer) -> None:
        self.name = name
        self.server = server
        self.client: AsyncServiceClient | None = None
        #: logical session id -> this topology's wire session id.  The
        #: numeric ids genuinely diverge across topologies (a failed
        #: create burns an id on the supervisor but not on the
        #: in-process server), so all comparisons go through this map.
        self.sids: dict[int, str] = {}


class TopologyHarness:
    """Drive one op sequence against every topology plus the oracle.

    Parameters
    ----------
    wire_pin:
        ``"v1"`` pins every server to JSON lines (the ``hello`` upgrade
        is *refused*, which :meth:`upgrade_wire` asserts); ``"auto"``
        lets it negotiate binary frames mid-sequence.  Connections
        always start in v1, matching the protocol's design.
    topologies:
        Names from :data:`TOPOLOGIES`; defaults to
        :func:`configured_topologies`.
    """

    def __init__(
        self, wire_pin: str = "auto", topologies: tuple[str, ...] | None = None
    ) -> None:
        if wire_pin not in ("v1", "auto"):
            raise ValueError(f"wire_pin must be 'v1' or 'auto', got {wire_pin!r}")
        self.wire_pin = wire_pin
        self.topology_names = tuple(topologies or configured_topologies())
        self.accept_wire = wire.WIRE_V1 if wire_pin == "v1" else wire.WIRE_V2
        self._loop = asyncio.new_event_loop()
        self._topologies: list[_Topology] = []
        #: Per-topology WAL directories (temp; removed at teardown, but
        #: copied next to the failure dump first when a run diverges).
        self._wal_dirs: list[str] = []
        #: The in-process oracle: logical id -> live Session (``None``
        #: once finalized/closed — ops on the id must fail KeyError).
        self._oracle: dict[int, Session | None] = {}
        self._next_logical = 0
        #: Blobs captured by snapshot ops: one dict per snapshot,
        #: keyed by topology name plus ``"oracle"``.
        self._blobs: list[dict[str, bytes]] = []
        #: Mirrors the servers' durability toggle (transparent mode, so
        #: no oracle involvement) — :meth:`crash_shard` only asserts
        #: lossless recovery while appends are actually on.
        self._durability = True
        #: Acceptable error types for the first queued pipelined-feed
        #: failure (``None`` = no failure queued).  A set, not a single
        #: type: for a doubly-invalid feed (dead session *and*
        #: non-finite block) the reported type legitimately depends on
        #: validation order — v2 decodes the payload before dispatch
        #: (WireError) while the sharded pass-through checks the route
        #: first (KeyError) — and the law only fixes single-fault types.
        self._pipeline_expect: frozenset[str] | None = None
        #: JSON-serializable record of every op applied (for replay).
        self.trace: list[dict[str, Any]] = []
        #: Set on any failure: server state can no longer be assumed to
        #: be in lockstep, so the owner must rebuild the harness.
        self.dirty = False
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._started:
            raise RuntimeError("harness already started")
        self._started = True
        self._run(self._start())

    async def _start(self) -> None:
        for name in self.topology_names:
            shards = TOPOLOGIES[name]
            # Every topology runs WAL-backed: durability is a
            # transparent mode (appends observe acked ops, never session
            # state), so the differential run doubles as the check that
            # logging + checkpointing moves nothing observable — and the
            # crash_shard perturbation needs a log to recover from.
            wal_dir = tempfile.mkdtemp(prefix=f"repro-fuzz-wal-{name}-")
            self._wal_dirs.append(wal_dir)
            if shards:
                server: MonitoringServer = ShardedMonitoringServer(
                    shards=shards, accept_wire=self.accept_wire, wal_dir=wal_dir
                )
            else:
                server = MonitoringServer(accept_wire=self.accept_wire, wal_dir=wal_dir)
            await server.start()
            self._topologies.append(_Topology(name, server))
        await self._connect_clients()

    async def _connect_clients(self) -> None:
        for topo in self._topologies:
            if topo.client is not None:
                await topo.client.aclose()
            # Every connection starts as v1 JSON lines; the ``upgrade``
            # op performs the mid-sequence hello negotiation.
            topo.client = await AsyncServiceClient.connect(
                topo.server.host, topo.server.port, wire_protocol="v1", window=4
            )

    def reset(self) -> None:
        """Fresh example on reused servers: drop sessions, reconnect.

        Rebuilding 4-shard worker fleets per example would dominate the
        run time, so the servers persist across examples and only the
        per-example state (sessions, connections, wire version,
        pipeline windows) is recycled.  A dirty harness must not be
        reset — the owner rebuilds it from scratch.
        """
        if self.dirty:
            raise RuntimeError("dirty harness cannot be reset; rebuild it")
        if not self._started:
            self.start()
        self._run(self._reset())
        self._oracle.clear()
        self._blobs.clear()
        self.trace.clear()
        self._pipeline_expect = None
        # Logical ids restart per example so a dumped trace replays
        # verbatim: the same op sequence mints the same ids.
        self._next_logical = 0

    async def _reset(self) -> None:
        await self._connect_clients()  # fresh v1 connections, clean pipelines
        for topo in self._topologies:
            assert topo.client is not None
            for logical, sid in list(topo.sids.items()):
                if self._oracle.get(logical) is not None:
                    await asyncio.wait_for(topo.client.close_session(sid), OP_TIMEOUT)
            topo.sids.clear()
            # A previous example may have toggled durability off on the
            # reused server; each example starts appending (the
            # re-enable also forces a checkpoint, truncating the log).
            await asyncio.wait_for(topo.client.durability(True), OP_TIMEOUT)
        self._durability = True

    def teardown(self) -> None:
        """Shut every topology down (asserting the shutdown op answers)."""
        if not self._started:
            return
        try:
            self._run(self._teardown())
        finally:
            self._loop.close()
            self._started = False
            for wal_dir in self._wal_dirs:
                shutil.rmtree(wal_dir, ignore_errors=True)
            self._wal_dirs.clear()

    async def _teardown(self) -> None:
        for topo in self._topologies:
            try:
                if topo.client is not None and not self.dirty:
                    # shutdown is part of the vocabulary under test: a
                    # clean teardown exercises it on every topology.
                    response = await asyncio.wait_for(
                        topo.client.request("shutdown"), OP_TIMEOUT
                    )
                    assert response.get("stopping") is True, response
            except (ServiceError, OSError, asyncio.TimeoutError):
                pass  # a dirty/hung server still gets force-closed below
            finally:
                if topo.client is not None:
                    await topo.client.aclose()
                await topo.server.aclose()

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    # ------------------------------------------------------------------ #
    # Failure plumbing
    # ------------------------------------------------------------------ #
    def _record(self, op: str, **args: Any) -> None:
        self.trace.append({"op": op, **args})

    def _dump_failure(self, reason: str) -> Path:
        path = failure_dump_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "wire_pin": self.wire_pin,
                    "topologies": list(self.topology_names),
                    "reason": reason,
                    "ops": self.trace,
                },
                indent=2,
            )
        )
        # Preserve the WAL state alongside the trace: the logs are the
        # forensic record of exactly which ops were acknowledged, and
        # the teardown below would otherwise delete them (CI uploads
        # this directory as the failure artifact).
        wal_copy = path.with_name(path.name + ".wal")
        shutil.rmtree(wal_copy, ignore_errors=True)
        for name, wal_dir in zip(self.topology_names, self._wal_dirs):
            if os.path.isdir(wal_dir):
                shutil.copytree(wal_dir, wal_copy / name, dirs_exist_ok=True)
        return path

    def _fail(self, message: str) -> None:
        self.dirty = True
        path = self._dump_failure(message)
        raise DivergenceError(
            f"{message}\nsequence dumped to {path} — replay with:\n"
            f"  python -m repro.service.fuzz_replay {path}"
        )

    async def _call(self, topo: _Topology, coro) -> tuple[str, Any]:
        """One client call -> ``('ok', payload)`` | ``('error', type)``."""
        try:
            return "ok", await asyncio.wait_for(coro, OP_TIMEOUT)
        except ServiceError as exc:
            return "error", exc.error_type or type(exc).__name__
        except wire.WireError:
            # Client-side encode rejection: nothing reached the wire.
            return "error", "WireError"
        except asyncio.TimeoutError:
            self._fail(
                f"[{topo.name}] call did not answer within {OP_TIMEOUT:.0f}s "
                "(hang: lost ack or deadlock)"
            )
            raise AssertionError("unreachable")  # _fail always raises

    def _oracle_call(self, fn) -> tuple[str, Any]:
        """One oracle step, in the same outcome shape as :meth:`_call`."""
        try:
            return "ok", fn()
        except Exception as exc:
            return "error", type(exc).__name__

    def _compare(
        self,
        op: str,
        expected: tuple[str, Any],
        results: list[tuple[str, tuple[str, Any]]],
    ) -> None:
        """Assert every topology's outcome matches the oracle's."""
        for name, outcome in results:
            if outcome[0] != expected[0] or outcome[1] != expected[1]:
                self._fail(
                    f"op {op!r}: [{name}] diverges from the oracle:\n"
                    f"  {name}: {outcome[0]} {_short(outcome[1])}\n"
                    f"  oracle: {expected[0]} {_short(expected[1])}"
                )

    def _barrier(self) -> None:
        """The client contract makes every op an implicit pipeline
        barrier: a queued feed failure pre-empts the next op.  The
        harness runs that barrier explicitly (as a compared flush op)
        so the op's own outcome stays comparable across topologies."""
        if self._pipeline_expect is not None:
            self.flush()

    def _note_pipeline_error(self, *error_types: str) -> None:
        if self._pipeline_expect is None:  # the first failure wins
            self._pipeline_expect = frozenset(error_types)

    def _logical_of(self, topo: _Topology, sid: str) -> int | None:
        for logical, mapped in topo.sids.items():
            if mapped == sid:
                return logical
        return None

    def _sid(self, topo: _Topology, logical: int) -> str:
        # A never-granted logical id maps to a syntactically valid but
        # unknown sid, so "op on a dead/unknown session" is exercisable.
        return topo.sids.get(logical, f"s{4_000_000_000 + logical}")

    @staticmethod
    def _is_nonfinite(array: np.ndarray) -> bool:
        return bool(array.size) and not bool(np.all(np.isfinite(array)))

    # ------------------------------------------------------------------ #
    # Vocabulary
    # ------------------------------------------------------------------ #
    def create(self, spec: dict[str, Any]) -> int | None:
        """``create``; returns the new logical id (None if rejected)."""
        self._barrier()
        self._record("create", spec=spec)
        expected = self._oracle_call(lambda: session_from_wire(dict(spec)))
        expected_cmp = (
            expected
            if expected[0] == "error"
            else ("ok", {"step": expected[1].step})
        )
        results = []
        sids: dict[str, str] = {}
        for topo in self._topologies:
            assert topo.client is not None
            outcome = self._run(
                self._call(topo, topo.client.request("create", spec=dict(spec)))
            )
            if outcome[0] == "ok":
                sids[topo.name] = outcome[1]["session"]
                outcome = ("ok", {"step": outcome[1]["step"]})
            results.append((topo.name, outcome))
        self._compare("create", expected_cmp, results)
        if expected[0] == "error":
            return None
        logical = self._next_logical
        self._next_logical += 1
        self._oracle[logical] = expected[1]
        for topo in self._topologies:
            topo.sids[logical] = sids[topo.name]
        return logical

    def _session_op(self, op: str, logical: int, oracle_fn, client_fn) -> Any:
        """Shared plumbing for ops addressed at one session.

        ``oracle_fn(session)`` produces the expected payload (or raises
        the expected exception); ``client_fn(client, sid)`` returns a
        coroutine producing the comparably normalized payload.
        """
        oracle_session = self._oracle.get(logical)
        if oracle_session is None:
            # Finalized/closed (or never existed): every server answers
            # KeyError from its slot/route lookup.
            expected: tuple[str, Any] = ("error", "KeyError")
        else:
            expected = self._oracle_call(lambda: oracle_fn(oracle_session))
        results = []
        for topo in self._topologies:
            assert topo.client is not None
            outcome = self._run(
                self._call(topo, client_fn(topo.client, self._sid(topo, logical)))
            )
            results.append((topo.name, outcome))
        self._compare(op, expected, results)
        return expected[1] if expected[0] == "ok" else None

    def feed(self, logical: int, block: list[list[float]]) -> None:
        self._barrier()
        self._record("feed", session=logical, block=block)
        array = np.asarray(block, dtype=np.float64)
        if self._is_nonfinite(array):
            self._feed_nonfinite(logical, array)
            return

        def oracle_fn(session: Session) -> dict[str, Any]:
            step = session.feed(array.copy())
            return {"step": step, "messages": session.messages}

        def client_fn(client: AsyncServiceClient, sid: str):
            async def run():
                response = await client.feed(sid, array)
                return {"step": response["step"], "messages": response["messages"]}

            return run()

        self._session_op("feed", logical, oracle_fn, client_fn)

    def _feed_nonfinite(self, logical: int, array: np.ndarray) -> None:
        """A non-finite batch is rejected at the wire as WireError on
        every topology — *before* any session state is touched.  When
        the session is also dead the reported type is validation-order
        dependent (see :attr:`_pipeline_expect`), so each topology may
        answer either type of the double fault."""
        alive = self._oracle.get(logical) is not None
        acceptable = {"WireError"} if alive else {"WireError", "KeyError"}
        for topo in self._topologies:
            assert topo.client is not None
            outcome = self._run(
                self._call(
                    topo, topo.client.feed(self._sid(topo, logical), array)
                )
            )
            if outcome[0] != "error" or outcome[1] not in acceptable:
                self._fail(
                    f"op 'feed': [{topo.name}] non-finite batch answered "
                    f"{outcome[0]} {_short(outcome[1])} (expected one of "
                    f"{sorted(acceptable)})"
                )

    def feed_nowait(self, logical: int, block: list[list[float]]) -> None:
        """Queue a pipelined feed everywhere; the oracle applies it now.

        No comparison happens here — per the client contract the ack
        surfaces at the next barrier (an explicit :meth:`flush` or any
        other op).  The oracle's session state is untouched by a
        failing block, matching the server, and the expected
        first-error type is remembered for the barrier's comparison.
        """
        self._record("feed_nowait", session=logical, block=block)
        array = np.asarray(block, dtype=np.float64)
        oracle_session = self._oracle.get(logical)
        if self._is_nonfinite(array):
            if oracle_session is None:
                self._note_pipeline_error("WireError", "KeyError")
            else:
                self._note_pipeline_error("WireError")
        elif oracle_session is None:
            self._note_pipeline_error("KeyError")
        else:
            try:
                oracle_session.feed(array.copy())
            except Exception as exc:
                self._note_pipeline_error(type(exc).__name__)
        for topo in self._topologies:
            assert topo.client is not None
            outcome = self._run(
                self._call(
                    topo, topo.client.feed_nowait(self._sid(topo, logical), array)
                )
            )
            if outcome[0] == "error":
                # feed_nowait itself only raises for client-side encode
                # failures, which none of the generated blocks trigger —
                # anything here is a real bug (e.g. a poisoned pipeline).
                self._fail(
                    f"op 'feed_nowait': [{topo.name}] raised "
                    f"{_short(outcome[1])} while queueing"
                )

    def flush(self) -> None:
        """Barrier: drain pipelined acks everywhere, compare outcomes."""
        self._record("flush")
        expect, self._pipeline_expect = self._pipeline_expect, None
        for topo in self._topologies:
            assert topo.client is not None

            async def run(client=topo.client):
                await client.flush()
                return None

            outcome = self._run(self._call(topo, run()))
            if expect is None:
                if outcome[0] != "ok":
                    self._fail(
                        f"op 'flush': [{topo.name}] surfaced "
                        f"{_short(outcome[1])} with no failure queued"
                    )
            elif outcome[0] != "error" or outcome[1] not in expect:
                self._fail(
                    f"op 'flush': [{topo.name}] answered {outcome[0]} "
                    f"{_short(outcome[1])}; the oracle queued a failure of "
                    f"type {sorted(expect)}"
                )

    def advance(self, logical: int, steps: int | None) -> None:
        self._barrier()
        self._record("advance", session=logical, steps=steps)

        def oracle_fn(session: Session) -> dict[str, Any]:
            step = session.advance(steps)
            return {"step": step, "messages": session.messages, "done": session.done}

        def client_fn(client: AsyncServiceClient, sid: str):
            async def run():
                response = await client.advance(sid, steps)
                return {
                    "step": response["step"],
                    "messages": response["messages"],
                    "done": response["done"],
                }

            return run()

        self._session_op("advance", logical, oracle_fn, client_fn)

    def query(self, logical: int) -> None:
        self._barrier()
        self._record("query", session=logical)

        def client_fn(client: AsyncServiceClient, sid: str):
            async def run():
                response = await client.query(sid)
                return {
                    key: value
                    for key, value in response.items()
                    if key not in ("id", "ok", "session")
                }

            return run()

        self._session_op("query", logical, lambda s: s.status(), client_fn)

    def cost(self, logical: int) -> None:
        self._barrier()
        self._record("cost", session=logical)

        def oracle_fn(session: Session) -> dict[str, Any]:
            snap = session.cost()
            return {
                "messages": snap.messages,
                "node_to_server": snap.node_to_server,
                "server_to_node": snap.server_to_node,
                "broadcasts": snap.broadcasts,
                "rounds": snap.rounds,
                "broadcast_cost": snap.broadcast_cost,
                "by_scope": session.bill(),
            }

        def client_fn(client: AsyncServiceClient, sid: str):
            async def run():
                response = await client.cost(sid)
                return {
                    key: value
                    for key, value in response.items()
                    if key not in ("id", "ok", "session")
                }

            return run()

        self._session_op("cost", logical, oracle_fn, client_fn)

    def snapshot(self, logical: int) -> int | None:
        """``snapshot``; blobs must be bit-identical across topologies.

        Returns an index usable by :meth:`restore` (None on failure).
        """
        self._barrier()
        self._record("snapshot", session=logical)
        blobs: dict[str, bytes] = {}

        def oracle_fn(session: Session) -> dict[str, Any]:
            blob = session.snapshot()
            blobs["oracle"] = blob
            return {"blob": blob}

        def client_fn(client: AsyncServiceClient, sid: str):
            topo_name = next(t.name for t in self._topologies if t.client is client)

            async def run():
                blob = await client.snapshot(sid)
                blobs[topo_name] = blob
                # The blob IS the compared payload: canonical pickling
                # (SNAPSHOT_FORMAT 2) makes byte equality the contract.
                return {"blob": blob}

            return run()

        payload = self._session_op("snapshot", logical, oracle_fn, client_fn)
        if payload is None:
            return None
        self._blobs.append(blobs)
        return len(self._blobs) - 1

    def restore(self, blob_index: int) -> int | None:
        """``restore`` from a recorded blob; returns the new logical id.

        Each topology restores *its own* snapshot bytes — which
        :meth:`snapshot` already proved identical — so a restored
        session must continue bit-identically everywhere.
        """
        self._barrier()
        self._record("restore", blob=blob_index)
        blobs = self._blobs[blob_index]
        expected = self._oracle_call(lambda: Session.restore(blobs["oracle"]))
        expected_cmp = (
            expected if expected[0] == "error" else ("ok", {"step": expected[1].step})
        )
        results = []
        sids: dict[str, str] = {}
        for topo in self._topologies:
            assert topo.client is not None

            async def run(client=topo.client, blob=blobs[topo.name]):
                sid = await client.restore(blob)
                return {"sid": sid, "step": (await client.query(sid))["step"]}

            outcome = self._run(self._call(topo, run()))
            if outcome[0] == "ok":
                sids[topo.name] = outcome[1]["sid"]
                outcome = ("ok", {"step": outcome[1]["step"]})
            results.append((topo.name, outcome))
        self._compare("restore", expected_cmp, results)
        if expected[0] == "error":
            return None
        logical = self._next_logical
        self._next_logical += 1
        self._oracle[logical] = expected[1]
        for topo in self._topologies:
            topo.sids[logical] = sids[topo.name]
        return logical

    def corrupt_restore(self, blob_index: int | None) -> None:
        """``restore`` with a corrupted blob: SnapshotError everywhere.

        ``blob_index=None`` sends plain garbage; otherwise a truncated
        prefix of a previously captured (valid) checkpoint.
        """
        self._barrier()
        self._record("corrupt_restore", blob=blob_index)
        if blob_index is None:
            garbage = b"not a checkpoint at all"
        else:
            source = self._blobs[blob_index]["oracle"]
            garbage = source[: max(1, len(source) // 2)]
        expected = self._oracle_call(lambda: Session.restore(garbage))
        results = []
        for topo in self._topologies:
            assert topo.client is not None

            async def run(client=topo.client):
                return await client.restore(garbage)

            results.append((topo.name, self._run(self._call(topo, run()))))
        self._compare("corrupt_restore", expected, results)

    def finalize(self, logical: int) -> None:
        self._barrier()
        self._record("finalize", session=logical)

        def oracle_fn(session: Session) -> dict[str, Any]:
            result = session.finalize()
            self._oracle[logical] = None  # the server drops the slot too
            return {
                "algorithm": result.algorithm_name,
                "num_steps": result.num_steps,
                "n": result.n,
                "k": result.k,
                "messages": result.messages,
                "output_changes": result.output_changes,
                "max_rounds_per_step": result.ledger.max_rounds_per_step,
                "by_scope": result.ledger.by_scope(),
            }

        def client_fn(client: AsyncServiceClient, sid: str):
            return client.finalize(sid)

        self._session_op("finalize", logical, oracle_fn, client_fn)

    def close(self, logical: int) -> None:
        self._barrier()
        self._record("close", session=logical)

        def oracle_fn(session: Session) -> None:
            self._oracle[logical] = None
            return None

        def client_fn(client: AsyncServiceClient, sid: str):
            async def run():
                await client.close_session(sid)
                return None

            return run()

        self._session_op("close", logical, oracle_fn, client_fn)

    def list_sessions(self) -> None:
        """``list``: same live sessions, same status rows, everywhere."""
        self._barrier()
        self._record("list")
        expected_rows = sorted(
            (
                {"logical": logical, **session.status()}
                for logical, session in self._oracle.items()
                if session is not None
            ),
            key=lambda row: row["logical"],
        )
        results = []
        for topo in self._topologies:
            assert topo.client is not None

            async def run(topo=topo):
                rows = [
                    {
                        "logical": self._logical_of(topo, row["session"]),
                        **{
                            key: value
                            for key, value in row.items()
                            if key not in ("session", "shard")
                        },
                    }
                    for row in await topo.client.list_sessions()
                ]
                return sorted(
                    rows, key=lambda row: (row["logical"] is None, row["logical"])
                )

            results.append((topo.name, self._run(self._call(topo, run()))))
        self._compare("list", ("ok", expected_rows), results)

    def ping(self) -> None:
        """``ping``: the comparable slice is the live-session count."""
        self._barrier()
        self._record("ping")
        live = sum(1 for session in self._oracle.values() if session is not None)
        results = []
        for topo in self._topologies:
            assert topo.client is not None

            async def run(client=topo.client):
                response = await client.ping()
                return {"pong": response["pong"], "sessions": response["sessions"]}

            results.append((topo.name, self._run(self._call(topo, run()))))
        self._compare("ping", ("ok", {"pong": True, "sessions": live}), results)

    def set_batching(self, enabled: bool) -> None:
        """``batch``: toggle cross-session coalescing on every topology.

        Batching is a *transparent* performance mode — the cohort law
        says a batched session's observables are bit-identical to the
        serial path's — so the oracle has no batching concept at all.
        The op's own ack is asserted per-topology, and every later
        feed/cost/snapshot comparison against the oracle is exactly the
        check that toggling mid-sequence moved nothing observable.
        """
        self._barrier()
        self._record("batch", enabled=enabled)
        for topo in self._topologies:
            assert topo.client is not None
            outcome = self._run(
                self._call(topo, topo.client.set_batching(enabled))
            )
            if outcome[0] != "ok" or outcome[1].get("batching") is not enabled:
                self._fail(
                    f"op 'batch': [{topo.name}] answered {outcome[0]} "
                    f"{_short(outcome[1])} (expected batching={enabled})"
                )

    def set_metrics(self, enabled: bool) -> None:
        """``metrics``: toggle the ops-plane telemetry on every topology.

        Like batching, metrics are a *transparent* mode: instruments
        observe session state but never touch it, so the oracle has no
        metrics concept and every later feed/cost/snapshot comparison is
        the check that toggling (and scraping) moved nothing observable
        — the metrics-on/off transparency law.  Only the op's own ack is
        asserted here; the dump itself is topology-shaped (shard labels)
        and deliberately not compared.
        """
        self._barrier()
        self._record("metrics", enabled=enabled)
        for topo in self._topologies:
            assert topo.client is not None
            outcome = self._run(self._call(topo, topo.client.metrics(enabled)))
            if outcome[0] != "ok" or outcome[1].get("enabled") is not enabled:
                self._fail(
                    f"op 'metrics': [{topo.name}] answered {outcome[0]} "
                    f"{_short(outcome[1])} (expected enabled={enabled})"
                )

    def set_durability(self, enabled: bool) -> None:
        """``durability``: toggle WAL appends on every topology.

        Durability is transparent like batching and metrics: the log
        observes acknowledged ops but never session state, so the
        oracle has no durability concept and every later comparison is
        the check that toggling (re-enabling forces a full checkpoint)
        moved nothing observable.  Every harness topology runs with a
        WAL directory, so the ack must echo the requested state.
        """
        self._barrier()
        self._record("durability", enabled=enabled)
        for topo in self._topologies:
            assert topo.client is not None
            outcome = self._run(self._call(topo, topo.client.durability(enabled)))
            if outcome[0] != "ok" or outcome[1].get("enabled") is not enabled:
                self._fail(
                    f"op 'durability': [{topo.name}] answered {outcome[0]} "
                    f"{_short(outcome[1])} (expected enabled={enabled})"
                )
        self._durability = enabled

    def upgrade_wire(self) -> None:
        """Mid-sequence ``hello``: upgrade every connection to v2.

        Under a v1 pin the upgrade must be *refused* everywhere (the
        connections stay on JSON lines); otherwise it must be granted
        everywhere and all later ops ride binary frames.  Either way
        the sequence's observables must not move — that asymmetry is
        exactly what the differential run checks.  Idempotent: already
        upgraded connections are left alone.
        """
        self._barrier()
        self._record("upgrade_wire")
        granted = wire.WIRE_V1 if self.accept_wire == wire.WIRE_V1 else wire.WIRE_V2
        results = []
        for topo in self._topologies:
            assert topo.client is not None
            if topo.client.wire_version == wire.WIRE_V2:
                continue

            async def run(client=topo.client):
                response = await client.request("hello", wire=wire.WIRE_V2)
                if response["wire"] >= wire.WIRE_V2:
                    # The server switches this connection to binary
                    # frames right after the response line; mirror it.
                    client.wire_version = wire.WIRE_V2
                return {"wire": response["wire"]}

            results.append((topo.name, self._run(self._call(topo, run()))))
        self._compare("upgrade_wire", ("ok", {"wire": granted}), results)

    # ------------------------------------------------------------------ #
    # Topology perturbations (sharded only; observables must not move)
    # ------------------------------------------------------------------ #
    def migrate(self, logical: int) -> None:
        """``migrate`` the session on every *sharded* topology.

        The in-process server does not serve ``migrate`` (it is
        supervisor-only in the op registry), so this is a perturbation,
        not a compared op: its response is asserted per-topology, and
        the independence law requires the session's observables to be
        unchanged afterwards — which the next query/cost/snapshot
        checks against the oracle.
        """
        self._barrier()
        self._record("migrate", session=logical)
        alive = self._oracle.get(logical) is not None
        for topo in self._topologies:
            assert topo.client is not None
            if not isinstance(topo.server, ShardedMonitoringServer):
                continue
            outcome = self._run(
                self._call(topo, topo.client.migrate(self._sid(topo, logical)))
            )
            if alive and outcome[0] != "ok":
                self._fail(
                    f"op 'migrate': [{topo.name}] failed with "
                    f"{_short(outcome[1])} for a live session"
                )
            if not alive and outcome != ("error", "KeyError"):
                self._fail(
                    f"op 'migrate': [{topo.name}] answered {outcome[0]} "
                    f"{_short(outcome[1])} for a dead session (expected KeyError)"
                )

    def restart_shard(self, seed: int) -> None:
        """Restart one worker per sharded topology (sessions survive).

        A perturbation like :meth:`migrate`: every resident session is
        checkpointed out and restored into the replacement process, so
        nothing observable may change and ``lost`` must be 0.
        """
        self._barrier()
        self._record("restart_shard", seed=seed)
        for topo in self._topologies:
            server = topo.server
            if not isinstance(server, ShardedMonitoringServer):
                continue
            index = seed % server.num_shards

            async def run(server=server, index=index):
                return await server.restart_shard(index)

            outcome = self._run(self._call(topo, run()))
            if outcome[0] != "ok":
                self._fail(
                    f"op 'restart_shard': [{topo.name}] failed: "
                    f"{_short(outcome[1])}"
                )
            if outcome[1]["lost"]:
                self._fail(
                    f"op 'restart_shard': [{topo.name}] lost "
                    f"{outcome[1]['lost']} live session(s) on a healthy worker"
                )

    def crash_shard(self, seed: int) -> None:
        """SIGKILL one worker per sharded topology, then recover it.

        The durability law under test: because the harness barriers
        first (so every generated op has been acknowledged) and every
        topology appends to a WAL, ``kill -9`` of the worker followed
        by :meth:`~repro.service.shard.ShardedMonitoringServer.
        restart_shard` must lose **zero** sessions — and the next
        query/cost/snapshot comparison proves the replayed state is
        bit-identical to the oracle, which never crashed.  Skipped (ops
        recorded, nothing killed) while durability is toggled off:
        without appends a crash legitimately loses the tail.
        """
        self._barrier()
        self._record("crash_shard", seed=seed)
        if not self._durability:
            return
        for topo in self._topologies:
            server = topo.server
            if not isinstance(server, ShardedMonitoringServer):
                continue
            index = seed % server.num_shards
            os.kill(server._workers[index].process.pid, signal.SIGKILL)

            async def run(server=server, index=index):
                return await server.restart_shard(index)

            outcome = self._run(self._call(topo, run()))
            if outcome[0] != "ok":
                self._fail(
                    f"op 'crash_shard': [{topo.name}] recovery failed: "
                    f"{_short(outcome[1])}"
                )
            if outcome[1]["lost"]:
                self._fail(
                    f"op 'crash_shard': [{topo.name}] lost "
                    f"{outcome[1]['lost']} acknowledged session(s) after kill -9"
                )

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def apply(self, record: dict[str, Any]) -> None:
        """Apply one recorded trace entry (the replay entry point)."""
        op = dict(record)
        name = op.pop("op")
        dispatch = {
            "create": lambda: self.create(op["spec"]),
            "feed": lambda: self.feed(op["session"], op["block"]),
            "feed_nowait": lambda: self.feed_nowait(op["session"], op["block"]),
            "flush": self.flush,
            "advance": lambda: self.advance(op["session"], op.get("steps")),
            "query": lambda: self.query(op["session"]),
            "cost": lambda: self.cost(op["session"]),
            "snapshot": lambda: self.snapshot(op["session"]),
            "restore": lambda: self.restore(op["blob"]),
            "corrupt_restore": lambda: self.corrupt_restore(op.get("blob")),
            "finalize": lambda: self.finalize(op["session"]),
            "close": lambda: self.close(op["session"]),
            "list": self.list_sessions,
            "ping": self.ping,
            "upgrade_wire": self.upgrade_wire,
            "batch": lambda: self.set_batching(op["enabled"]),
            "metrics": lambda: self.set_metrics(op["enabled"]),
            "durability": lambda: self.set_durability(op["enabled"]),
            "migrate": lambda: self.migrate(op["session"]),
            "restart_shard": lambda: self.restart_shard(op["seed"]),
            "crash_shard": lambda: self.crash_shard(op["seed"]),
        }
        try:
            runner = dispatch[name]
        except KeyError:
            raise ValueError(f"unknown trace op {name!r}") from None
        runner()
