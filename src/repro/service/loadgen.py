"""Load generator: replay registry workloads against a live server.

Drives N monitoring sessions concurrently over TCP, each fed from a
block-streaming workload generator (one connection per worker — the
protocol serializes requests per connection), and reports aggregate and
per-session throughput:

- ``steps_per_s`` — ingested time steps per wall-clock second, the
  service's headline number;
- ``values_per_s`` — ``steps_per_s × n`` observations;
- ``messages_per_step`` — the *algorithmic* cost of the monitored
  stream (what the paper bounds), per session and aggregated;
- ``latency_ms`` — p50/p95/p99 *client-observed completion* latency
  (send → the client reading the response) pooled across every request
  of every worker.  Under pipelining an ack can sit in the socket
  buffer until the window fills or a barrier drains it, so these
  numbers include queueing behind the client's own in-flight feeds —
  the latency a pipelined producer actually experiences, NOT the
  server's per-request service time (compare pipelined cells only
  with pipelined cells).

Feeding is **pipelined** when ``pipeline > 0``: each worker streams up
to that many feed frames before awaiting the oldest ack
(:meth:`~repro.service.client.AsyncServiceClient.feed_nowait`), with a
:meth:`~repro.service.client.AsyncServiceClient.flush` barrier before
``finalize``.  ``pipeline=0`` feeds in request-response lockstep — the
v1-era behavior, kept for apples-to-apples benchmarking.  The wire
framing (``v1``/``v2``/``auto``) is negotiated per connection.

Each session gets its own channel seed and stream seed (derived from
``seed`` and the session index), so concurrent sessions monitor
distinct streams — the realistic serving shape, and the one that makes
the scaling benchmark honest.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

import numpy as np

from repro.service.client import AsyncServiceClient
from repro.streams import registry

__all__ = ["run_loadgen", "loadgen"]


async def _drive_one(
    index: int,
    host: str,
    port: int,
    *,
    workload: str,
    workload_params: dict[str, Any],
    algorithm: str,
    algorithm_params: dict[str, Any],
    num_steps: int,
    n: int,
    k: int,
    eps: float,
    block_size: int,
    seed: int,
    encoding: str,
    wire_protocol: str | None,
    pipeline: int,
) -> dict[str, Any]:
    """One worker: create a session, stream every block into it, finalize."""
    client = await AsyncServiceClient.connect(
        host, port, wire_protocol=wire_protocol, window=max(pipeline, 1)
    )
    client.record_latency = True
    try:
        sid = await client.create_session(
            algorithm=algorithm,
            algorithm_params=algorithm_params,
            n=n,
            k=k,
            eps=eps,
            seed=seed + index,
        )
        source = registry.stream(
            workload, num_steps, n,
            block_size=block_size, rng=seed + 7919 * (index + 1), **workload_params,
        )
        start = time.perf_counter()
        if pipeline > 0:
            for block in source.iter_blocks():
                await client.feed_nowait(sid, block, encoding=encoding)
            await client.flush()
        else:
            for block in source.iter_blocks():
                await client.feed(sid, block, encoding=encoding)
        result = await client.finalize(sid)
        elapsed = time.perf_counter() - start
        return {
            "session": sid,
            "wire": client.wire_version,
            "steps": result["num_steps"],
            "messages": result["messages"],
            "messages_per_step": round(result["messages"] / result["num_steps"], 3),
            "seconds": round(elapsed, 4),
            "steps_per_s": round(result["num_steps"] / elapsed) if elapsed else None,
            "latencies": list(client.latencies),
        }
    finally:
        await client.aclose()


def _latency_summary(
    latencies: list[float], per_session: list[list[float]] | None = None
) -> dict[str, Any] | None:
    """p50/p95/p99 client-observed completion latency in milliseconds
    (pooled requests; queue-inclusive under pipelining — see module
    docstring).  ``p99_spread_x`` is the max/min ratio of the
    *per-session* p99s — a fairness number: 1.0 means every session saw
    the same tail, large values mean some sessions starved (e.g. one
    cohort head-of-line-blocking another under batched serving)."""
    if not latencies:
        return None
    ms = np.asarray(latencies) * 1e3
    p50, p95, p99 = np.percentile(ms, [50, 95, 99])
    summary = {
        "count": int(ms.size),
        "p50": round(float(p50), 3),
        "p95": round(float(p95), 3),
        "p99": round(float(p99), 3),
        "max": round(float(ms.max()), 3),
    }
    session_p99s = [
        float(np.percentile(np.asarray(rows) * 1e3, 99))
        for rows in (per_session or [])
        if rows
    ]
    if len(session_p99s) >= 2 and min(session_p99s) > 0:
        summary["p99_spread_x"] = round(max(session_p99s) / min(session_p99s), 3)
    return summary


async def run_loadgen(
    host: str,
    port: int,
    *,
    workload: str = "iid",
    workload_params: dict[str, Any] | None = None,
    algorithm: str = "approx-monitor",
    algorithm_params: dict[str, Any] | None = None,
    sessions: int = 4,
    concurrency: int = 4,
    num_steps: int = 2_000,
    n: int = 32,
    k: int = 4,
    eps: float = 0.1,
    block_size: int = 256,
    seed: int = 0,
    encoding: str = "b64",
    wire_protocol: str | None = None,
    pipeline: int = 0,
) -> dict[str, Any]:
    """Replay ``workload`` into ``sessions`` served sessions; return the report."""
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if pipeline < 0:
        raise ValueError(f"pipeline window must be >= 0, got {pipeline}")
    workload_params = dict(workload_params or {})
    algorithm_params = dict(algorithm_params or {})
    # Surface bad workload input before opening any connection.
    registry.validate_params(workload, n, workload_params)
    semaphore = asyncio.Semaphore(concurrency)

    async def bounded(index: int) -> dict[str, Any]:
        async with semaphore:
            return await _drive_one(
                index, host, port,
                workload=workload, workload_params=workload_params,
                algorithm=algorithm, algorithm_params=algorithm_params,
                num_steps=num_steps, n=n, k=k, eps=eps,
                block_size=block_size, seed=seed, encoding=encoding,
                wire_protocol=wire_protocol, pipeline=pipeline,
            )

    wall_start = time.perf_counter()
    per_session = await asyncio.gather(*(bounded(i) for i in range(sessions)))
    wall = time.perf_counter() - wall_start

    total_steps = sum(row["steps"] for row in per_session)
    total_messages = sum(row["messages"] for row in per_session)
    session_latencies = [row.pop("latencies") for row in per_session]
    all_latencies = [t for rows in session_latencies for t in rows]
    return {
        "workload": workload,
        "workload_params": workload_params,
        "algorithm": algorithm,
        "sessions": sessions,
        "concurrency": concurrency,
        "num_steps": num_steps,
        "n": n,
        "k": k,
        "eps": eps,
        "block_size": block_size,
        "encoding": encoding,
        "wire": max(row["wire"] for row in per_session),
        "pipeline": pipeline,
        "total_steps": total_steps,
        "total_messages": total_messages,
        "wall_seconds": round(wall, 4),
        "steps_per_s": round(total_steps / wall) if wall else None,
        "values_per_s": round(total_steps * n / wall) if wall else None,
        "messages_per_step": round(total_messages / total_steps, 3) if total_steps else None,
        "latency_ms": _latency_summary(all_latencies, session_latencies),
        "per_session": list(per_session),
    }


def loadgen(host: str, port: int, **kwargs: Any) -> dict[str, Any]:
    """Synchronous convenience wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(host, port, **kwargs))
