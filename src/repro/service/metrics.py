"""Dependency-free metrics registry for the ops plane.

The paper's central object is a *cost trajectory* — message complexity
against an offline bound — and this module is what makes that (plus
throughput, latency percentiles, queue depths, batching efficiency) a
*live* signal instead of a post-hoc summary.  Four instrument kinds,
all plain Python (stdlib only, importable from every service module
without cycles):

- :class:`Counter` — monotonic totals (requests, steps ingested,
  batched ticks).  Never decremented; the fleet aggregation below
  relies on that.
- :class:`Gauge` — point-in-time levels (live sessions, executor
  in-flight, link-pool occupancy).  Registry-level *gauge functions*
  sample a callable at dump time, so queue depths need no write on the
  hot path at all.
- :class:`Histogram` — fixed-bucket latency distributions with
  p50/p95/p99 readout via :func:`histogram_percentiles` (bucket
  interpolation — no per-observation storage).
- :class:`RingSeries` — bounded ring-buffer time series, the dashboard
  food: per-session cumulative message cost and ``F(t)`` change
  counts, fleet steps-ingested over time.

A :class:`MetricsRegistry` owns one namespace of keyed instruments.
Keys are rendered Prometheus sample names — ``repro_requests_total``
or ``repro_op_latency_seconds{op="feed"}`` — so a registry
:meth:`~MetricsRegistry.dump` is JSON-ready for the wire and
:func:`render_prometheus` needs no schema beyond the dump itself.

**Enabled flag.**  ``registry.enabled`` gates the *optional* telemetry
(per-op histograms, ring series); instruments themselves never check
it — call sites do, so the disabled path is a single attribute read.
The five legacy ``stats`` counters always count (they are part of
``ping``/``shutdown`` reply shapes).  Toggling is observably
transparent: instruments never touch session state, which the stateful
fuzz tier's metrics rule checks differentially.

**Fleet aggregation.**  The shard supervisor merges worker dumps into
a fleet view with :func:`merge_into`/:func:`relabel`.  Worker restarts
reset worker-side counters to zero; :class:`GenerationAggregator`
keeps per-shard ``carry + last`` totals keyed by the worker's
*generation* tag, so supervisor-side fleet counters are monotone
across ``restart_shard`` instead of silently resetting (the standard
counter-reset handling, done at the aggregation point).
"""

from __future__ import annotations

import re as _re
from collections import deque
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "GenerationAggregator",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "RingSeries",
    "StatsView",
    "histogram_percentiles",
    "lint_exposition",
    "merge_into",
    "new_dump",
    "relabel",
    "render_prometheus",
    "summarize",
]

#: Default latency bucket upper bounds, in seconds.  Spans sub-ms
#: inline ops to multi-second executor stalls; the implicit final
#: bucket is +inf.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default ring-series capacity (points, not bytes).
SERIES_MAXLEN = 512


class Counter:
    """A monotonic counter.  ``value`` is directly readable."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level; settable, incrementable, decrementable."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: counts per ``le`` bound, plus sum/count.

    ``counts`` has ``len(bounds) + 1`` cells — the last is the +inf
    bucket.  Observation is two comparisons-ish (bisection is overkill
    for ~14 buckets; a linear scan stays cache-hot and branch-cheap).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class RingSeries:
    """A bounded ``(x, y)`` time series (oldest points fall off)."""

    __slots__ = ("_points",)

    def __init__(self, maxlen: int = SERIES_MAXLEN) -> None:
        self._points: deque[tuple[float, float]] = deque(maxlen=maxlen)

    def append(self, x: float, y: float) -> None:
        self._points.append((x, y))

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> tuple[list[float], list[float]]:
        snapshot = list(self._points)
        return [p[0] for p in snapshot], [p[1] for p in snapshot]


def _key(name: str, labels: dict[str, Any]) -> str:
    """Render an instrument key: ``name`` or ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{labels[k]}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`_key` (label values must not contain ``"`` )."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value.strip('"')
    return name, labels


class MetricsRegistry:
    """One namespace of keyed instruments plus the enabled switch."""

    def __init__(self, *, enabled: bool = True) -> None:
        #: Gates the optional telemetry (histograms, series) at call
        #: sites; the core request/step counters always count.
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, RingSeries] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------ #
    # Instrument accessors (get-or-create; cache the result on hot paths)
    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS, **labels: Any
    ) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    def series(
        self, name: str, maxlen: int = SERIES_MAXLEN, **labels: Any
    ) -> RingSeries:
        key = _key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = RingSeries(maxlen)
        return instrument

    def drop_series(self, name: str, **labels: Any) -> None:
        """Forget a series (finished sessions must not leak slots)."""
        self._series.pop(_key(name, labels), None)

    def register_gauge_fn(
        self, name: str, fn: Callable[[], float], **labels: Any
    ) -> None:
        """Sample ``fn`` at dump time (queue depths, pool occupancy)."""
        self._gauge_fns[_key(name, labels)] = fn

    # ------------------------------------------------------------------ #
    # Snapshot
    # ------------------------------------------------------------------ #
    def dump(self) -> dict[str, Any]:
        """JSON-ready snapshot: the wire form of this registry."""
        gauges = {key: gauge.value for key, gauge in self._gauges.items()}
        for key, fn in self._gauge_fns.items():
            try:
                gauges[key] = float(fn())
            except Exception:
                pass  # a sampling failure must never fail the scrape
        return {
            "enabled": self.enabled,
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": gauges,
            "histograms": {
                key: {
                    "le": list(hist.bounds),
                    "counts": list(hist.counts),
                    "sum": hist.sum,
                    "count": hist.count,
                }
                for key, hist in self._histograms.items()
            },
            "series": {
                key: dict(zip(("x", "y"), series.points()))
                for key, series in self._series.items()
            },
        }


class StatsView(Mapping):
    """A dict-shaped live view over registry counters.

    Backs the legacy ``MonitoringServer.stats`` attribute: the reply
    shapes of ``ping`` and ``shutdown`` carry ``dict(self.stats)`` and
    several call sites mutate keys in place (``stats["requests"] += 1``)
    — both keep working, but the numbers now live in (and never drift
    from) the metrics registry.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: dict[str, Counter]) -> None:
        self._counters = counters

    def __getitem__(self, key: str) -> int:
        return self._counters[key].value

    def __setitem__(self, key: str, value: int) -> None:
        self._counters[key].value = value

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return repr({k: c.value for k, c in self._counters.items()})


# ---------------------------------------------------------------------- #
# Dump algebra: merge, relabel, aggregate across worker generations
# ---------------------------------------------------------------------- #
def new_dump(*, enabled: bool = True) -> dict[str, Any]:
    """An empty dump, the identity element of :func:`merge_into`."""
    return {
        "enabled": enabled,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "series": {},
    }


def merge_into(target: dict[str, Any], dump: dict[str, Any]) -> dict[str, Any]:
    """Fold ``dump`` into ``target`` in place (and return ``target``).

    Counters and histogram cells add; gauges add too (pool occupancy
    and queue depths are extensive quantities across shards); series
    merge by key (last writer wins — fleet series are shard-labelled,
    so collisions only happen when the caller wants replacement).
    """
    for key, value in dump.get("counters", {}).items():
        target["counters"][key] = target["counters"].get(key, 0) + value
    for key, value in dump.get("gauges", {}).items():
        target["gauges"][key] = target["gauges"].get(key, 0) + value
    for key, hist in dump.get("histograms", {}).items():
        into = target["histograms"].get(key)
        if into is None or into["le"] != hist["le"]:
            target["histograms"][key] = {
                "le": list(hist["le"]),
                "counts": list(hist["counts"]),
                "sum": hist["sum"],
                "count": hist["count"],
            }
            continue
        into["counts"] = [a + b for a, b in zip(into["counts"], hist["counts"])]
        into["sum"] += hist["sum"]
        into["count"] += hist["count"]
    for key, series in dump.get("series", {}).items():
        target["series"][key] = series
    return target


def relabel(dump: dict[str, Any], **labels: Any) -> dict[str, Any]:
    """A copy of ``dump`` with ``labels`` appended to every key."""
    out = new_dump(enabled=dump.get("enabled", True))

    def rekey(key: str) -> str:
        name, existing = split_key(key)
        return _key(name, {**existing, **labels})

    out["counters"] = {rekey(k): v for k, v in dump.get("counters", {}).items()}
    out["gauges"] = {rekey(k): v for k, v in dump.get("gauges", {}).items()}
    out["histograms"] = {rekey(k): v for k, v in dump.get("histograms", {}).items()}
    out["series"] = {rekey(k): v for k, v in dump.get("series", {}).items()}
    return out


def _monotone_slice(dump: dict[str, Any]) -> dict[str, Any]:
    """Just the parts that only ever grow (counters + histograms)."""
    out = new_dump(enabled=dump.get("enabled", True))
    out["counters"] = dict(dump.get("counters", {}))
    out["histograms"] = {
        key: {
            "le": list(h["le"]), "counts": list(h["counts"]),
            "sum": h["sum"], "count": h["count"],
        }
        for key, h in dump.get("histograms", {}).items()
    }
    return out


class GenerationAggregator:
    """Monotone per-shard totals across worker process restarts.

    Each shard worker's registry dies with its process; the supervisor
    feeds every scraped dump in here tagged with the worker's
    *generation* (bumped on every link-pool drop, i.e. every restart).
    On a generation change the previous dump's monotone slice is folded
    into a carried base, so ``shard_totals()`` — ``carry + last`` —
    never decreases even though the fresh worker restarts from zero.
    """

    def __init__(self) -> None:
        self._carry: dict[int, dict[str, Any]] = {}
        self._last: dict[int, dict[str, Any]] = {}
        self._generation: dict[int, int] = {}

    def update(self, shard: int, generation: int, dump: dict[str, Any]) -> None:
        """Record one scraped worker dump under its generation tag."""
        previous = self._generation.get(shard)
        if previous is not None and previous != generation and shard in self._last:
            carry = self._carry.setdefault(shard, new_dump())
            merge_into(carry, _monotone_slice(self._last[shard]))
            del self._last[shard]
        self._generation[shard] = generation
        self._last[shard] = dump

    def shard_totals(self) -> dict[int, dict[str, Any]]:
        """Per-shard ``carry + last`` dumps (gauges/series from last)."""
        out: dict[int, dict[str, Any]] = {}
        for shard in set(self._carry) | set(self._last):
            total = new_dump()
            if shard in self._carry:
                merge_into(total, self._carry[shard])
            last = self._last.get(shard)
            if last is not None:
                merge_into(total, last)
            out[shard] = total
        return out


# ---------------------------------------------------------------------- #
# Readouts: percentiles, JSON summary, Prometheus text exposition
# ---------------------------------------------------------------------- #
def histogram_percentiles(
    hist: dict[str, Any], quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
) -> dict[str, float]:
    """Interpolated quantiles from a histogram dump cell.

    Linear interpolation inside the owning bucket (Prometheus
    ``histogram_quantile`` semantics); the +inf bucket reports its
    lower bound — an unbounded estimate would be a lie.
    """
    count = hist["count"]
    out = {}
    bounds = list(hist["le"])
    counts = list(hist["counts"])
    for q in quantiles:
        label = f"p{int(q * 100)}"
        if count == 0:
            out[label] = 0.0
            continue
        rank = q * count
        cumulative = 0
        value = bounds[-1] if bounds else 0.0
        for i, cell in enumerate(counts):
            if cumulative + cell >= rank and cell:
                lower = bounds[i - 1] if i > 0 else 0.0
                if i >= len(bounds):  # the +inf bucket
                    value = bounds[-1] if bounds else 0.0
                else:
                    upper = bounds[i]
                    value = lower + (upper - lower) * (rank - cumulative) / cell
                break
            cumulative += cell
        out[label] = value
    return out


def summarize(dump: dict[str, Any]) -> dict[str, Any]:
    """A copy of ``dump`` with p50/p95/p99 added to every histogram."""
    out = {**dump, "histograms": {}}
    for key, hist in dump.get("histograms", {}).items():
        out["histograms"][key] = {**hist, **histogram_percentiles(hist)}
    return out


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(dump: dict[str, Any]) -> str:
    """Render a dump in the Prometheus text exposition format (0.0.4).

    Ring series have no exposition form and are skipped — they live in
    the JSON ``/stats`` surface and the SSE watch channel.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(dump.get("counters", {})):
        name, _ = split_key(key)
        declare(name, "counter")
        lines.append(f"{key} {_format_value(dump['counters'][key])}")
    for key in sorted(dump.get("gauges", {})):
        name, _ = split_key(key)
        declare(name, "gauge")
        lines.append(f"{key} {_format_value(dump['gauges'][key])}")
    for key in sorted(dump.get("histograms", {})):
        hist = dump["histograms"][key]
        name, labels = split_key(key)
        declare(name, "histogram")
        cumulative = 0
        for bound, cell in zip(
            [*hist["le"], "+Inf"], hist["counts"]
        ):
            cumulative += cell
            bucket_labels = {**labels, "le": bound}
            lines.append(f"{_key(name + '_bucket', bucket_labels)} {cumulative}")
        lines.append(f"{_key(name + '_sum', labels)} {_format_value(hist['sum'])}")
        lines.append(f"{_key(name + '_count', labels)} {hist['count']}")
    return "\n".join(lines) + "\n"


#: One exposition sample line: name, optional {labels}, numeric value.
_SAMPLE_RE = _re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"{}]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"{}]*\")*\})?"
    r" (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$"
)


def lint_exposition(text: str) -> list[str]:
    """Check Prometheus text exposition shape; returns problem strings.

    Empty list = clean.  Checks the line grammar, that every sample's
    family carries a prior ``# TYPE`` declaration, and that histogram
    bucket counts are cumulative (non-decreasing in ``le`` order).
    """
    problems: list[str] = []
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    typed: set[str] = set()
    bucket_last: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed.add(parts[2])
            elif parts[0] == "#" and (len(parts) < 2 or parts[1] not in ("HELP", "TYPE")):
                problems.append(f"line {lineno}: malformed comment {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        key = line.rsplit(" ", 1)[0]
        name, labels = split_key(key)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            problems.append(f"line {lineno}: sample {name!r} has no # TYPE")
        if name.endswith("_bucket"):
            series = _key(name, {k: v for k, v in labels.items() if k != "le"})
            value = int(float(line.rsplit(" ", 1)[1]))
            if value < bucket_last.get(series, 0):
                problems.append(
                    f"line {lineno}: bucket counts not cumulative for {series!r}"
                )
            bucket_last[series] = value
    return problems
