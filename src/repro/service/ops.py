"""The service op vocabulary, as data: one registry, consumed everywhere.

Before this module, the op table lived in four places that could drift
silently: :data:`repro.service.wire.OP_CODES` (name -> wire code),
``MonitoringServer._OPS`` (name -> handler), ``MonitoringServer.
INLINE_OPS`` (the event-loop fast-path contract) and the shard
supervisor's ``_PASSTHROUGH_CODES`` (ops spliced as raw frames).  The
stateful fuzz tier (tests/service/stateful/) needs the same metadata a
fifth time — which ops exist, which need a live session, which create
or remove one — so the vocabulary moves here and every consumer derives
its table from :data:`OPS`:

- :data:`OP_CODES` / :data:`OP_NAMES` re-exported by ``wire``,
- :func:`handler_table` builds ``_OPS`` for the server classes (looked
  up as ``_op_<name>`` methods, so a registry entry without a handler —
  or a handler without an entry — fails at import, not in production),
- :func:`inline_ops` / :func:`passthrough_codes` for the fast-path sets,
- the state machine reads per-op legality straight off the specs.

Codes are part of the wire format: never reassign, only append.
This module imports nothing outside the stdlib so that every service
module (including ``wire``) can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "OPS",
    "OP_CODES",
    "OP_NAMES",
    "BY_NAME",
    "OpSpec",
    "handler_table",
    "inline_ops",
    "passthrough_codes",
    "vocabulary",
]


@dataclass(frozen=True, slots=True)
class OpSpec:
    """One op's wire identity plus its legality/state-transition metadata."""

    #: Wire name (the ``op`` field of a v1 line; :data:`OP_NAMES` key on v2).
    name: str
    #: v2 wire code.  Part of the frame format — append-only, never reassign.
    code: int
    #: The :class:`~repro.service.client.AsyncServiceClient` method that
    #: issues this op, or ``None`` when the client has no direct wrapper
    #: (``hello`` is issued by ``connect(wire_protocol=...)``).
    client_method: str | None
    #: Served entirely on the event loop — no executor round trip, no
    #: off-loop codec.  A documented, tested contract, not a dispatch
    #: switch (see tests/service/test_server.py's fast-path test).
    inline: bool = False
    #: Takes a ``session`` field that must name a live session.
    needs_session: bool = False
    #: A successful response mints a fresh session id.
    creates_session: bool = False
    #: Success deletes the session slot (later ops on the id fail).
    removes_session: bool = False
    #: Advances session state (steps consumed, messages charged).
    mutates: bool = False
    #: The sharded v2 front end forwards this op as a raw frame splice,
    #: routing on the fixed header alone (shard.py's pass-through path).
    passthrough: bool = False
    #: Only the sharded supervisor serves it (not in the base table).
    supervisor_only: bool = False


#: The full vocabulary.  Order is cosmetic; codes are the contract.
OPS: tuple[OpSpec, ...] = (
    OpSpec("ping", 1, "ping", inline=True),
    OpSpec("create", 2, "create_session", creates_session=True),
    OpSpec("feed", 3, "feed", needs_session=True, mutates=True, passthrough=True),
    OpSpec("advance", 4, "advance", needs_session=True, mutates=True, passthrough=True),
    OpSpec("query", 5, "query", inline=True, needs_session=True, passthrough=True),
    OpSpec("cost", 6, "cost", inline=True, needs_session=True, passthrough=True),
    OpSpec("snapshot", 7, "snapshot", needs_session=True, passthrough=True),
    OpSpec("restore", 8, "restore", creates_session=True),
    OpSpec(
        "finalize", 9, "finalize",
        needs_session=True, removes_session=True, passthrough=True,
    ),
    OpSpec(
        "close", 10, "close_session",
        inline=True, needs_session=True, removes_session=True,
    ),
    OpSpec("list", 11, "list_sessions", inline=True),
    OpSpec("shutdown", 12, "shutdown", inline=True),
    OpSpec("migrate", 13, "migrate", needs_session=True, supervisor_only=True),
    OpSpec("hello", 14, None, inline=True),
    OpSpec("batch", 15, "set_batching", inline=True),
    OpSpec("metrics", 16, "metrics", inline=True),
    OpSpec("durability", 17, "durability", inline=True),
)

BY_NAME: dict[str, OpSpec] = {spec.name: spec for spec in OPS}

#: name -> v2 wire code (re-exported by :mod:`repro.service.wire`).
OP_CODES: dict[str, int] = {spec.name: spec.code for spec in OPS}
#: v2 wire code -> name.
OP_NAMES: dict[int, str] = {spec.code: spec.name for spec in OPS}

if len(BY_NAME) != len(OPS) or len(OP_NAMES) != len(OPS):
    raise AssertionError("op registry has duplicate names or codes")


def vocabulary(*, supervisor: bool = False) -> frozenset[str]:
    """Op names a server of the given kind answers."""
    return frozenset(
        spec.name for spec in OPS if supervisor or not spec.supervisor_only
    )


def inline_ops() -> frozenset[str]:
    """Ops cheap enough to serve entirely on the event loop."""
    return frozenset(spec.name for spec in OPS if spec.inline)


def passthrough_codes() -> frozenset[int]:
    """Wire codes the sharded v2 front end splices without decoding."""
    return frozenset(spec.code for spec in OPS if spec.passthrough)


def handler_table(cls: type, *, supervisor: bool = False) -> "dict[str, Callable]":
    """Build a server class's ``_OPS`` dispatch table from the registry.

    Each registered op must resolve to an ``_op_<name>`` method on
    ``cls`` (inherited methods count — the shard supervisor picks up
    ``hello``/``shutdown`` from the base server).  A registry entry
    without a handler raises here, at class-definition time, so the
    vocabulary and the implementation cannot drift apart silently.
    """
    table: dict[str, Callable] = {}
    for spec in OPS:
        if spec.supervisor_only and not supervisor:
            continue
        handler = getattr(cls, f"_op_{spec.name}", None)
        if handler is None:
            raise TypeError(
                f"{cls.__name__} lacks a handler for registered op "
                f"{spec.name!r} (expected a _op_{spec.name} method)"
            )
        table[spec.name] = handler
    return table
