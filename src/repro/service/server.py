"""The asyncio monitoring server: many sessions, one process.

:class:`MonitoringServer` hosts concurrent :class:`~repro.service.
session.Session` objects behind the JSON-lines TCP protocol of
:mod:`repro.service.wire`.  Design points:

- **Batched ingestion** — clients feed ``(B, n)`` blocks, so the
  per-message protocol overhead amortizes over B time steps.
- **Per-session locks, shared executor** — monitoring work is
  synchronous CPU-bound Python; each request's heavy part runs in the
  default thread-pool executor so the event loop keeps serving other
  connections, and a per-session :class:`asyncio.Lock` serializes
  mutations of one session (two clients feeding the same session
  interleave at block granularity, never mid-step).
- **Fail-closed error envelope** — any exception inside an op turns
  into an ``ok=false`` response carrying the exception type and
  message; the connection (and every other session) lives on.

Op vocabulary (see docs/ARCHITECTURE.md for the full schema):

``ping``, ``create``, ``feed``, ``advance``, ``query``, ``cost``,
``snapshot``, ``restore``, ``finalize``, ``close``, ``list``,
``shutdown``.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.service import wire
from repro.service.session import Session, session_from_wire

__all__ = ["MonitoringServer", "serve"]


class _SessionSlot:
    """A hosted session plus its ingestion lock."""

    __slots__ = ("session", "lock")

    def __init__(self, session: Session) -> None:
        self.session = session
        self.lock = asyncio.Lock()


class MonitoringServer:
    """Session host + TCP front end.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` asks the OS for a free port; the
        actual one is in :attr:`port` after :meth:`start`.
    max_sessions:
        Upper bound on concurrently hosted sessions; ``create`` beyond
        it fails with an error response (protecting the process from
        unbounded per-session state).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, max_sessions: int = 1024
    ) -> None:
        self.host = host
        self.port = port
        self.max_sessions = int(max_sessions)
        self._slots: dict[str, _SessionSlot] = {}
        self._next_id = 0
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        #: Totals for ``ping`` and the shutdown log line.
        self.stats = {"connections": 0, "requests": 0, "steps_ingested": 0}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=wire.MAX_LINE_BYTES
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._stop.wait()
        self._server.close()
        # Cancel parked connection readers BEFORE wait_closed(): since
        # Python 3.12.1 wait_closed blocks until every handler finishes,
        # so an idle connection would otherwise hang the shutdown.
        await self._drain_connections()
        await self._server.wait_closed()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit after in-flight responses."""
        self._stop.set()

    async def aclose(self) -> None:
        """Stop accepting and drop all sessions (tests / embedding)."""
        self.request_shutdown()
        if self._server is not None:
            self._server.close()
        await self._drain_connections()
        if self._server is not None:
            await self._server.wait_closed()
        self._slots.clear()

    async def _drain_connections(self) -> None:
        """Cancel and reap open connection handlers (idle readers hang forever)."""
        tasks = [t for t in self._connections if t is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats["connections"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(wire.encode_line({
                        "id": None, "ok": False,
                        "error": f"frame exceeds {wire.MAX_LINE_BYTES} bytes",
                        "error_type": "WireError",
                    }))
                    await writer.drain()
                    break
                if not line:
                    break  # peer closed
                response = await self._respond(line)
                # A snapshot response carries a multi-MB b64 state blob;
                # serialize it off the loop like the inbound decode path.
                state = response.get("state")
                if isinstance(state, str) and len(state) > self._INLINE_DECODE_BYTES:
                    encoded = await self._run_sync(wire.encode_line, response)
                else:
                    encoded = wire.encode_line(response)
                writer.write(encoded)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-response; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown cancelled us — exit quietly, closing below
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    #: Frames above this size are JSON-decoded off the event loop.
    _INLINE_DECODE_BYTES = 64 * 1024

    async def _respond(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            if len(line) > self._INLINE_DECODE_BYTES:
                message = await self._run_sync(wire.decode_line, line)
            else:
                message = wire.decode_line(line)
            request_id = message.get("id")
            op = message.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise wire.WireError(
                    f"unknown op {op!r}; valid: {', '.join(self._OPS)}"
                )
            self.stats["requests"] += 1
            payload = await handler(self, message)
            return {"id": request_id, "ok": True, **payload}
        except Exception as exc:  # every failure becomes a protocol error
            # A forwarded error (sharded serving) already carries the
            # worker-side error_type; preserve it so clients see the same
            # type regardless of how many processes served them.
            return {
                "id": request_id,
                "ok": False,
                "error": str(exc) or type(exc).__name__,
                "error_type": getattr(exc, "error_type", "") or type(exc).__name__,
            }

    # ------------------------------------------------------------------ #
    # Session bookkeeping
    # ------------------------------------------------------------------ #
    def _admit(self, session: Session) -> str:
        if len(self._slots) >= self.max_sessions:
            raise RuntimeError(
                f"session limit reached ({self.max_sessions}); finalize or "
                "close sessions before creating more"
            )
        self._next_id += 1
        sid = f"s{self._next_id}"
        self._slots[sid] = _SessionSlot(session)
        return sid

    def _slot(self, message: dict[str, Any]) -> tuple[str, _SessionSlot]:
        sid = message.get("session")
        slot = self._slots.get(sid)
        if slot is None:
            raise KeyError(f"no such session {sid!r}")
        return sid, slot

    @staticmethod
    async def _run_sync(fn, *args):
        """Run CPU-bound session work off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(None, fn, *args)

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    async def _op_ping(self, message: dict[str, Any]) -> dict[str, Any]:
        return {
            "pong": True,
            "version": wire.PROTOCOL_VERSION,
            "sessions": len(self._slots),
            "stats": dict(self.stats),
        }

    async def _op_create(self, message: dict[str, Any]) -> dict[str, Any]:
        spec = message.get("spec")
        if not isinstance(spec, dict):
            raise wire.WireError("create needs a 'spec' object")
        session = await self._run_sync(session_from_wire, spec)
        sid = self._admit(session)
        return {"session": sid, "step": session.step}

    async def _op_feed(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        payload = message.get("values")
        session = slot.session

        def ingest() -> tuple[int, int, int]:
            # Decode in the executor too — a near-cap b64 batch is tens of
            # MB and would stall every other connection on the event loop.
            block = wire.decode_values(payload)
            step = session.feed(block)
            return block.shape[0], step, session.messages

        async with slot.lock:
            rows, step, messages = await self._run_sync(ingest)
        self.stats["steps_ingested"] += rows
        return {"session": sid, "step": step, "messages": messages}

    async def _op_advance(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        steps = message.get("steps")
        if steps is not None and not isinstance(steps, int):
            raise wire.WireError(f"advance steps must be an int, got {steps!r}")
        session = slot.session
        async with slot.lock:
            before = session.step
            step = await self._run_sync(session.advance, steps)
            messages, done = session.messages, session.done
        self.stats["steps_ingested"] += step - before
        return {"session": sid, "step": step, "messages": messages, "done": done}

    async def _op_query(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        async with slot.lock:  # a concurrent feed mutates mid-status otherwise
            return {"session": sid, **slot.session.status()}

    async def _op_cost(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        async with slot.lock:
            snap = slot.session.cost()
            by_scope = slot.session.bill()
        return {
            "session": sid,
            "messages": snap.messages,
            "node_to_server": snap.node_to_server,
            "server_to_node": snap.server_to_node,
            "broadcasts": snap.broadcasts,
            "rounds": snap.rounds,
            "broadcast_cost": snap.broadcast_cost,
            "by_scope": by_scope,
        }

    async def _op_snapshot(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        session = slot.session

        def checkpoint() -> tuple[int, str]:
            return session.step, wire.encode_blob(session.snapshot())

        async with slot.lock:  # step captured with the blob, not after
            step, state = await self._run_sync(checkpoint)
        return {"session": sid, "step": step, "state": state}

    async def _op_restore(self, message: dict[str, Any]) -> dict[str, Any]:
        state = message.get("state")
        if not isinstance(state, str):
            raise wire.WireError("restore needs a base64 'state' string")

        def rebuild() -> Session:
            return Session.restore(wire.decode_blob(state))

        session = await self._run_sync(rebuild)
        sid = self._admit(session)
        return {"session": sid, "step": session.step}

    async def _op_finalize(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        async with slot.lock:
            result = await self._run_sync(slot.session.finalize)
        del self._slots[sid]
        return {
            "session": sid,
            "result": {
                "algorithm": result.algorithm_name,
                "num_steps": result.num_steps,
                "n": result.n,
                "k": result.k,
                "messages": result.messages,
                "output_changes": result.output_changes,
                "max_rounds_per_step": result.ledger.max_rounds_per_step,
                "by_scope": result.ledger.by_scope(),
            },
        }

    async def _op_close(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, _slot = self._slot(message)
        del self._slots[sid]
        return {"session": sid, "closed": True}

    async def _op_list(self, message: dict[str, Any]) -> dict[str, Any]:
        sessions = []
        for sid, slot in list(self._slots.items()):
            async with slot.lock:
                sessions.append({"session": sid, **slot.session.status()})
        return {"sessions": sessions}

    async def _op_shutdown(self, message: dict[str, Any]) -> dict[str, Any]:
        self.request_shutdown()
        return {"stopping": True, "stats": dict(self.stats)}

    _OPS = {
        "ping": _op_ping,
        "create": _op_create,
        "feed": _op_feed,
        "advance": _op_advance,
        "query": _op_query,
        "cost": _op_cost,
        "snapshot": _op_snapshot,
        "restore": _op_restore,
        "finalize": _op_finalize,
        "close": _op_close,
        "list": _op_list,
        "shutdown": _op_shutdown,
    }


async def serve(
    host: str = "127.0.0.1", port: int = 0, *, max_sessions: int = 1024,
    shards: int = 0, announce=None,
) -> None:
    """Start a server and run it until a ``shutdown`` op.

    ``shards=0`` (the default) hosts every session in this process;
    ``shards=N`` starts the sharded supervisor of
    :mod:`repro.service.shard` with N worker processes — same wire
    protocol, served throughput scales with cores.

    ``announce`` receives the single ``serving on host:port`` line once
    the socket is bound — the CLI prints it (callers like
    ``loadgen --spawn`` parse it to learn an OS-assigned port); tests
    pass a capture function or ``lambda _: None``.  With shards, the
    line is only printed once every worker process is up.
    """
    if shards:
        from repro.service.shard import ShardedMonitoringServer

        server: MonitoringServer = ShardedMonitoringServer(
            host, port, shards=shards, max_sessions=max_sessions
        )
    else:
        server = MonitoringServer(host, port, max_sessions=max_sessions)
    bound_host, bound_port = await server.start()
    line = f"serving on {bound_host}:{bound_port}"
    if announce is None:
        print(line, flush=True)
    else:
        announce(line)
    await server.serve_until_shutdown()
