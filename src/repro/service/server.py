"""The asyncio monitoring server: many sessions, one process.

:class:`MonitoringServer` hosts concurrent :class:`~repro.service.
session.Session` objects behind the TCP protocols of
:mod:`repro.service.wire` — every connection starts as JSON lines (v1)
and may upgrade to binary frames (v2) through the ``hello`` op.
Design points:

- **Batched ingestion** — clients feed ``(B, n)`` blocks, so the
  per-message protocol overhead amortizes over B time steps.
- **Per-session locks, shared executor** — monitoring work is
  synchronous CPU-bound Python; each request's heavy part runs in the
  default thread-pool executor so the event loop keeps serving other
  connections, and a per-session :class:`asyncio.Lock` serializes
  mutations of one session (two clients feeding the same session
  interleave at block granularity, never mid-step).
- **Small-op fast path** — cheap ops (:data:`MonitoringServer.
  INLINE_OPS`) are served entirely on the event loop: no executor
  round trip, no off-loop codec, just a dict and a write.
- **Fail-closed error envelope** — any exception inside an op turns
  into an ``ok=false`` response carrying the exception type and
  message; the connection (and every other session) lives on.  A v2
  *framing* violation (bad magic/version/length) is the one fatal
  case: the stream cannot be resynchronized, so the server answers
  once and closes that connection.

- **Cross-session batch ticks** — batchable feeds that arrive from
  *different* connections while a tick is in flight coalesce on a
  per-cohort gate and advance together through one vectorized
  :class:`~repro.service.session.SessionBatch` pass (bit-identical per
  session to the serial path; toggled at runtime by the ``batch`` op).
  The per-session locks stay the serialization boundary: a feeder
  holds its session's lock for the whole tick it participates in.

- **Optional durability** — with a WAL directory configured, every
  acknowledged state-changing op is appended to the write-ahead log of
  :mod:`repro.service.wal` *before* its ack leaves the process, and
  periodic checkpoints truncate the log; a restarted process replays
  checkpoint + tail in ``__init__`` and resumes with bit-identical
  session state (the recovery replay law).

Op vocabulary (see docs/WIRE.md for the code table and
docs/ARCHITECTURE.md for the full schema):

``hello``, ``ping``, ``create``, ``feed``, ``advance``, ``query``,
``cost``, ``snapshot``, ``restore``, ``finalize``, ``close``,
``list``, ``shutdown``, ``batch``, ``metrics``, ``durability``.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.service import metrics as metricslib
from repro.service import ops, wire
from repro.service import wal as wallib
from repro.service.session import Session, SessionBatch, session_from_wire

__all__ = ["MonitoringServer", "serve"]


class _SessionSlot:
    """A hosted session plus its ingestion lock."""

    __slots__ = ("session", "lock")

    def __init__(self, session: Session) -> None:
        self.session = session
        self.lock = asyncio.Lock()


class _CohortGate:
    """One cohort's pending batched feeds + the drain task serving them."""

    __slots__ = ("batch", "entries", "task")

    def __init__(self, batch: SessionBatch) -> None:
        self.batch = batch
        self.entries: list[tuple[Session, np.ndarray, asyncio.Future]] = []
        self.task: asyncio.Task | None = None


class MonitoringServer:
    """Session host + TCP front end.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` asks the OS for a free port; the
        actual one is in :attr:`port` after :meth:`start`.
    max_sessions:
        Upper bound on concurrently hosted sessions; ``create`` beyond
        it fails with an error response (protecting the process from
        unbounded per-session state).
    accept_wire:
        Highest framing version ``hello`` may grant (default
        :data:`wire.WIRE_V2`).  ``accept_wire=1`` pins the server to
        JSON lines: upgrade requests are answered with ``wire: 1`` and
        well-behaved clients fall back.
    wal_dir:
        Directory for the write-ahead log (``None`` = no durability).
        Construction *recovers* first: the newest checkpoint manifest is
        restored and the log tail replayed, so a respawned process picks
        up exactly where the killed one was acknowledged to be.
    wal_fsync:
        Also ``fsync`` every append and manifest write — extends the
        guarantee from process death to machine crash, at a per-op
        latency cost (tracked by ``repro_wal_fsync_seconds``).
    wal_checkpoint_bytes:
        Rotate + checkpoint once this many bytes accumulate in the live
        segment (bounds disk footprint and replay time).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: int = 1024,
        accept_wire: int = wire.WIRE_V2,
        wal_dir: str | Path | None = None,
        wal_fsync: bool = False,
        wal_checkpoint_bytes: int = wallib.DEFAULT_CHECKPOINT_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.max_sessions = int(max_sessions)
        if accept_wire not in (wire.WIRE_V1, wire.WIRE_V2):
            raise ValueError(f"accept_wire must be 1 or 2, got {accept_wire}")
        self.accept_wire = accept_wire
        self._slots: dict[str, _SessionSlot] = {}
        self._next_id = 0
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        #: Feed coalescing across connections (runtime-toggled by the
        #: ``batch`` op).  Only batchable sessions with width-validated
        #: blocks ever take the gate; everything else stays serial.
        self.batching = True
        self._cohorts: dict[tuple, _CohortGate] = {}
        #: The ops-plane registry (admin endpoint, ``metrics`` op).  Its
        #: ``enabled`` flag gates only the optional telemetry — per-op
        #: latency histograms, ring series — never the core counters.
        self.metrics = metricslib.MetricsRegistry()
        self._c_connections = self.metrics.counter("repro_connections_total")
        self._c_requests = self.metrics.counter("repro_requests_total")
        self._c_steps = self.metrics.counter("repro_steps_ingested_total")
        self._c_batched_ticks = self.metrics.counter("repro_batched_ticks_total")
        self._c_batched_steps = self.metrics.counter("repro_batched_steps_total")
        self._c_escalated = self.metrics.counter("repro_escalated_steps_total")
        self._c_quiet = self.metrics.counter("repro_quiet_steps_total")
        #: Totals for ``ping`` and the shutdown log line — a live view
        #: over the registry counters, keyed by the legacy names so the
        #: reply shapes (and the shard supervisor's in-place mutations)
        #: are unchanged.
        self.stats = metricslib.StatsView({
            "connections": self._c_connections,
            "requests": self._c_requests,
            "steps_ingested": self._c_steps,
            "batched_ticks": self._c_batched_ticks,
            "batched_steps": self._c_batched_steps,
        })
        #: Lazily built per-op ``(counter, histogram)`` pairs (dispatch).
        self._per_op: dict[str, tuple[metricslib.Counter, metricslib.Histogram]] = {}
        self._g_inflight = self.metrics.gauge("repro_executor_inflight")
        self.metrics.register_gauge_fn("repro_sessions", lambda: len(self._slots))
        self.metrics.register_gauge_fn(
            "repro_cohort_backlog",
            lambda: sum(len(g.entries) for g in self._cohorts.values()),
        )
        self._ingest_series = self.metrics.series("repro_steps_ingested_series")
        #: Durability plane.  ``durability`` (runtime-toggled by the op
        #: of the same name) gates *appending*; the WAL object itself
        #: exists iff a directory was configured.
        self._wal: wallib.WriteAheadLog | None = None
        self.durability = False
        self._checkpoint_task: asyncio.Task | None = None
        if wal_dir is not None:
            self._c_recovered = self.metrics.counter(
                "repro_wal_recovered_sessions_total"
            )
            self._c_replayed = self.metrics.counter(
                "repro_wal_replayed_records_total"
            )
            self._wal = wallib.WriteAheadLog(
                wal_dir,
                fsync=wal_fsync,
                checkpoint_bytes=wal_checkpoint_bytes,
                metrics=self.metrics,
            )
            self.metrics.register_gauge_fn(
                "repro_wal_segment_bytes",
                lambda: self._wal.bytes_since_checkpoint if self._wal else 0,
            )
            self.durability = True
            self._recover_from_wal()

    # ------------------------------------------------------------------ #
    # Durability: recovery, logging, checkpointing
    # ------------------------------------------------------------------ #
    def _recover_from_wal(self) -> None:
        """Restore checkpoint + replay the log tail (runs in __init__,
        before any connection can be accepted)."""
        assert self._wal is not None
        state = self._wal.recover()
        for sid, blob in state.sessions.items():
            self._slots[sid] = _SessionSlot(Session.restore(blob))
            self._bump_next_id(sid)
        self._next_id = max(self._next_id, state.next_id)
        for record in state.records:
            self._replay_record(record)
        if self._slots or state.records:
            self._c_recovered.inc(len(self._slots))
            self._c_replayed.inc(len(state.records))

    def _bump_next_id(self, sid: str) -> None:
        if sid.startswith("s") and sid[1:].isdigit():
            self._next_id = max(self._next_id, int(sid[1:]))

    def _replay_record(self, record: dict[str, Any]) -> None:
        """Apply one recovered WAL record, idempotently.

        Feed/advance records carry the session's *post-op* step; a
        record at or below the restored step was already inside the
        checkpoint snapshot (the rotate-then-snapshot window) and is
        skipped.  Create/restore records whose sid is already live are
        likewise snapshot-covered.
        """
        op = record.get("op")
        sid = record.get("session")
        if op in ("create", "restore"):
            if sid in self._slots:
                return
            if op == "create":
                session = session_from_wire(dict(record["spec"]))
            else:
                session = Session.restore(wire.decode_blob(record["state"]))
            self._slots[sid] = _SessionSlot(session)
            self._bump_next_id(sid)
            return
        if op in ("finalize", "close"):
            slot = self._slots.pop(sid, None)
            if slot is not None:
                self._cohort_leave(slot.session)
            return
        slot = self._slots.get(sid)
        if slot is None:
            return
        target = record.get("step")
        if not isinstance(target, int) or slot.session.step >= target:
            return
        if op == "feed":
            slot.session.feed(wire.decode_values(record["values"]))
        elif op == "advance":
            slot.session.advance(record.get("steps"))

    def _wal_append(self, message: dict[str, Any]) -> None:
        """Durably record one acknowledged op (called before the ack is
        written, inside the slot lock for session-addressed ops).  An
        append failure (e.g. full disk) propagates and turns the op into
        an error response — the ack must never outrun the log."""
        if self._wal is None or not self.durability:
            return
        self._wal.append(message)
        if self._wal.should_checkpoint() and (
            self._checkpoint_task is None or self._checkpoint_task.done()
        ):
            self._checkpoint_task = asyncio.create_task(self._wal_checkpoint())

    async def _wal_checkpoint(self) -> None:
        """One checkpoint cycle: rotate, snapshot every session under
        its lock, publish the manifest, prune.  Sessions unchanged since
        the previous manifest reuse their blob files (the delta scheme).
        Serving continues throughout — appends land in the rotated
        (retained) segment, which replay covers."""
        wal = self._wal
        if wal is None:
            return
        try:
            segment = wal.begin_checkpoint()
            previous = wal.manifest_steps()
            entries: dict[str, tuple[int, bytes | None]] = {}
            for sid, slot in list(self._slots.items()):
                async with slot.lock:
                    if self._slots.get(sid) is not slot:
                        continue  # finalized/closed while we waited
                    step = slot.session.step
                    if previous.get(sid) == step:
                        entries[sid] = (step, None)
                    else:
                        entries[sid] = (step, slot.session.snapshot())
            wal.commit_checkpoint(segment, entries, self._next_id)
        except Exception:
            # The log keeps growing but stays correct; the next append
            # retries.  Surfaced as a counter, not a crash.
            self.metrics.counter("repro_wal_checkpoint_failures_total").inc()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=wire.MAX_LINE_BYTES
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._stop.wait()
        self._server.close()
        # Cancel parked connection readers BEFORE wait_closed(): since
        # Python 3.12.1 wait_closed blocks until every handler finishes,
        # so an idle connection would otherwise hang the shutdown.
        await self._drain_connections()
        await self._server.wait_closed()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit after in-flight responses."""
        self._stop.set()

    async def aclose(self) -> None:
        """Stop accepting and drop all sessions (tests / embedding)."""
        self.request_shutdown()
        if self._server is not None:
            self._server.close()
        await self._drain_connections()
        if self._server is not None:
            await self._server.wait_closed()
        self._slots.clear()
        if self._wal is not None:
            self._wal.close()

    async def _drain_connections(self) -> None:
        """Cancel and reap open connection handlers (idle readers hang forever)."""
        tasks = [t for t in self._connections if t is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._c_connections.inc()
        wire.set_nodelay(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            upgraded = await self._serve_v1(reader, writer)
            if upgraded:
                await self._serve_v2(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished mid-response; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown cancelled us — exit quietly, closing below
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _serve_v1(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """The JSON-lines loop every connection starts in.

        Returns ``True`` when a granted ``hello`` upgrade hands the
        (still open) connection to the v2 loop.
        """
        while not self._stop.is_set():
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(wire.encode_line({
                    "id": None, "ok": False,
                    "error": f"frame exceeds {wire.MAX_LINE_BYTES} bytes",
                    "error_type": "WireError",
                }))
                await writer.drain()
                break
            if not line:
                break  # peer closed
            response = await self._respond(line)
            # A snapshot response carries a multi-MB state blob; base64
            # it and serialize off the loop like the inbound decode path.
            state = response.get("state")
            if (
                isinstance(state, (str, bytes))
                and len(state) > self._INLINE_DECODE_BYTES
            ):
                encoded = await self._run_sync(wire.encode_v1_message, response)
            else:
                encoded = wire.encode_v1_message(response)
            writer.write(encoded)
            await writer.drain()
            # Only _op_hello emits a "wire" field: a granted v2 upgrade
            # switches this connection to binary frames from here on.
            if response.get("ok") and response.get("wire") == wire.WIRE_V2:
                return True
        return False

    async def _serve_v2(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The binary-frame loop an upgraded connection runs in."""
        while not self._stop.is_set():
            try:
                frame = await wire.read_frame(reader)
            except wire.WireError as exc:
                # Framing is broken — answer once, then close: there is
                # no way to find the next frame boundary, and leaving
                # the connection open would hang the peer instead.
                writer.write(wire.encode_error_frame(0, exc))
                await writer.drain()
                break
            except asyncio.IncompleteReadError:
                break  # peer died mid-frame
            if frame is None:
                break  # peer closed
            response = await self._respond_v2(frame)
            if isinstance(response, (bytes, bytearray, memoryview)):
                writer.write(response)
            else:
                # A spliced pass-through reply arrives as raw segments
                # (header, meta, payload) — write them through without
                # concatenating a fresh payload-sized buffer.
                for part in response:
                    if part:
                        writer.write(part)
            await writer.drain()

    #: Frames above this size are JSON-decoded off the event loop.
    _INLINE_DECODE_BYTES = 64 * 1024

    #: v2 payloads above this size are content-decoded off the event
    #: loop (the decode itself is a zero-copy ``frombuffer``; the cost
    #: is the one vectorized finiteness pass over the payload).
    _INLINE_PAYLOAD_BYTES = 4 * 1024 * 1024

    #: Ops cheap enough to serve entirely on the event loop: no
    #: executor round trip, no off-loop codec.  Everything else (feed /
    #: advance / snapshot / restore / create / finalize) does CPU-bound
    #: session work and goes through :meth:`_run_sync`.  This set is a
    #: *documented, tested contract*, not a dispatch switch: nothing
    #: branches on it at runtime — the handlers themselves simply never
    #: touch the executor, and tests/service/test_server.py's fast-path
    #: test fails if one of the listed ops starts doing so.  Derived
    #: from the shared op registry so server and fuzzer cannot drift.
    INLINE_OPS = ops.inline_ops()

    async def _respond(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            if len(line) > self._INLINE_DECODE_BYTES:
                message = await self._run_sync(wire.decode_line, line)
            else:
                message = wire.decode_line(line)
            request_id = message.get("id")
            payload = await self._dispatch(message)
            return {"id": request_id, "ok": True, **payload}
        except Exception as exc:  # every failure becomes a protocol error
            # A forwarded error (sharded serving) already carries the
            # worker-side error_type; preserve it so clients see the same
            # type regardless of how many processes served them.
            return {
                "id": request_id,
                "ok": False,
                "error": str(exc) or type(exc).__name__,
                "error_type": getattr(exc, "error_type", "") or type(exc).__name__,
            }

    async def _respond_v2(
        self, frame: tuple[wire.FrameHeader, bytes, bytes]
    ) -> bytes:
        """One decoded-and-dispatched v2 frame; always returns a frame."""
        header, meta, payload = frame
        request_id = header.request_id
        try:
            if header.payload_len > self._INLINE_PAYLOAD_BYTES:
                message = await self._run_sync(wire.decode_frame, header, meta, payload)
            else:
                message = wire.decode_frame(header, meta, payload)
            result = await self._dispatch(message)
            response = {"id": request_id, "ok": True, **result}
            state = response.get("state")
            if (
                isinstance(state, (bytes, bytearray))
                and len(state) > self._INLINE_PAYLOAD_BYTES
            ):
                return await self._run_sync(_encode_response_frame, response)
            return wire.encode_frame(response, response=True)
        except Exception as exc:
            return wire.encode_error_frame(request_id, exc)

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        """Route one decoded message to its op handler (either protocol)."""
        op = message.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            raise wire.WireError(
                f"unknown op {op!r}; valid: {', '.join(self._OPS)}"
            )
        self._c_requests.inc()
        if not self.metrics.enabled:
            return await handler(self, message)
        pair = self._per_op.get(op)
        if pair is None:
            pair = self._per_op[op] = (
                self.metrics.counter("repro_op_requests_total", op=op),
                self.metrics.histogram("repro_op_latency_seconds", op=op),
            )
        pair[0].inc()
        start = time.perf_counter()
        try:
            return await handler(self, message)
        finally:
            pair[1].observe(time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Session bookkeeping
    # ------------------------------------------------------------------ #
    def _admit(self, session: Session) -> str:
        if len(self._slots) >= self.max_sessions:
            raise RuntimeError(
                f"session limit reached ({self.max_sessions}); finalize or "
                "close sessions before creating more"
            )
        self._next_id += 1
        sid = f"s{self._next_id}"
        self._slots[sid] = _SessionSlot(session)
        return sid

    def _slot(self, message: dict[str, Any]) -> tuple[str, _SessionSlot]:
        sid = message.get("session")
        slot = self._slots.get(sid)
        if slot is None:
            raise KeyError(f"no such session {sid!r}")
        return sid, slot

    async def _run_sync(self, fn, *args):
        """Run CPU-bound session work off the event loop."""
        self._g_inflight.inc()
        try:
            return await asyncio.get_running_loop().run_in_executor(None, fn, *args)
        finally:
            self._g_inflight.dec()

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    async def _op_hello(self, message: dict[str, Any]) -> dict[str, Any]:
        """Framing negotiation: grant the best wire version both sides
        speak.  Granting 2 switches this connection to binary frames
        right after the response line (see :meth:`_serve_v1`)."""
        requested = message.get("wire", wire.WIRE_V1)
        if not isinstance(requested, int) or requested < 1:
            raise wire.WireError(f"hello wire must be a positive int, got {requested!r}")
        return {
            "wire": min(requested, self.accept_wire),
            "version": wire.PROTOCOL_VERSION,
        }

    async def _op_ping(self, message: dict[str, Any]) -> dict[str, Any]:
        return {
            "pong": True,
            "version": wire.PROTOCOL_VERSION,
            "accept_wire": self.accept_wire,
            "sessions": len(self._slots),
            "stats": dict(self.stats),
        }

    async def _op_create(self, message: dict[str, Any]) -> dict[str, Any]:
        spec = message.get("spec")
        if not isinstance(spec, dict):
            raise wire.WireError("create needs a 'spec' object")
        session = await self._run_sync(session_from_wire, spec)
        sid = self._admit(session)
        self._wal_append({"op": "create", "session": sid, "spec": spec})
        return {"session": sid, "step": session.step}

    async def _op_feed(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        payload = message.get("values")
        session = slot.session
        async with slot.lock:
            block = await self._decoded_block(payload)
            # The wire already validated shape and finiteness; the one
            # check it cannot do — block width vs this session's n — is
            # hoisted here so the serial and the batched path share a
            # single prevalidation verdict (the engine's revalidation is
            # skipped exactly when it passed).
            prevalidated = block.shape[1] == session.config.n
            if self.batching and prevalidated and session.batchable:
                step, messages = await self._feed_batched(session, block)
            else:
                step, messages = await self._run_sync(
                    self._feed_serial, session, block, prevalidated
                )
            # Logged inside the lock so the post-op step pairs with this
            # exact block — the replay idempotence key.
            self._wal_append(
                {"op": "feed", "session": sid, "values": block, "step": step}
            )
        self._c_steps.inc(block.shape[0])
        if self.metrics.enabled:
            self._session_telemetry(sid, session, step, messages)
        return {"session": sid, "step": step, "messages": messages}

    def _session_telemetry(
        self, sid: str, session: Session, step: int, messages: int
    ) -> None:
        """Ring-series points after an ingest: the dashboard's food.

        Cumulative message cost and F(t) output-change count per
        session (the paper's cost trajectory, live), plus the fleet
        steps-ingested curve.  Read outside the slot lock — telemetry
        must never extend the serial section.
        """
        self.metrics.series("repro_session_cost", session=sid).append(step, messages)
        self.metrics.series("repro_session_fchanges", session=sid).append(
            step, session.engine.output_changes_so_far()
        )
        self._ingest_series.append(time.monotonic(), self._c_steps.value)

    async def _decoded_block(self, payload: Any) -> np.ndarray:
        """Decode a feed payload to a ``(B, n)`` block, off-loop when big.

        A v2 frame arrives pre-decoded (zero-copy pass-through); a
        near-cap v1 b64 batch is tens of MB and would stall every other
        connection if decoded on the event loop.
        """
        if isinstance(payload, np.ndarray):
            return wire.decode_values(payload)
        if isinstance(payload, dict):
            size = len(payload.get("b64") or ())
        elif isinstance(payload, list) and payload and isinstance(payload[0], (list, tuple)):
            size = len(payload) * len(payload[0]) * 8
        else:
            size = 0
        if size > self._INLINE_DECODE_BYTES:
            return await self._run_sync(wire.decode_values, payload)
        return wire.decode_values(payload)

    @staticmethod
    def _feed_serial(session: Session, block: np.ndarray, prevalidated: bool) -> tuple[int, int]:
        step = session.feed(block, prevalidated=prevalidated)
        return step, session.messages

    async def _feed_batched(self, session: Session, block: np.ndarray) -> tuple[int, int]:
        """Queue a width-validated feed on its cohort gate; await the tick.

        The caller holds the session's slot lock for the whole wait, so
        each session has at most one entry in flight — the invariant that
        lets the drain task run tick work without taking locks itself.
        """
        key = session.cohort_key
        gate = self._cohorts.get(key)
        if gate is None:
            gate = self._cohorts[key] = _CohortGate(SessionBatch(key))
        gate.batch.join(session)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        gate.entries.append((session, block, future))
        if gate.task is None or gate.task.done():
            gate.task = asyncio.create_task(self._drain_cohort(gate))
        return await future

    async def _drain_cohort(self, gate: _CohortGate) -> None:
        """Serve one cohort's queue until it runs dry.

        Feeds that arrive while a tick is in the executor coalesce into
        the next tick — natural micro-batching, no timers.  A
        single-entry tick takes the plain serial path (the lone-tenant
        case pays no binding overhead).  Per-entry failures resolve that
        entry's future with the same exception the serial path would
        have raised; a crash of the drain itself fails every parked
        future rather than stranding its feeders.
        """
        while gate.entries:
            entries, gate.entries = gate.entries, []
            try:
                if len(entries) == 1:
                    session, block, future = entries[0]
                    try:
                        result = await self._run_sync(self._feed_serial, session, block, True)
                    except Exception as exc:
                        if not future.done():  # a dropped feeder cancels its future
                            future.set_exception(exc)
                    else:
                        if not future.done():
                            future.set_result(result)
                    continue
                batch = gate.batch
                before_ticks, before_steps = batch.ticks, batch.batched_steps
                before_esc, before_quiet = batch.escalated_steps, batch.quiet_steps
                results = await self._run_sync(
                    batch.feed_batch, [(session, block) for session, block, _ in entries]
                )
                self._c_batched_ticks.inc(batch.ticks - before_ticks)
                self._c_batched_steps.inc(batch.batched_steps - before_steps)
                self._c_escalated.inc(batch.escalated_steps - before_esc)
                self._c_quiet.inc(batch.quiet_steps - before_quiet)
                for (_session, _block, future), result in zip(entries, results):
                    if future.done():  # a dropped feeder cancels its future
                        continue
                    if isinstance(result, Exception):
                        future.set_exception(result)
                    else:
                        future.set_result(result)
            except BaseException as exc:
                for _session, _block, future in entries:
                    if not future.done():
                        if isinstance(exc, asyncio.CancelledError):
                            future.cancel()
                        else:
                            future.set_exception(exc)
                raise

    def _cohort_leave(self, session: Session) -> None:
        """Withdraw a dead session from its cohort's membership roster."""
        gate = self._cohorts.get(session.cohort_key)
        if gate is not None:
            gate.batch.leave(session)

    async def _op_advance(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        steps = message.get("steps")
        if steps is not None and not isinstance(steps, int):
            raise wire.WireError(f"advance steps must be an int, got {steps!r}")
        session = slot.session
        async with slot.lock:
            before = session.step
            step = await self._run_sync(session.advance, steps)
            messages, done = session.messages, session.done
            self._wal_append(
                {"op": "advance", "session": sid, "steps": steps, "step": step}
            )
        self._c_steps.inc(step - before)
        if self.metrics.enabled:
            self._session_telemetry(sid, session, step, messages)
        return {"session": sid, "step": step, "messages": messages, "done": done}

    async def _op_query(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        async with slot.lock:  # a concurrent feed mutates mid-status otherwise
            return {"session": sid, **slot.session.status()}

    async def _op_cost(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        async with slot.lock:
            snap = slot.session.cost()
            by_scope = slot.session.bill()
        return {
            "session": sid,
            "messages": snap.messages,
            "node_to_server": snap.node_to_server,
            "server_to_node": snap.server_to_node,
            "broadcasts": snap.broadcasts,
            "rounds": snap.rounds,
            "broadcast_cost": snap.broadcast_cost,
            "by_scope": by_scope,
        }

    async def _op_snapshot(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        session = slot.session

        def checkpoint() -> tuple[int, bytes]:
            # Raw bytes: a v2 response carries them as the frame payload
            # unchanged; the v1 edge base64-encodes on serialization.
            return session.step, session.snapshot()

        async with slot.lock:  # step captured with the blob, not after
            step, state = await self._run_sync(checkpoint)
        return {"session": sid, "step": step, "state": state}

    async def _op_restore(self, message: dict[str, Any]) -> dict[str, Any]:
        state = message.get("state")
        if not isinstance(state, (str, bytes, bytearray)):
            raise wire.WireError(
                "restore needs a 'state' checkpoint (base64 text or raw blob frame)"
            )

        def rebuild() -> Session:
            return Session.restore(wire.decode_blob(state))

        session = await self._run_sync(rebuild)
        sid = self._admit(session)
        self._wal_append({"op": "restore", "session": sid, "state": state})
        return {"session": sid, "step": session.step}

    async def _op_finalize(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        async with slot.lock:
            result = await self._run_sync(slot.session.finalize)
        del self._slots[sid]
        self._cohort_leave(slot.session)
        self._drop_session_series(sid)
        self._wal_append({"op": "finalize", "session": sid})
        return {
            "session": sid,
            "result": {
                "algorithm": result.algorithm_name,
                "num_steps": result.num_steps,
                "n": result.n,
                "k": result.k,
                "messages": result.messages,
                "output_changes": result.output_changes,
                "max_rounds_per_step": result.ledger.max_rounds_per_step,
                "by_scope": result.ledger.by_scope(),
            },
        }

    async def _op_close(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, slot = self._slot(message)
        del self._slots[sid]
        self._cohort_leave(slot.session)
        self._drop_session_series(sid)
        self._wal_append({"op": "close", "session": sid})
        return {"session": sid, "closed": True}

    def _drop_session_series(self, sid: str) -> None:
        """Session gone — its ring series must not leak registry slots."""
        self.metrics.drop_series("repro_session_cost", session=sid)
        self.metrics.drop_series("repro_session_fchanges", session=sid)

    async def _op_batch(self, message: dict[str, Any]) -> dict[str, Any]:
        """Toggle cross-session feed coalescing at runtime."""
        enabled = message.get("enabled", True)
        if not isinstance(enabled, bool):
            raise wire.WireError(f"batch enabled must be a bool, got {enabled!r}")
        self.batching = enabled
        return {"batching": enabled}

    async def _op_metrics(self, message: dict[str, Any]) -> dict[str, Any]:
        """Read (and optionally toggle) the ops-plane telemetry.

        With no ``enabled`` field this is a pure scrape.  The toggle is
        observably transparent — instruments never touch session state —
        which the stateful fuzz tier checks differentially (the same
        pattern as the ``batch`` toggle).
        """
        enabled = message.get("enabled")
        if enabled is not None and not isinstance(enabled, bool):
            raise wire.WireError(f"metrics enabled must be a bool, got {enabled!r}")
        if enabled is not None:
            self.metrics.enabled = enabled
        return {"enabled": self.metrics.enabled, "metrics": await self.metrics_fleet()}

    async def _op_durability(self, message: dict[str, Any]) -> dict[str, Any]:
        """Read (and optionally toggle) WAL appending at runtime.

        With no ``enabled`` field this is a pure read.  Enabling
        requires a configured WAL directory; *re*-enabling forces an
        immediate full checkpoint so the log is consistent from this
        op onward (feeds served while durability was off are not in the
        log — only the fresh snapshot covers them).
        """
        enabled = message.get("enabled")
        if enabled is not None and not isinstance(enabled, bool):
            raise wire.WireError(
                f"durability enabled must be a bool, got {enabled!r}"
            )
        if enabled is not None:
            if self._wal is None:
                if enabled:
                    raise RuntimeError(
                        "durability needs a WAL directory (serve --wal-dir)"
                    )
            else:
                was, self.durability = self.durability, enabled
                if enabled and not was:
                    await self._wal_checkpoint()
        return {"enabled": self.durability, "wal": self._wal is not None}

    def metrics_dump(self) -> dict[str, Any]:
        """This process's registry snapshot (JSON-ready)."""
        return self.metrics.dump()

    async def metrics_fleet(self) -> dict[str, Any]:
        """The fleet-wide dump — just the local one here; the shard
        supervisor overrides this to merge worker registries."""
        return self.metrics_dump()

    async def _op_list(self, message: dict[str, Any]) -> dict[str, Any]:
        sessions = []
        for sid, slot in list(self._slots.items()):
            async with slot.lock:
                sessions.append({"session": sid, **slot.session.status()})
        return {"sessions": sessions}

    async def _op_shutdown(self, message: dict[str, Any]) -> dict[str, Any]:
        self.request_shutdown()
        return {"stopping": True, "stats": dict(self.stats)}

    #: name -> handler, assigned below from the shared op registry —
    #: a registered op without an ``_op_<name>`` method (or vice versa:
    #: see tests/service/test_ops_registry.py) fails at import time.
    _OPS: dict[str, Any]


MonitoringServer._OPS = ops.handler_table(MonitoringServer)


def _encode_response_frame(response: dict[str, Any]) -> bytes:
    """Executor-friendly positional wrapper for big-payload responses."""
    return wire.encode_frame(response, response=True)


async def serve(
    host: str = "127.0.0.1", port: int = 0, *, max_sessions: int = 1024,
    shards: int = 0, accept_wire: int = wire.WIRE_V2, announce=None,
    admin_port: int | None = None, wal_dir: str | Path | None = None,
    wal_fsync: bool = False,
    wal_checkpoint_bytes: int = wallib.DEFAULT_CHECKPOINT_BYTES,
) -> None:
    """Start a server and run it until a ``shutdown`` op.

    ``shards=0`` (the default) hosts every session in this process;
    ``shards=N`` starts the sharded supervisor of
    :mod:`repro.service.shard` with N worker processes — same wire
    protocol, served throughput scales with cores.
    ``accept_wire=1`` pins the whole topology (front end and workers)
    to the v1 JSON-lines framing.

    ``announce`` receives the single ``serving on host:port`` line once
    the socket is bound — the CLI prints it (callers like
    ``loadgen --spawn`` parse it to learn an OS-assigned port); tests
    pass a capture function or ``lambda _: None``.  With shards, the
    line is only printed once every worker process is up.

    ``admin_port`` (``0`` = OS-assigned) additionally binds the HTTP
    admin plane of :mod:`repro.service.admin` on the same host; its
    ``admin on host:port`` line is announced *after* the serving line,
    so existing single-line parsers are undisturbed.

    ``wal_dir`` turns on durability: acknowledged ops are write-ahead
    logged and recovered on restart (with shards, each worker logs to
    ``wal_dir/shard-<i>`` and a dead worker's sessions are *recovered*,
    not lost, by ``restart_shard``).  See docs/OPERATIONS.md.
    """
    if shards:
        from repro.service.shard import ShardedMonitoringServer

        server: MonitoringServer = ShardedMonitoringServer(
            host, port, shards=shards, max_sessions=max_sessions,
            accept_wire=accept_wire, wal_dir=wal_dir, wal_fsync=wal_fsync,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
        )
    else:
        server = MonitoringServer(
            host, port, max_sessions=max_sessions, accept_wire=accept_wire,
            wal_dir=wal_dir, wal_fsync=wal_fsync,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
        )
    bound_host, bound_port = await server.start()
    admin = None
    if admin_port is not None:
        from repro.service.admin import AdminServer

        admin = AdminServer(server, host=host, port=admin_port)
        await admin.start()

    def emit(line: str) -> None:
        if announce is None:
            print(line, flush=True)
        else:
            announce(line)

    emit(f"serving on {bound_host}:{bound_port}")
    if admin is not None:
        emit(f"admin on {admin.host}:{admin.port}")
    if not shards and wal_dir is not None and server._slots:
        # Worker-side recovery in the sharded topology announces nothing
        # here: the supervisor holds no sessions (docs/OPERATIONS.md §5.1).
        emit(f"recovered {len(server._slots)} session(s) from the write-ahead log")
    try:
        await server.serve_until_shutdown()
    finally:
        if admin is not None:
            await admin.aclose()
