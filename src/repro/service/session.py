"""Monitoring sessions: one long-lived incremental run each.

A :class:`Session` wraps a push-driven :class:`~repro.model.engine.
MonitoringEngine` (``source=None``) behind the operations the service
exposes on the wire: feed observation batches, query the current
``F(t)``, read the cost snapshot and the per-scope bill, checkpoint to
bytes and resume.  Two creation modes:

- **push** — the client owns the data and calls :meth:`feed` with
  ``(B, n)`` blocks (the load generator and external producers);
- **workload** — the session generates its own observations from any
  registered workload slug (``config.workload``) and the client calls
  :meth:`advance` to consume up to ``steps`` more of them (in-process
  benchmarks, demo sessions).

Checkpoints (:meth:`snapshot` / :meth:`Session.restore`) pickle the
engine object graph — node arrays, ledger, channel RNG state, algorithm
state — so a restored session continues *bit-identically*: the same
future observations produce the same messages and outputs as an
uninterrupted run.  The blob is raw bytes end to end: a v2 connection
carries it as a binary frame payload and the shard supervisor splices
it between workers unchanged (only the v1 line protocol base64s it at
the edge).  Workload-mode sessions do not pickle their block
iterator; the generator is rebuilt from ``(slug, params, seed)`` on
restore and fast-forwarded to the checkpointed step (chunk-first
generators are seeded by value, so regeneration is exact).

Restore uses a *restricted* unpickler that only resolves ``numpy``,
``repro`` and a small set of builtin container classes — a checkpoint
is still only as trustworthy as its origin, but arbitrary-callable
payloads are rejected.  See docs/ARCHITECTURE.md §"Service layer".
"""

from __future__ import annotations

import io
import pickle
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.model.engine import EngineBatch, MonitoringEngine, RunResult
from repro.model.ledger import CostSnapshot
from repro.service import algorithms
from repro.streams import registry

__all__ = ["Session", "SessionBatch", "SessionConfig", "SnapshotError", "session_from_wire"]

#: Version tag written into every checkpoint blob.  Bumped whenever the
#: pickled object graph changes shape (format 2: canonical compact
#: pickling of growth buffers — blob bytes are a pure function of
#: session state, asserted bit-identical by the differential fuzz tier).
SNAPSHOT_FORMAT = 2


class SnapshotError(ValueError):
    """A checkpoint blob is malformed, untrusted, or from another format."""


def _canonicalize_dtypes(root: Any) -> None:
    """Rebind every ndarray in ``root``'s graph to numpy's cached dtype.

    Unpickling materialises a fresh ``np.dtype`` instance per stream,
    while freshly built arrays (and arrays rebuilt inside a class's
    ``__setstate__``) hold numpy's interned builtin singletons.  A graph
    mixing both pickles differently from a never-pickled one — the
    pickler memoises dtypes by identity — so snapshot → restore →
    snapshot would not be byte-identical.  Rebinding is in-place and
    metadata-only (itemsize is unchanged), so views and readonly arrays
    are safe.
    """
    seen: set[int] = set()
    stack: list[Any] = [root]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            if obj.dtype.names is None:  # builtin dtypes only; no interned form for structured
                canonical = np.dtype(obj.dtype.str)
                if obj.dtype is not canonical:
                    obj.dtype = canonical
            continue
        if isinstance(obj, dict):
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple)):
            stack.extend(obj)
        else:
            state = getattr(obj, "__dict__", None)
            if state:
                stack.extend(state.values())


@dataclass(frozen=True)
class SessionConfig:
    """Plain-data description of a session — exactly what the wire carries."""

    algorithm: str
    n: int
    k: int
    eps: float = 0.0
    seed: int = 0
    algorithm_params: dict[str, Any] = field(default_factory=dict)
    record_outputs: bool = False
    check: bool = False
    broadcast_cost: int = 1
    existence_base: float = 2.0
    #: Workload mode: a registered (streamable) workload slug.
    workload: str | None = None
    workload_params: dict[str, Any] = field(default_factory=dict)
    #: Horizon for workload mode (push mode is open-ended).
    num_steps: int | None = None
    #: Generator block size for workload mode.
    block_size: int = 8192
    #: Seed of the generated stream (defaults to ``seed``).
    workload_seed: int | None = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"need at least 2 nodes, got n={self.n}")
        if self.k < 1 or self.k > self.n:
            raise ValueError(f"k={self.k} out of range for n={self.n}")
        if self.workload is not None and self.num_steps is None:
            raise ValueError("workload-backed sessions need num_steps")

    @property
    def stream_seed(self) -> int:
        return self.seed if self.workload_seed is None else self.workload_seed


def session_from_wire(spec: Mapping[str, Any]) -> "Session":
    """Build a session from a decoded wire mapping (unknown keys rejected)."""
    allowed = set(SessionConfig.__dataclass_fields__)
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ValueError(f"unknown session fields {unknown}; valid: {sorted(allowed)}")
    return Session(SessionConfig(**spec))


class Session:
    """One hosted monitoring run, driven in chunks."""

    def __init__(self, config: SessionConfig) -> None:
        self.config = config
        algorithm = algorithms.make_algorithm(
            config.algorithm, config.k, config.eps, config.algorithm_params
        )
        if config.workload is not None:
            # Fail on a bad slug/params now, not at the first advance().
            spec = registry.get(config.workload)
            if spec.block_fn is None:
                raise ValueError(
                    f"workload {config.workload!r} is not block-streamable; "
                    "feed it from the client side instead"
                )
            registry.validate_params(config.workload, config.n, config.workload_params)
        self.engine = MonitoringEngine(
            None,
            algorithm,
            k=config.k,
            eps=config.eps,
            seed=config.seed,
            check=config.check,
            record_outputs=config.record_outputs,
            broadcast_cost=config.broadcast_cost,
            existence_base=config.existence_base,
            n=config.n,
        )
        self.engine.start(expect_steps=config.num_steps)
        self._result: RunResult | None = None
        # Workload-mode generator state (rebuilt lazily; never pickled).
        self._blocks: Iterator[np.ndarray] | None = None
        self._carry: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def feed(self, block: np.ndarray, *, prevalidated: bool = False) -> int:
        """Consume a pushed ``(B, n)`` observation block; returns the step count."""
        if self.config.workload is not None:
            raise RuntimeError(
                "workload-backed session generates its own observations; "
                "drive it with advance(steps)"
            )
        self._check_open()
        return self.engine.advance(block, prevalidated=prevalidated)

    def advance(self, steps: int | None = None) -> int:
        """Generate and consume up to ``steps`` more workload observations.

        ``None`` runs to the configured horizon.  Returns the total step
        count; a no-op once the horizon is reached.
        """
        if self.config.workload is None:
            raise RuntimeError("push-mode session is fed by the client; use feed(block)")
        self._check_open()
        assert self.config.num_steps is not None
        budget = self.config.num_steps - self.engine.steps_done
        if steps is not None:
            if steps < 0:
                raise ValueError(f"steps must be >= 0, got {steps}")
            budget = min(budget, steps)
        while budget > 0:
            chunk = self._next_chunk()
            take = min(chunk.shape[0], budget)
            if take < chunk.shape[0]:
                self._carry = chunk[take:]
                chunk = chunk[:take]
            self.engine.advance(chunk, prevalidated=True)
            budget -= take
        return self.engine.steps_done

    def _next_chunk(self) -> np.ndarray:
        if self._carry is not None:
            chunk, self._carry = self._carry, None
            return chunk
        if self._blocks is None:
            # Rebuilding may leave a partial block in _carry (restore into
            # the middle of a block) — that remainder comes first.
            self._blocks = self._rebuilt_blocks()
            if self._carry is not None:
                chunk, self._carry = self._carry, None
                return chunk
        try:
            return next(self._blocks)
        except StopIteration:
            raise RuntimeError(
                f"workload stream exhausted at step {self.engine.steps_done} "
                f"before the declared horizon {self.config.num_steps}"
            ) from None

    def _rebuilt_blocks(self) -> Iterator[np.ndarray]:
        """A fresh validated block iterator, fast-forwarded past consumed steps."""
        cfg = self.config
        assert cfg.workload is not None and cfg.num_steps is not None
        source = registry.stream(
            cfg.workload,
            cfg.num_steps,
            cfg.n,
            block_size=cfg.block_size,
            rng=cfg.stream_seed,
            **cfg.workload_params,
        )
        blocks = source.iter_blocks()
        skip = self.engine.steps_done
        while skip > 0:
            block = next(blocks)
            if block.shape[0] <= skip:
                skip -= block.shape[0]
            else:
                self._carry = block[skip:]
                skip = 0
        return blocks

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def step(self) -> int:
        """Time steps consumed so far."""
        return self.engine.steps_done

    @property
    def done(self) -> bool:
        """Whether a workload-mode session reached its horizon (or finalized)."""
        if self._result is not None:
            return True
        if self.config.num_steps is None:
            return False
        return self.engine.steps_done >= self.config.num_steps

    @property
    def messages(self) -> int:
        """Total message cost charged so far."""
        return self.engine.ledger.messages

    @property
    def batchable(self) -> bool:
        """Whether feeds may take the cross-session batch path right now.

        Push-mode, still open, and the engine reports a quiet-step cost —
        everything else (workload mode, finalized, irregular outputs,
        check mode, opt-out algorithms) stays on the serial path.
        """
        return (
            self.config.workload is None
            and self._result is None
            and self.engine.batchable
        )

    @property
    def cohort_key(self) -> tuple:
        """Sessions coalesce into one batch tick only within this key.

        ``(algorithm, n, k, eps)`` — only ``n`` is a hard correctness
        requirement of :class:`~repro.model.engine.EngineBatch`; the rest
        keeps each tick's workload homogeneous so one slow protocol
        cannot head-of-line-block an unrelated cohort.  The fifth cohort
        component of the design — the wire-validated block width — is
        enforced upstream: the server only routes a feed here after the
        width == n prevalidation check passed.
        """
        c = self.config
        return (c.algorithm, c.n, c.k, c.eps)

    def output(self) -> frozenset[int] | None:
        """The current ``F(t)`` (``None`` before the first step)."""
        return self.engine.current_output()

    def cost(self) -> CostSnapshot:
        """Immutable totals of the session's ledger."""
        return self.engine.ledger.snapshot()

    def bill(self) -> dict[str, int]:
        """Per-scope message attribution (hierarchical; scopes overlap)."""
        return self.engine.ledger.by_scope()

    def status(self) -> dict[str, Any]:
        """Wire-ready summary of where the session stands."""
        out = self.output()
        return {
            "algorithm": self.config.algorithm,
            "n": self.config.n,
            "k": self.config.k,
            "step": self.step,
            "messages": self.messages,
            "output": sorted(int(i) for i in out) if out is not None else None,
            "done": self.done,
            "finalized": self._result is not None,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def finalize(self) -> RunResult:
        """Close the run and return the :class:`RunResult` (idempotent)."""
        if self._result is None:
            self._result = self.engine.finalize()
        return self._result

    def _check_open(self) -> None:
        if self._result is not None:
            raise RuntimeError("session already finalized")

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def snapshot(self) -> bytes:
        """Serialize the full session state to a resumable checkpoint."""
        if self._result is not None:
            raise RuntimeError("cannot checkpoint a finalized session")
        payload = {
            "format": SNAPSHOT_FORMAT,
            "config": asdict(self.config),
            "engine": self.engine,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, blob: bytes) -> "Session":
        """Rebuild a session from :meth:`snapshot` and continue bit-identically."""
        try:
            payload = _RestrictedUnpickler(io.BytesIO(blob)).load()
        except SnapshotError:
            raise
        except Exception as exc:  # truncated/corrupt pickle streams
            raise SnapshotError(f"unreadable checkpoint: {exc}") from None
        if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"checkpoint format {payload.get('format') if isinstance(payload, dict) else '?'} "
                f"not supported (expected {SNAPSHOT_FORMAT})"
            )
        session = cls.__new__(cls)
        session.config = SessionConfig(**payload["config"])
        session.engine = payload["engine"]
        if not isinstance(session.engine, MonitoringEngine):
            raise SnapshotError("checkpoint does not contain an engine")
        _canonicalize_dtypes(session.engine)
        session._result = None
        session._blocks = None
        session._carry = None
        return session


class SessionBatch:
    """A cohort of same-shape push-mode sessions fed in vectorized ticks.

    The server keeps one ``SessionBatch`` per :attr:`Session.cohort_key`;
    sessions :meth:`join` on their first batched feed and :meth:`leave`
    when they finalize or close.  Membership is bookkeeping, not binding:
    each :meth:`feed_batch` tick binds the participating engines into an
    ephemeral :class:`~repro.model.engine.EngineBatch`, advances them in
    lockstep, and unbinds before returning — so between ticks every
    session owns private arrays and snapshot/restore/finalize see exactly
    the state a serially-fed session would pickle (the checkpoint
    determinism law holds by construction, no detach protocol needed).
    """

    def __init__(self, key: tuple) -> None:
        self.key = key
        self._members: dict[int, Session] = {}
        #: vectorized ticks served / steps they advanced (server stats)
        self.ticks = 0
        self.batched_steps = 0
        #: member-steps that took the vectorized quiet path vs the
        #: serial ``_step`` (violations, step 0, mid-feed fall-offs) —
        #: the live form of the paper's quiet/escalation split.
        self.quiet_steps = 0
        self.escalated_steps = 0

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def join(self, session: Session) -> None:
        """Enroll a session in this cohort (idempotent)."""
        if session.cohort_key != self.key:
            raise ValueError(f"session cohort {session.cohort_key} != batch cohort {self.key}")
        self._members[id(session)] = session

    def leave(self, session: Session) -> None:
        """Withdraw a session (idempotent; safe for never-joined sessions)."""
        self._members.pop(id(session), None)

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------ #
    # The tick
    # ------------------------------------------------------------------ #
    def feed_batch(
        self, entries: list[tuple[Session, np.ndarray]]
    ) -> list[tuple[int, int] | Exception]:
        """Advance one prevalidated ``(B_i, n)`` block per session.

        Blocks must already be float64, finite, and exactly ``n`` wide
        (the server's shared prevalidation check).  Returns one result
        per entry, positionally: ``(step, messages)`` on success or the
        exception the serial path would have raised (the entry's session
        is left exactly as a serial feed raising mid-block would leave
        it).  Unequal block lengths are handled by segmenting on the
        shortest remaining block; sessions that stop being batchable
        mid-feed (e.g. an output turned irregular) finish on the serial
        path.
        """
        assert len({id(session) for session, _ in entries}) == len(entries), (
            "duplicate session in one tick — the per-session lock should prevent this"
        )
        results: list[tuple[int, int] | Exception | None] = [None] * len(entries)

        def finish_serial(idx: int, session: Session, tail: np.ndarray) -> None:
            before = session.step
            try:
                session.feed(tail, prevalidated=True)
            except Exception as exc:  # noqa: BLE001 — per-entry isolation
                results[idx] = exc
            else:
                results[idx] = (session.step, session.messages)
            finally:
                self.escalated_steps += session.step - before

        live = [(idx, session, block, 0) for idx, (session, block) in enumerate(entries)]
        while live:
            ready = []
            for idx, session, block, offset in live:
                if session.batchable:
                    ready.append((idx, session, block, offset))
                else:
                    finish_serial(idx, session, block[offset:])
            if not ready:
                break
            if len(ready) == 1:
                idx, session, block, offset = ready[0]
                finish_serial(idx, session, block[offset:])
                break
            take = min(block.shape[0] - offset for _, _, block, offset in ready)
            batch = EngineBatch([session.engine for _, session, _, _ in ready])
            try:
                errors = batch.advance_batch(
                    [block[offset : offset + take] for _, _, block, offset in ready]
                )
            finally:
                batch.close()
                self.quiet_steps += batch.quiet_member_steps
                self.escalated_steps += batch.escalated_member_steps
            self.ticks += 1
            live = []
            for (idx, session, block, offset), error in zip(ready, errors):
                if error is not None:
                    results[idx] = error
                    continue
                self.batched_steps += take
                offset += take
                if offset >= block.shape[0]:
                    results[idx] = (session.step, session.messages)
                else:
                    live.append((idx, session, block, offset))
        return results  # type: ignore[return-value] — every slot was filled above


#: Builtin classes a checkpoint may reference (containers only — no
#: callables, no ``getattr``/``eval`` gadgets).
_SAFE_BUILTINS = frozenset({
    "frozenset", "set", "list", "dict", "tuple", "bytes", "bytearray",
    "int", "float", "complex", "bool", "str", "slice", "range",
})

#: The only *functions* a legitimate checkpoint needs: numpy's array /
#: RNG reconstructors and the pluggable violation detectors that
#: algorithms hold by reference.  Everything else from the trusted
#: prefixes must be a class — a module-level helper like a file writer
#: must not be reachable from a pickle stream.
_SAFE_FUNCTIONS = frozenset({
    ("numpy._core.multiarray", "_reconstruct"),
    ("numpy.core.multiarray", "_reconstruct"),
    ("numpy._core.multiarray", "scalar"),
    ("numpy.core.multiarray", "scalar"),
    ("numpy._core.numeric", "_frombuffer"),
    ("numpy.core.numeric", "_frombuffer"),
    ("numpy.random._pickle", "__generator_ctor"),
    ("numpy.random._pickle", "__bit_generator_ctor"),
    ("numpy.random.bit_generator", "__pyx_unpickle_SeedSequence"),
    ("repro.core.primitives", "detect_violation_existence"),
    ("repro.core.primitives", "detect_violation_direct"),
    ("repro.core.primitives", "detect_violation_bisection"),
})


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler restricted to numpy/repro *classes* plus a function allowlist."""

    def find_class(self, module: str, name: str):
        if (module, name) in _SAFE_FUNCTIONS:
            return super().find_class(module, name)
        if module == "builtins" and name in _SAFE_BUILTINS:
            return super().find_class(module, name)
        if module.split(".", 1)[0] in ("numpy", "repro", "collections"):
            obj = super().find_class(module, name)
            if isinstance(obj, type):
                return obj
            raise SnapshotError(
                f"checkpoint references the callable {module}.{name} — only "
                "classes and allowlisted reconstructors load"
            )
        raise SnapshotError(
            f"checkpoint references {module}.{name}, which is outside the "
            "trusted numpy/repro surface — refusing to load"
        )
