"""Sharded serving: one front end, N shared-nothing worker processes.

PR 3's :class:`~repro.service.server.MonitoringServer` hosts every
session in a single asyncio process, so served throughput is capped at
one core no matter how many sessions connect.  This module adds the
next scaling step, mirroring how the paper's protocol treats
monitoring instances as independent units behind one broadcast
channel: sessions are *shared-nothing*, so they scale horizontally by
placing them in separate OS processes.

- :class:`ShardRing` — a consistent-hash ring (64 virtual points per
  shard by default) mapping session ids onto shard indices, so
  growing or shrinking the shard count relocates only ``~1/N`` of the
  sessions instead of reshuffling everything.
- :func:`shard_worker_main` — the entry point of one shard worker
  process: a plain single-process :class:`MonitoringServer` bound to a
  per-shard localhost socket, reached only by the supervisor.
- :class:`ShardedMonitoringServer` — the supervisor: an asyncio
  acceptor speaking the *unchanged* client wire protocol, which
  rewrites session ids and forwards each op to the owning shard over a
  bounded per-shard connection pool (the pool bound is the
  backpressure: at most ``links_per_shard`` requests are in flight per
  shard, later requests wait).

Sessions stay *bit-identical* to single-process serving: a shard
worker runs the very same ``Session``/engine stack, and the supervisor
never touches payload bytes beyond the ``id``/``session`` envelope
fields.  On a v2 (binary-framed) client connection that promise is
structural: session ops are **passed through** — the supervisor routes
on the fixed frame header alone, re-heads the frame with the
worker-local session id, and splices the meta and payload bytes
worker-ward without decoding them (only control ops — ``create``,
``restore``, ``migrate``, ``list``, ``ping``, ``hello``,
``shutdown`` — take the full-decode path).  Checkpoint-based migration
(the ``migrate`` op / :meth:`ShardedMonitoringServer.migrate_session`)
moves a live session between shards through the PR 3 snapshot format
as raw blob frames, and :meth:`ShardedMonitoringServer.restart_shard`
rebuilds a whole worker process around checkpoints of its sessions —
both without losing a step or a message of session state.  See
docs/ARCHITECTURE.md §5.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import multiprocessing
import shutil
import time
from pathlib import Path
from typing import Any

from repro.service import metrics as metricslib
from repro.service import ops, wire
from repro.service import wal as wallib
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.server import MonitoringServer

__all__ = [
    "ShardError",
    "ShardRing",
    "ShardedMonitoringServer",
    "shard_worker_main",
]

#: Spawned (never forked) workers: the supervisor runs an event loop,
#: and forking a live loop is undefined behavior; spawn also gives the
#: worker a pristine interpreter, matching production process managers.
_MP = multiprocessing.get_context("spawn")

#: How long a worker process may take to bind its socket and report.
_WORKER_START_TIMEOUT = 120.0

#: How long a worker may take to exit after a shutdown request.
_WORKER_STOP_TIMEOUT = 15.0

#: Per-request ceiling on a supervisor->worker round trip.  Generous —
#: a near-cap feed batch takes well under a second even on one core —
#: but finite, so a *hung* (not dead) worker turns into ShardError
#: responses instead of wedging route locks (and, transitively, the
#: placement lock and every restart_shard) forever.
_FORWARD_TIMEOUT = 60.0


class ShardError(RuntimeError):
    """A shard worker is unreachable or failed mid-request."""


def _hash64(key: str) -> int:
    """A stable (process-independent) 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRing:
    """Consistent-hash ring: session id -> shard index.

    Each shard owns ``points`` pseudo-random positions on a 64-bit
    ring; a key belongs to the shard owning the first position at or
    after the key's hash (wrapping at the top).  Placement is a pure
    function of ``(key, shards, points)`` — every process computes the
    same ring, nothing needs to be gossiped.
    """

    def __init__(self, shards: int, *, points: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        if points < 1:
            raise ValueError(f"need at least 1 point per shard, got {points}")
        self.shards = shards
        self.points = points
        pairs = sorted(
            (_hash64(f"shard-{shard}#{point}"), shard)
            for shard in range(shards)
            for point in range(points)
        )
        self._hashes = [h for h, _ in pairs]
        self._owners = [s for _, s in pairs]

    def owner(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect.bisect_right(self._hashes, _hash64(key))
        return self._owners[index % len(self._owners)]


def shard_worker_main(
    ready,
    max_sessions: int,
    accept_wire: int = wire.WIRE_V2,
    wal_dir: str | None = None,
    wal_fsync: bool = False,
    wal_checkpoint_bytes: int = wallib.DEFAULT_CHECKPOINT_BYTES,
) -> None:
    """Entry point of one shard worker process.

    Runs a plain :class:`MonitoringServer` on an OS-assigned localhost
    port, reports that port through the ``ready`` pipe, then serves
    until the supervisor sends the ``shutdown`` op.  Exit code 0 means
    a clean drain.  With ``wal_dir``, server construction *recovers*
    first — a respawned worker replays its checkpoint + log tail and
    re-hosts every acknowledged session under its original local id
    (the restored id counter keeps supervisor routes valid) before the
    port is announced.
    """

    async def run() -> None:
        server = MonitoringServer(
            "127.0.0.1",
            0,
            max_sessions=max_sessions,
            accept_wire=accept_wire,
            wal_dir=wal_dir,
            wal_fsync=wal_fsync,
            wal_checkpoint_bytes=wal_checkpoint_bytes,
        )
        await server.start()
        ready.send(server.port)
        ready.close()
        await server.serve_until_shutdown()

    asyncio.run(run())


class _ShardWorker:
    """One worker process plus the supervisor's link pool to it."""

    def __init__(self, index: int, links_per_shard: int) -> None:
        self.index = index
        self.process: multiprocessing.process.BaseProcess | None = None
        self.port: int | None = None
        #: Bumped by :meth:`drop_links`; a link checked out before the
        #: bump must not re-enter the pool (it points at the old port).
        self.generation = 0
        #: Pool slots; ``None`` means "connect lazily on first use".
        self.links: asyncio.Queue[AsyncServiceClient | None] = asyncio.Queue()
        for _ in range(links_per_shard):
            self.links.put_nowait(None)

    async def acquire(self) -> AsyncServiceClient:
        """Check a link out of the pool (the per-shard backpressure)."""
        link = await self.links.get()
        if link is None:
            if self.port is None:
                self.links.put_nowait(None)
                raise ShardError(f"shard {self.index} is not running")
            try:
                # "auto": binary frames when the worker grants them (the
                # pass-through splice path needs v2 links), JSON lines
                # against a worker pinned to v1.
                link = await AsyncServiceClient.connect(
                    "127.0.0.1", self.port, wire_protocol="auto"
                )
            except OSError as exc:
                self.links.put_nowait(None)
                raise ShardError(f"shard {self.index} unreachable: {exc}") from exc
            except ServiceError as exc:
                self.links.put_nowait(None)
                raise ShardError(
                    f"shard {self.index} refused the link handshake: {exc}"
                ) from exc
        return link

    def release(self, link: AsyncServiceClient, *, broken: bool = False) -> None:
        """Return a link; a broken one becomes a lazy reconnect slot."""
        if broken:
            link.close()
            self.links.put_nowait(None)
        else:
            self.links.put_nowait(link)

    def drop_links(self) -> None:
        """Close every pooled link (worker restart or shutdown)."""
        self.generation += 1
        drained = []
        while True:
            try:
                drained.append(self.links.get_nowait())
            except asyncio.QueueEmpty:
                break
        for link in drained:
            if link is not None:
                link.close()
            self.links.put_nowait(None)


class _Route:
    """Where one supervisor-visible session lives right now."""

    __slots__ = ("shard", "local", "step", "lock")

    def __init__(self, shard: int, local: str, step: int = 0) -> None:
        self.shard = shard
        self.local = local  # the worker's own session id
        self.step = step
        self.lock = asyncio.Lock()


class ShardedMonitoringServer(MonitoringServer):
    """Supervisor: consistent-hash sessions onto N worker processes.

    Clients are unchanged on the wire — the supervisor answers the same
    op vocabulary as :class:`MonitoringServer` (plus ``migrate``),
    assigns the session ids, and forwards each session op to the shard
    owning it.  Worker processes host the actual
    :class:`~repro.service.session.Session` stack, shared-nothing, one
    event loop + executor each, so served throughput scales with cores.

    Parameters
    ----------
    shards:
        Worker process count (>= 1).
    links_per_shard:
        Supervisor connections per shard; bounds in-flight requests
        per shard (backpressure — excess requests queue).
    ring_points:
        Virtual ring positions per shard (placement granularity).
    wal_dir:
        Durability root: worker ``i`` write-ahead logs to
        ``wal_dir/shard-<i>``.  The supervisor itself hosts no sessions
        and keeps no log — recovery is worker-side: a respawned worker
        replays its own checkpoint + tail, and :meth:`restart_shard`
        re-syncs the routes, reporting dead-worker sessions as
        ``recovered`` instead of ``lost``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shards: int,
        max_sessions: int = 1024,
        links_per_shard: int = 4,
        ring_points: int = 64,
        accept_wire: int = wire.WIRE_V2,
        wal_dir: str | Path | None = None,
        wal_fsync: bool = False,
        wal_checkpoint_bytes: int = wallib.DEFAULT_CHECKPOINT_BYTES,
    ) -> None:
        super().__init__(host, port, max_sessions=max_sessions, accept_wire=accept_wire)
        if shards < 1:
            raise ValueError(f"need at least 1 shard, got {shards}")
        self._wal_dir = None if wal_dir is None else Path(wal_dir)
        self._wal_fsync = wal_fsync
        self._wal_checkpoint_bytes = wal_checkpoint_bytes
        #: Fleet-level durability toggle (the workers hold the logs; the
        #: supervisor's flag is what ``durability`` fan-out re-applies
        #: to replacement workers after a restart).
        self.durability = self._wal_dir is not None
        self.num_shards = shards
        self.ring = ShardRing(shards, points=ring_points)
        self._links_per_shard = links_per_shard
        self._workers = [_ShardWorker(i, links_per_shard) for i in range(shards)]
        self._routes: dict[str, _Route] = {}
        # Serializes every operation that changes *where sessions live*
        # (create, restore, migrate, shard restart), so the session
        # budget is enforced atomically and a restart can never race a
        # concurrent placement onto the worker it is replacing.  Lock
        # order is always placement -> route.lock, never the reverse.
        self._placement = asyncio.Lock()
        # Supervisor-side ops-plane extras: per-shard forward latency,
        # link-pool occupancy, restart/migration counters, and the
        # cross-generation aggregator that keeps fleet counters
        # monotone across restart_shard (a worker's registry dies with
        # its process; see repro.service.metrics).
        self._c_migrations = self.metrics.counter("repro_migrations_total")
        self._gen_agg = metricslib.GenerationAggregator()
        self._forward_hists: dict[int, metricslib.Histogram] = {}
        for worker in self._workers:
            self.metrics.register_gauge_fn(
                "repro_links_in_use",
                lambda w=worker: links_per_shard - w.links.qsize(),
                shard=worker.index,
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Spawn the shard workers, then bind the front-end listener."""
        if self._server is not None:
            raise RuntimeError("server already started")
        try:
            await asyncio.gather(*(self._spawn_worker(w) for w in self._workers))
            return await super().start()
        except BaseException:
            await self._stop_workers()
            raise

    async def _spawn_worker(self, worker: _ShardWorker) -> None:
        """Start one worker process and wait for its announced port."""
        receiver, sender = _MP.Pipe(duplex=False)
        worker_wal = (
            None
            if self._wal_dir is None
            else str(self._wal_dir / f"shard-{worker.index}")
        )
        process = _MP.Process(
            target=shard_worker_main,
            args=(
                sender, self.max_sessions, self.accept_wire,
                worker_wal, self._wal_fsync, self._wal_checkpoint_bytes,
            ),
            name=f"repro-shard-{worker.index}",
            daemon=True,
        )
        process.start()
        sender.close()
        worker.process = process
        loop = asyncio.get_running_loop()
        try:
            worker.port = await loop.run_in_executor(
                None, _receive_port, receiver, process
            )
        finally:
            receiver.close()

    async def serve_until_shutdown(self) -> None:
        """Serve, then drain: front end first, then every worker."""
        try:
            await super().serve_until_shutdown()
        finally:
            await self._stop_workers()

    async def aclose(self) -> None:
        try:
            await super().aclose()
        finally:
            self._routes.clear()
            await self._stop_workers()

    async def _stop_workers(self) -> None:
        await asyncio.gather(*(self._stop_worker(w) for w in self._workers))

    async def _stop_worker(self, worker: _ShardWorker) -> None:
        """Gracefully drain one worker; escalate to terminate/kill."""
        worker.drop_links()
        process = worker.process
        if process is None:
            return
        if process.is_alive() and worker.port is not None:
            try:
                link = await asyncio.wait_for(
                    AsyncServiceClient.connect(
                        "127.0.0.1", worker.port, wire_protocol="v1"
                    ),
                    timeout=5,
                )
                try:
                    await asyncio.wait_for(link.request("shutdown"), timeout=5)
                finally:
                    await link.aclose()
            except Exception:
                pass  # worker already gone or wedged; escalate below
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, process.join, _WORKER_STOP_TIMEOUT)
        if process.is_alive():
            process.terminate()
            await loop.run_in_executor(None, process.join, 5)
            if process.is_alive():
                process.kill()
                await loop.run_in_executor(None, process.join, 5)
        worker.port = None

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #
    async def _forward(self, shard: int, op: str, **fields: Any) -> dict[str, Any]:
        """One request/response round trip to a shard worker.

        Protocol-level errors from the worker re-raise as
        :class:`ServiceError` (the envelope preserves their original
        ``error_type``); transport failures become :class:`ShardError`
        and poison the link so the pool reconnects lazily.
        """
        worker = self._workers[shard]
        link = await worker.acquire()
        generation = worker.generation
        broken = False
        started = time.perf_counter() if self.metrics.enabled else None
        try:
            response = await asyncio.wait_for(
                link.request(op, **fields), timeout=_FORWARD_TIMEOUT
            )
            # The worker's envelope (its request id, ok flag) is link-local;
            # the supervisor re-wraps the payload under the client's own id.
            response.pop("id", None)
            response.pop("ok", None)
            return response
        except wire.WireError:
            # Client-side encode failure (e.g. a non-finite batch from a
            # v1 client being re-encoded for the link): nothing was
            # written, the link is still in sync — re-pool it healthy.
            raise
        except ServiceError as exc:
            if exc.error_type == "ConnectionClosed":
                broken = True
                raise ShardError(f"shard {shard} closed the connection") from exc
            raise  # clean worker-side error; the link is still in sync
        except BaseException as exc:
            broken = True  # cancelled, timed out, or failed mid-exchange
            if isinstance(exc, asyncio.TimeoutError):
                raise ShardError(
                    f"shard {shard} did not respond within {_FORWARD_TIMEOUT:.0f}s"
                ) from exc
            if isinstance(exc, (ConnectionError, OSError, asyncio.IncompleteReadError)):
                raise ShardError(f"shard {shard} unavailable: {exc}") from exc
            raise
        finally:
            if started is not None:
                self._forward_hist(shard).observe(time.perf_counter() - started)
            # A generation bump mid-request means the worker was replaced
            # under us: the link points at the old port and must not be
            # re-pooled even though this exchange happened to succeed.
            worker.release(link, broken=broken or worker.generation != generation)

    def _forward_hist(self, shard: int) -> metricslib.Histogram:
        hist = self._forward_hists.get(shard)
        if hist is None:
            hist = self._forward_hists[shard] = self.metrics.histogram(
                "repro_forward_seconds", shard=shard
            )
        return hist

    #: Session ops a v2 front-end connection forwards without decoding:
    #: the fixed header alone names the session, and the meta/payload
    #: bytes are spliced worker-ward verbatim.  Everything else (and
    #: every v1 line) takes the full-decode path through ``_OPS``.
    #: Derived from the shared op registry (``passthrough=True`` specs).
    _PASSTHROUGH_CODES = ops.passthrough_codes()

    async def _respond_v2(self, frame: tuple[wire.FrameHeader, bytes, bytes]):
        header, meta, payload = frame
        if header.code in self._PASSTHROUGH_CODES and header.session:
            return await self._passthrough_v2(header, meta, payload)
        return await super()._respond_v2(frame)

    async def _passthrough_v2(
        self, header: wire.FrameHeader, meta: bytes, payload: bytes
    ):
        """Splice one session frame to its shard and re-head the reply.

        The supervisor-side cost of a forwarded feed drops to two
        header packs and the socket writes — no JSON parse, no base64,
        no payload copy beyond the kernel's.
        """
        request_id = header.request_id
        op = wire.OP_NAMES[header.code]
        sid = f"s{header.session}"
        route = self._routes.get(sid)
        if route is None:
            return wire.encode_error_frame(
                request_id, KeyError(f"no such session {sid!r}")
            )
        try:
            async with route.lock:
                reply, r_meta, r_payload = await self._forward_raw(
                    route.shard, header, meta, payload, int(route.local[1:])
                )
                self.stats["requests"] += 1
                if reply.code == wire.STATUS_OK:
                    if op in ("feed", "advance"):
                        # The only decoded bytes on this path: a tiny
                        # {"step", "messages", ...} meta segment, for the
                        # supervisor's step accounting.
                        step = json.loads(r_meta).get("step") if r_meta else None
                        if isinstance(step, int):
                            self.stats["steps_ingested"] += step - route.step
                            route.step = step
                    elif op == "finalize":
                        self._routes.pop(sid, None)
            out_header = wire.pack_header(
                kind=reply.kind,
                code=reply.code,
                request_id=request_id,
                session=header.session if reply.session else 0,
                meta_len=reply.meta_len,
                payload_len=reply.payload_len,
                response=True,
            )
            # Returned as raw segments: _serve_v2 writes them through
            # without concatenating a payload-sized buffer in userland.
            return out_header, r_meta, r_payload
        except Exception as exc:  # fail closed, exactly like _respond_v2
            return wire.encode_error_frame(request_id, exc)

    async def _forward_raw(
        self,
        shard: int,
        header: wire.FrameHeader,
        meta: bytes,
        payload: bytes,
        local_session: int,
    ) -> tuple[wire.FrameHeader, bytes, bytes]:
        """One spliced round trip to a shard worker (the raw-frame twin
        of :meth:`_forward`, with the same link-pool error contract)."""
        worker = self._workers[shard]
        link = await worker.acquire()
        generation = worker.generation
        broken = False
        started = time.perf_counter() if self.metrics.enabled else None
        try:
            return await asyncio.wait_for(
                link.passthrough_frame(header, meta, payload, local_session),
                timeout=_FORWARD_TIMEOUT,
            )
        except ServiceError as exc:
            if exc.error_type == "ConnectionClosed":
                broken = True
                raise ShardError(f"shard {shard} closed the connection") from exc
            broken = True  # a WireError desync also poisons the link
            raise
        except BaseException as exc:
            broken = True  # cancelled, timed out, or failed mid-exchange
            if isinstance(exc, asyncio.TimeoutError):
                raise ShardError(
                    f"shard {shard} did not respond within {_FORWARD_TIMEOUT:.0f}s"
                ) from exc
            if isinstance(exc, (ConnectionError, OSError, asyncio.IncompleteReadError)):
                raise ShardError(f"shard {shard} unavailable: {exc}") from exc
            raise
        finally:
            if started is not None:
                self._forward_hist(shard).observe(time.perf_counter() - started)
            worker.release(link, broken=broken or worker.generation != generation)

    def _new_sid(self) -> str:
        if len(self._routes) >= self.max_sessions:
            raise RuntimeError(
                f"session limit reached ({self.max_sessions}); finalize or "
                "close sessions before creating more"
            )
        self._next_id += 1
        return f"s{self._next_id}"

    def _route(self, message: dict[str, Any]) -> tuple[str, _Route]:
        sid = message.get("session")
        route = self._routes.get(sid)
        if route is None:
            raise KeyError(f"no such session {sid!r}")
        return sid, route

    # ------------------------------------------------------------------ #
    # Migration
    # ------------------------------------------------------------------ #
    async def migrate_session(
        self, sid: str, target: int | None = None
    ) -> dict[str, Any]:
        """Move one session to ``target`` (default: the next shard).

        The move is checkpoint-based: snapshot on the owning shard,
        restore on the target, close the original — the session id the
        client holds does not change, and the restored session
        continues bit-identically (PR 3's checkpoint guarantee).
        """
        route = self._routes.get(sid)
        if route is None:
            raise KeyError(f"no such session {sid!r}")
        async with self._placement:
            async with route.lock:
                return await self._migrate_locked(sid, route, target)

    async def _migrate_locked(
        self, sid: str, route: _Route, target: int | None
    ) -> dict[str, Any]:
        source = route.shard
        if target is None:
            target = (source + 1) % self.num_shards
        if not 0 <= target < self.num_shards:
            raise ValueError(
                f"target shard {target} out of range [0, {self.num_shards})"
            )
        if target == source:
            return {
                "session": sid,
                "from_shard": source,
                "to_shard": target,
                "step": route.step,
                "moved": False,
            }
        snap = await self._forward(source, "snapshot", session=route.local)
        restored = await self._forward(target, "restore", state=snap["state"])
        try:
            await self._forward(source, "close", session=route.local)
        except (ShardError, ServiceError):
            # The restored copy is authoritative either way (identical at
            # the snapshot step; route.lock blocks feeds during the move).
            # A failed close at worst leaves a stale twin on a broken
            # source worker — cleared by restart_shard — and must not
            # orphan the reachable copy on the healthy target.
            pass
        route.shard = target
        route.local = restored["session"]
        route.step = restored["step"]
        self._c_migrations.inc()
        return {
            "session": sid,
            "from_shard": source,
            "to_shard": target,
            "step": route.step,
            "moved": True,
        }

    async def restart_shard(
        self, index: int, *, graceful: bool = False
    ) -> dict[str, Any]:
        """Replace a shard's worker process without losing session state.

        Rebalancing/maintenance *and* recovery primitive, in three
        flavors depending on configuration:

        - **No WAL, or durability toggled off** (the original path):
          every session hosted on shard ``index`` is snapshotted to the
          supervisor, the worker is drained and replaced, and the
          sessions are restored into the fresh process — placement and
          session ids unchanged, state bit-identical.  If the worker is
          already dead (snapshots unreachable) the unsaveable sessions'
          routes are dropped so their slots return to the session
          budget — ``lost`` reports them.
        - **WAL-backed** (durability on): no snapshot round trips.  The
          replacement worker replays its own checkpoint + log tail
          during startup (under the *original* local session ids), the
          supervisor re-syncs each route's step with a ``query``, and
          the result reports those sessions as ``recovered``.  A ``kill
          -9``'d worker loses nothing acknowledged — ``lost`` stays 0.
        - **``graceful=True``** (rolling restart, needs >= 2 shards and
          a live worker): resident sessions are first *migrated* to
          other shards through the checkpoint-migration path, so they
          keep serving while the process is swapped; sessions whose
          migration fails fall back to the applicable path above.
        """
        if not 0 <= index < self.num_shards:
            raise ValueError(f"shard {index} out of range [0, {self.num_shards})")
        worker = self._workers[index]
        # The WAL recovery path is only sound while appends are actually
        # on: with durability toggled off the log stops at the toggle,
        # so a healthy restart must fall back to the snapshot path (and
        # wipe the stale log — the snapshots are the authority).
        durable = self._wal_dir is not None and self.durability
        async with self._placement:
            # No placement can race us onto the dying worker: create,
            # restore and migrate all hold the same lock.
            resident = [
                (sid, route)
                for sid, route in self._routes.items()
                if route.shard == index
            ]
            acquired = []
            try:
                for _sid, route in resident:
                    await route.lock.acquire()
                    acquired.append(route)
                live = [
                    (sid, route)
                    for sid, route in resident
                    # finalized/closed while we awaited its lock
                    if self._routes.get(sid) is route
                ]
                migrated = 0
                if graceful and self.num_shards > 1:
                    remaining = []
                    for sid, route in live:
                        try:
                            await self._migrate_locked(sid, route, None)
                        except (ShardError, ServiceError):
                            remaining.append((sid, route))  # swap path below
                        else:
                            migrated += 1
                    live = remaining
                blobs = []
                lost = []
                worker_dead = False
                if not durable:
                    for sid, route in live:
                        if worker_dead:
                            lost.append(sid)
                            continue
                        try:
                            snap = await self._forward(
                                index, "snapshot", session=route.local
                            )
                        except ShardError:
                            worker_dead = True  # no point probing per session
                            lost.append(sid)
                            continue
                        except ServiceError:
                            lost.append(sid)  # gone on the worker: route is stale
                            continue
                        blobs.append((sid, route, snap["state"]))
                if not worker_dead:
                    # Harvest the dying registry under its current
                    # generation tag; the fresh process restarts from
                    # zero and the aggregator keeps fleet counters
                    # monotone across the swap.
                    try:
                        scraped = await self._forward(index, "metrics")
                        self._gen_agg.update(
                            index, worker.generation, scraped["metrics"]
                        )
                    except (ShardError, ServiceError):
                        pass  # the tail counts die with the worker
                await self._stop_worker(worker)
                if not durable and self._wal_dir is not None:
                    # Superseded log: the fresh worker must not replay
                    # state the snapshots above are about to overwrite.
                    shutil.rmtree(
                        self._wal_dir / f"shard-{index}", ignore_errors=True
                    )
                await self._spawn_worker(worker)
                if not self.batching:  # fresh workers default to batching on
                    await self._forward(index, "batch", enabled=False)
                if not self.metrics.enabled:  # ... and to metrics on
                    await self._forward(index, "metrics", enabled=False)
                if self._wal_dir is not None and not self.durability:
                    # ... and to appending on
                    await self._forward(index, "durability", enabled=False)
                self.metrics.counter("repro_shard_restarts_total", shard=index).inc()
                recovered = 0
                if durable:
                    # The fresh worker already replayed its WAL; the
                    # routes' local ids are unchanged by construction,
                    # so a query both verifies the session and re-syncs
                    # the supervisor's step echo.
                    for sid, route in live:
                        try:
                            payload = await self._forward(
                                index, "query", session=route.local
                            )
                        except (ShardError, ServiceError):
                            lost.append(sid)
                            continue
                        route.step = payload["step"]
                        recovered += 1
                else:
                    for sid, route, state in blobs:
                        restored = await self._forward(index, "restore", state=state)
                        route.local = restored["session"]
                        route.step = restored["step"]
                for sid in lost:
                    self._routes.pop(sid, None)
                if recovered:
                    self.metrics.counter(
                        "repro_shard_recovered_sessions_total", shard=index
                    ).inc(recovered)
            finally:
                for route in acquired:
                    route.lock.release()
        return {
            "shard": index,
            "sessions": recovered if durable else len(blobs),
            "lost": len(lost),
            "recovered": recovered,
            "migrated": migrated,
            "port": worker.port,
        }

    # ------------------------------------------------------------------ #
    # Ops (same vocabulary as MonitoringServer, plus ``migrate``)
    # ------------------------------------------------------------------ #
    async def _op_ping(self, message: dict[str, Any]) -> dict[str, Any]:
        shard_info = []
        for worker in self._workers:
            try:
                pong = await self._forward(worker.index, "ping")
            except ShardError:
                shard_info.append({"shard": worker.index, "alive": False})
                continue
            shard_info.append(
                {
                    "shard": worker.index,
                    "alive": True,
                    "sessions": pong["sessions"],
                    "stats": pong["stats"],
                }
            )
        return {
            "pong": True,
            "version": wire.PROTOCOL_VERSION,
            "accept_wire": self.accept_wire,
            "sessions": len(self._routes),
            "shards": self.num_shards,
            "shard_info": shard_info,
            "stats": dict(self.stats),
        }

    async def _op_batch(self, message: dict[str, Any]) -> dict[str, Any]:
        """Fan the batching toggle out to every worker (and this process).

        Workers batch *internally* — the supervisor's routing stays
        pass-through — so the toggle only matters where sessions live.
        The supervisor's own flag is kept in sync for introspection.
        """
        enabled = message.get("enabled", True)
        if not isinstance(enabled, bool):
            raise wire.WireError(f"batch enabled must be a bool, got {enabled!r}")
        for worker in self._workers:
            await self._forward(worker.index, "batch", enabled=enabled)
        self.batching = enabled
        return {"batching": enabled}

    async def _op_metrics(self, message: dict[str, Any]) -> dict[str, Any]:
        """Fan a metrics toggle out to the fleet, then serve its dump."""
        enabled = message.get("enabled")
        if enabled is not None and not isinstance(enabled, bool):
            raise wire.WireError(f"metrics enabled must be a bool, got {enabled!r}")
        if enabled is not None:
            for worker in self._workers:
                await self._forward(worker.index, "metrics", enabled=enabled)
            self.metrics.enabled = enabled
        return {"enabled": self.metrics.enabled, "metrics": await self.metrics_fleet()}

    async def _op_durability(self, message: dict[str, Any]) -> dict[str, Any]:
        """Fan the durability toggle out to every worker.

        WAL appends happen where the sessions live, so only the workers
        carry a log; the supervisor keeps its own flag in sync so it can
        re-apply the toggle to respawned processes (fresh WAL-backed
        workers default to appending on).
        """
        enabled = message.get("enabled")
        if enabled is not None and not isinstance(enabled, bool):
            raise wire.WireError(f"durability enabled must be a bool, got {enabled!r}")
        wal_backed = self._wal_dir is not None
        if enabled is not None:
            if enabled and not wal_backed:
                raise RuntimeError(
                    "durability needs a WAL directory (serve --wal-dir)"
                )
            if wal_backed:
                for worker in self._workers:
                    await self._forward(worker.index, "durability", enabled=enabled)
                self.durability = enabled
        return {"enabled": self.durability and wal_backed, "wal": wal_backed}

    async def metrics_fleet(self) -> dict[str, Any]:
        """Merge every worker registry into the fleet-wide view.

        Each reachable worker is scraped through the internal
        ``metrics`` op and folded into the cross-generation aggregator;
        an unreachable shard still serves its carried totals.  Worker
        metrics join the dump under a ``shard`` label (their session
        labels are worker-local ids), so supervisor-side counters are
        never double-counted.
        """
        for worker in self._workers:
            try:
                payload = await self._forward(worker.index, "metrics")
            except (ShardError, ServiceError):
                continue  # the carried totals below still count
            self._gen_agg.update(worker.index, worker.generation, payload["metrics"])
        fleet = self.metrics_dump()
        # The supervisor's step counter is a routing-level echo of the
        # same physical steps the workers count; the shard-labelled
        # worker series are the ground truth, so the echo leaves the
        # fleet view (the legacy ``stats`` dict keeps it for ``ping``,
        # and the ring series stays — it feeds the ingest sparkline and
        # is never summed).
        fleet["counters"].pop("repro_steps_ingested_total", None)
        for shard, total in sorted(self._gen_agg.shard_totals().items()):
            metricslib.merge_into(fleet, metricslib.relabel(total, shard=shard))
        return fleet

    async def _op_create(self, message: dict[str, Any]) -> dict[str, Any]:
        spec = message.get("spec")
        if not isinstance(spec, dict):
            raise wire.WireError("create needs a 'spec' object")
        async with self._placement:
            sid = self._new_sid()
            shard = self.ring.owner(sid)
            payload = await self._forward(shard, "create", spec=spec)
            self._routes[sid] = _Route(shard, payload["session"])
        return {"session": sid, "step": payload["step"], "shard": shard}

    async def _op_feed(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        async with route.lock:
            payload = await self._forward(
                route.shard,
                "feed",
                session=route.local,
                values=message.get("values"),
            )
            self.stats["steps_ingested"] += payload["step"] - route.step
            route.step = payload["step"]
        return {
            "session": sid,
            "step": payload["step"],
            "messages": payload["messages"],
        }

    async def _op_advance(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        async with route.lock:
            payload = await self._forward(
                route.shard,
                "advance",
                session=route.local,
                steps=message.get("steps"),
            )
            self.stats["steps_ingested"] += payload["step"] - route.step
            route.step = payload["step"]
        return {
            "session": sid,
            "step": payload["step"],
            "messages": payload["messages"],
            "done": payload["done"],
        }

    async def _op_query(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        async with route.lock:
            payload = await self._forward(route.shard, "query", session=route.local)
        return {**payload, "session": sid}

    async def _op_cost(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        async with route.lock:
            payload = await self._forward(route.shard, "cost", session=route.local)
        return {**payload, "session": sid}

    async def _op_snapshot(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        async with route.lock:
            payload = await self._forward(
                route.shard,
                "snapshot",
                session=route.local,
            )
        return {**payload, "session": sid}

    async def _op_restore(self, message: dict[str, Any]) -> dict[str, Any]:
        state = message.get("state")
        if not isinstance(state, (str, bytes, bytearray)):
            raise wire.WireError(
                "restore needs a 'state' checkpoint (base64 text or raw blob frame)"
            )
        async with self._placement:
            sid = self._new_sid()
            shard = self.ring.owner(sid)
            payload = await self._forward(shard, "restore", state=state)
            self._routes[sid] = _Route(shard, payload["session"], step=payload["step"])
        return {"session": sid, "step": payload["step"], "shard": shard}

    async def _op_finalize(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        async with route.lock:
            payload = await self._forward(
                route.shard,
                "finalize",
                session=route.local,
            )
            self._routes.pop(sid, None)  # a concurrent close may have won
        return {"session": sid, "result": payload["result"]}

    async def _op_close(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        async with route.lock:
            try:
                await self._forward(route.shard, "close", session=route.local)
            except (ShardError, ServiceError):
                # Unreachable worker or already-gone worker session: the
                # route is garbage either way, and dropping it is the only
                # way to hand the slot back to the session budget — close
                # must stay the client's escape hatch for a dead shard.
                pass
            self._routes.pop(sid, None)  # a concurrent close may have won
        return {"session": sid, "closed": True}

    async def _op_list(self, message: dict[str, Any]) -> dict[str, Any]:
        reverse = {
            (route.shard, route.local): sid for sid, route in self._routes.items()
        }
        sessions = []
        unreachable = []
        for worker in self._workers:
            try:
                payload = await self._forward(worker.index, "list")
            except ShardError:
                # A dead shard degrades only its own rows, matching the
                # per-session failure semantics (and _op_ping's shape).
                unreachable.append(worker.index)
                continue
            for row in payload["sessions"]:
                sid = reverse.get((worker.index, row["session"]))
                if sid is not None:
                    sessions.append({**row, "session": sid, "shard": worker.index})
        sessions.sort(key=lambda row: int(row["session"][1:]))
        return {"sessions": sessions, "unreachable_shards": unreachable}

    async def _op_migrate(self, message: dict[str, Any]) -> dict[str, Any]:
        sid, route = self._route(message)
        target = message.get("shard")
        if target is not None and not isinstance(target, int):
            raise wire.WireError(f"migrate shard must be an int, got {target!r}")
        async with self._placement:
            async with route.lock:
                return await self._migrate_locked(sid, route, target)

    #: Assigned below from the shared op registry: the supervisor serves
    #: the full vocabulary including ``migrate``, with ``hello`` and
    #: ``shutdown`` resolving to the inherited base-server handlers.
    _OPS: dict[str, Any]


ShardedMonitoringServer._OPS = ops.handler_table(
    ShardedMonitoringServer, supervisor=True
)


def _receive_port(receiver, process) -> int:
    """Wait (in an executor thread) for a worker's announced port."""
    deadline = time.monotonic() + _WORKER_START_TIMEOUT
    while time.monotonic() < deadline:
        if receiver.poll(0.2):
            try:
                return int(receiver.recv())
            except EOFError:
                # Death before the announce closes the pipe, and poll()
                # reports the EOF as readable — same diagnosis as below.
                process.join(5)
                raise ShardError(
                    f"worker {process.name} died during startup "
                    f"(exit code {process.exitcode})"
                ) from None
        if not process.is_alive():
            raise ShardError(
                f"worker {process.name} died during startup "
                f"(exit code {process.exitcode})"
            )
    raise ShardError(
        f"worker {process.name} did not announce a port within "
        f"{_WORKER_START_TIMEOUT:.0f}s"
    )
