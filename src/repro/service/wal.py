"""Write-ahead durability for serving sessions: log, checkpoint, recover.

The paper's monitoring protocols are long-lived by nature — ``F(t)`` is
tracked over an unbounded stream — so the value of a serving process is
exactly the continuity of its resident session state.  This module makes
that state survive process death: every *acknowledged* state-changing op
is appended to a per-server write-ahead log **before** its ack leaves
the process, and periodic checkpoints bound replay time by snapshotting
every session and truncating the log.

**Record format.**  One WAL record is::

    u32 crc32(body) | u32 len(body) | body

(little-endian), where ``body`` is one v2 binary frame
(:func:`repro.service.wire.encode_frame` of the replay message) — the
wire codec already gives observation batches a raw float64 payload and
checkpoints raw blob bytes, so the log reuses the exact framing the op
arrived in.  Records live in append-only segment files
``wal-<seq>.log``; a torn or corrupt record at the *tail* of the newest
segment is discarded on recovery (only an op whose ack never left the
process can live there), while corruption anywhere earlier is refused
loudly as :class:`WalError` — an acked op might be under it.

**Checkpoint-delta scheme.**  A checkpoint is a JSON ``manifest.json``
(written atomically via ``os.replace``) naming, per session, its step
and a blob file ``ckpt-<sid>-<step>.bin`` holding the session's
canonical snapshot (:meth:`repro.service.session.Session.snapshot` —
the blob is a pure function of state, the PR 3/6 determinism law).  The
delta part: a session whose step is unchanged since the previous
manifest keeps its existing blob file untouched — the caller passes
``blob=None`` and only changed sessions are re-pickled and re-written.
The cycle is crash-safe by ordering:

1. :meth:`WriteAheadLog.begin_checkpoint` rotates to a fresh segment —
   every record appended *during* the snapshot pass lands in a retained
   segment;
2. the owner snapshots each session under its slot lock;
3. :meth:`WriteAheadLog.commit_checkpoint` writes new blobs, replaces
   the manifest, and only then prunes segments older than the rotation
   point and blob files the new manifest no longer references.

A crash between any two steps leaves the *previous* manifest and every
segment it needs on disk.

**Recovery replay law.**  On startup :meth:`WriteAheadLog.recover`
returns the manifest's blobs plus every decoded record from segments at
or after the manifest's rotation point, in append order.  Replay is
idempotent by construction: each feed/advance record carries the
session's *post-op* step, so the owner skips records at or below the
restored step (a record can legally predate its session's snapshot —
see step 2 above), skips ``create``/``restore`` records whose sid is
already live, and replays ``finalize``/``close`` as the no-ops they
already are on a dead sid.  Replaying checkpoint+tail therefore
reproduces, bit for bit, the state a never-crashed twin holds — which
is what the chaos tests assert.

``kill -9`` durability needs no fsync: the page cache belongs to the
kernel, not the process.  The optional ``fsync`` mode (a latency
histogram tracks its cost) extends the guarantee to machine crashes.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Iterator, NamedTuple

from repro.service import wire

__all__ = [
    "DEFAULT_CHECKPOINT_BYTES",
    "MANIFEST_FORMAT",
    "RecoveredState",
    "WalError",
    "WriteAheadLog",
    "decode_record_body",
    "encode_record",
]

#: Rotate + checkpoint once this many bytes accumulate in the live
#: segment.  Bounds both disk footprint and worst-case replay time.
DEFAULT_CHECKPOINT_BYTES = 4 * 1024 * 1024

#: Manifest schema version (bumped on incompatible layout change).
MANIFEST_FORMAT = 1

#: Length-prefix framing for one record: crc32(body), len(body).
_RECORD_HEAD = struct.Struct("<II")

#: Ceiling on one record body — a v2 frame can never legally exceed
#: header + meta cap + payload cap, so a bigger length prefix is
#: corruption, not a big record.
_MAX_RECORD_BYTES = wire.HEADER_SIZE + wire.MAX_META_BYTES + wire.MAX_PAYLOAD_BYTES

_MANIFEST = "manifest.json"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_BLOB_PREFIX = "ckpt-"
_BLOB_SUFFIX = ".bin"


class WalError(RuntimeError):
    """The write-ahead log is unusable (corrupt manifest or mid-log
    corruption under records that may carry acknowledged ops)."""


class RecoveredState(NamedTuple):
    """Everything :meth:`WriteAheadLog.recover` hands back to the owner."""

    #: sid -> checkpoint blob bytes (from the newest manifest).
    sessions: dict[str, bytes]
    #: sid -> step recorded at checkpoint time.
    steps: dict[str, int]
    #: The session-id counter recorded at checkpoint time (replayed
    #: ``create``/``restore`` records bump it further via their sids).
    next_id: int
    #: Decoded replay messages, in append order.
    records: list[dict[str, Any]]
    #: Bytes discarded from a torn tail (0 on a clean shutdown).
    dropped_bytes: int


def encode_record(body: bytes) -> bytes:
    """Frame one record body for the log."""
    return _RECORD_HEAD.pack(zlib.crc32(body), len(body)) + body


def decode_record_body(body: bytes) -> dict[str, Any]:
    """One record body (a v2 frame) back into its replay message dict."""
    header = wire.parse_header(body)
    meta_end = wire.HEADER_SIZE + header.meta_len
    if len(body) != meta_end + header.payload_len:
        raise WalError(
            f"record body holds {len(body)} bytes, its frame header "
            f"declares {meta_end + header.payload_len}"
        )
    return wire.decode_frame(header, body[wire.HEADER_SIZE : meta_end], body[meta_end:])


def _iter_records(data: bytes, *, allow_torn_tail: bool) -> Iterator[bytes]:
    """Yield record bodies; stop at a torn tail or raise mid-log."""
    offset = 0
    total = len(data)
    while offset < total:
        remaining = total - offset
        torn: str | None = None
        if remaining < _RECORD_HEAD.size:
            torn = f"{remaining}-byte trailing fragment"
        else:
            crc, length = _RECORD_HEAD.unpack_from(data, offset)
            if length > _MAX_RECORD_BYTES:
                torn = f"impossible record length {length}"
            elif remaining < _RECORD_HEAD.size + length:
                torn = (
                    f"truncated record ({remaining - _RECORD_HEAD.size} of "
                    f"{length} body bytes)"
                )
            else:
                body = data[offset + _RECORD_HEAD.size : offset + _RECORD_HEAD.size + length]
                if zlib.crc32(body) != crc:
                    torn = "record checksum mismatch"
        if torn is not None:
            if allow_torn_tail:
                return
            raise WalError(f"corrupt WAL record mid-log at offset {offset}: {torn}")
        yield body
        offset += _RECORD_HEAD.size + length


class WriteAheadLog:
    """One server's durability state: segments, blobs, and the manifest.

    All methods run on the owner's event-loop thread — appends happen
    in op handlers after the state change succeeds and before the ack
    is written, so the log needs no locking of its own.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = False,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        metrics: Any = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.checkpoint_bytes = int(checkpoint_bytes)
        self._file = None
        self._bytes_since_checkpoint = 0
        self._manifest = self._read_manifest()
        existing = self._segment_seqs()
        base = self._manifest["segment"] if self._manifest else 0
        #: Seq of the segment new appends go to — always strictly after
        #: every segment already on disk, so replay order is total.
        self._seq = max([base, *existing], default=0) + 1
        if metrics is not None:
            self._c_records = metrics.counter("repro_wal_records_total")
            self._c_bytes = metrics.counter("repro_wal_bytes_total")
            self._c_checkpoints = metrics.counter("repro_wal_checkpoints_total")
            self._h_fsync = metrics.histogram("repro_wal_fsync_seconds")
        else:
            self._c_records = self._c_bytes = self._c_checkpoints = None
            self._h_fsync = None

    # ------------------------------------------------------------------ #
    # Layout helpers
    # ------------------------------------------------------------------ #
    def _segment_path(self, seq: int) -> Path:
        return self.directory / f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"

    def _segment_seqs(self) -> list[int]:
        seqs = []
        for path in self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"):
            stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            if stem.isdigit():
                seqs.append(int(stem))
        return sorted(seqs)

    @staticmethod
    def _blob_name(sid: str, step: int) -> str:
        return f"{_BLOB_PREFIX}{sid}-{step}{_BLOB_SUFFIX}"

    def _read_manifest(self) -> dict[str, Any] | None:
        path = self.directory / _MANIFEST
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise WalError(f"cannot read WAL manifest {path}: {exc}") from exc
        try:
            manifest = json.loads(raw)
            if (
                not isinstance(manifest, dict)
                or manifest.get("format") != MANIFEST_FORMAT
                or not isinstance(manifest.get("segment"), int)
                or not isinstance(manifest.get("next_id"), int)
                or not isinstance(manifest.get("sessions"), dict)
            ):
                raise ValueError(f"unrecognized manifest shape: {raw[:200]!r}")
        except ValueError as exc:
            raise WalError(f"corrupt WAL manifest {path}: {exc}") from None
        return manifest

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    @property
    def bytes_since_checkpoint(self) -> int:
        return self._bytes_since_checkpoint

    def should_checkpoint(self) -> bool:
        return self._bytes_since_checkpoint >= self.checkpoint_bytes

    def append(self, message: dict[str, Any]) -> None:
        """Durably record one acknowledged op (call *before* the ack).

        ``message`` is the replay form: ``op``, ``session``, the op's
        operands, and — for feed/advance — the session's post-op
        ``step`` (the idempotence key for replay).
        """
        record = encode_record(wire.encode_frame(message))
        if self._file is None:
            self._file = open(self._segment_path(self._seq), "ab")
        self._file.write(record)
        # Every append reaches the page cache before the ack: a record
        # stuck in this process's userspace buffer would NOT survive
        # kill -9, which is the exact failure durability must cover.
        self._file.flush()
        if self.fsync:
            start = time.perf_counter()
            os.fsync(self._file.fileno())
            if self._h_fsync is not None:
                self._h_fsync.observe(time.perf_counter() - start)
        self._bytes_since_checkpoint += len(record)
        if self._c_records is not None:
            self._c_records.inc()
            self._c_bytes.inc(len(record))

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def manifest_steps(self) -> dict[str, int]:
        """sid -> step of the previous checkpoint (for delta reuse)."""
        if not self._manifest:
            return {}
        return {
            sid: entry["step"] for sid, entry in self._manifest["sessions"].items()
        }

    def begin_checkpoint(self) -> int:
        """Rotate to a fresh segment; returns the manifest's replay-start
        seq.  Records appended between begin and commit land in the new
        (retained) segment, so snapshotting may interleave with serving.
        """
        if self._file is not None:
            self._file.close()
            self._file = None
            self._seq += 1
        self._bytes_since_checkpoint = 0
        return self._seq

    def commit_checkpoint(
        self,
        segment: int,
        entries: dict[str, tuple[int, bytes | None]],
        next_id: int,
    ) -> None:
        """Publish a checkpoint: ``entries`` maps sid -> (step, blob),
        with ``blob=None`` reusing the previous manifest's file for a
        session unchanged since then (the delta scheme).  Pruning of
        superseded segments and blobs happens only after the manifest
        replace succeeds.
        """
        previous = self._manifest["sessions"] if self._manifest else {}
        sessions: dict[str, dict[str, Any]] = {}
        for sid, (step, blob) in entries.items():
            if blob is None:
                entry = previous.get(sid)
                if entry is None or entry["step"] != step:
                    raise WalError(
                        f"cannot reuse checkpoint blob for {sid}@{step}: the "
                        f"previous manifest records {entry!r}"
                    )
                sessions[sid] = dict(entry)
                continue
            name = self._blob_name(sid, step)
            path = self.directory / name
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(blob)
            if self.fsync:
                with open(tmp, "rb") as handle:
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
            sessions[sid] = {"step": step, "blob": name}
        manifest = {
            "format": MANIFEST_FORMAT,
            "segment": segment,
            "next_id": next_id,
            "sessions": sessions,
        }
        path = self.directory / _MANIFEST
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, separators=(",", ":"), sort_keys=True))
        if self.fsync:
            with open(tmp, "rb") as handle:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._manifest = manifest
        if self._c_checkpoints is not None:
            self._c_checkpoints.inc()
        self._prune(segment, {entry["blob"] for entry in sessions.values()})

    def _prune(self, keep_from_segment: int, keep_blobs: set[str]) -> None:
        for seq in self._segment_seqs():
            if seq < keep_from_segment:
                self._segment_path(seq).unlink(missing_ok=True)
        for path in self.directory.glob(f"{_BLOB_PREFIX}*{_BLOB_SUFFIX}"):
            if path.name not in keep_blobs:
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> RecoveredState:
        """Read checkpoint + replay tail (call before serving traffic)."""
        sessions: dict[str, bytes] = {}
        steps: dict[str, int] = {}
        next_id = 0
        start_seq = 1
        if self._manifest is not None:
            next_id = self._manifest["next_id"]
            start_seq = self._manifest["segment"]
            for sid, entry in self._manifest["sessions"].items():
                blob_path = self.directory / entry["blob"]
                try:
                    sessions[sid] = blob_path.read_bytes()
                except OSError as exc:
                    raise WalError(
                        f"WAL manifest references missing checkpoint blob "
                        f"{entry['blob']}: {exc}"
                    ) from exc
                steps[sid] = entry["step"]
        records: list[dict[str, Any]] = []
        dropped = 0
        replay_seqs = [seq for seq in self._segment_seqs() if seq >= start_seq]
        for position, seq in enumerate(replay_seqs):
            data = self._segment_path(seq).read_bytes()
            last = position == len(replay_seqs) - 1
            consumed = 0
            for body in _iter_records(data, allow_torn_tail=last):
                records.append(decode_record_body(body))
                consumed += _RECORD_HEAD.size + len(body)
            dropped += len(data) - consumed
        return RecoveredState(sessions, steps, next_id, records, dropped)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
