"""The service's wire protocols: JSON lines (v1) and binary frames (v2).

**v1 — JSON lines.**  Every message is one JSON object terminated by
``\\n``.  Requests carry ``{"id": <client-chosen>, "op": <name>,
...operands}``; the server answers each with exactly one ``{"id":
<echoed>, "ok": true, ...}`` or ``{"id": <echoed>, "ok": false,
"error": str, "error_type": str}`` line, in request order per
connection.  Observation batches travel in one of two encodings,
chosen per call:

- ``json`` — a plain nested list (``[[...], ...]``): readable,
  interoperable, slow;
- ``b64`` — ``{"b64": <base64>, "shape": [B, n]}`` wrapping the raw
  little-endian float64 buffer: one decode per batch instead of B·n
  float parses, but still +33% bytes and a JSON parse of the bulk.

Checkpoints travel base64-encoded in v1 (the blob format is
:mod:`repro.service.session`'s pickle-based snapshot; the server
restores through a restricted unpickler).

**v2 — length-prefixed binary frames.**  One frame is a fixed
:data:`HEADER_SIZE`-byte little-endian header (see :data:`HEADER`),
then ``meta_len`` bytes of compact JSON metadata, then ``payload_len``
bytes of raw payload::

    magic "R2" | version | kind+flags | code | id | session | meta_len | payload_len
      2 bytes  |  u8     |    u8      |  u16 | u64 |  u64    |  u32     |  u32

``code`` is the op code on requests (:data:`OP_CODES`) and the status
on responses (0 = ok).  ``session`` is the numeric part of the ``sN``
session id (0 = none) so a routing front end can place a frame from
the header alone.  The payload carries observation batches as the raw
little-endian float64 buffer (decoded with a zero-copy
``np.frombuffer``; its ``(B, n)`` shape rides in the meta segment) and
checkpoints as raw bytes — no base64, no JSON parse of bulk data.
Bulk fields therefore never appear in the meta JSON on the wire; the
codec splits them out on encode and splices them back on decode, so
both protocols present the same message dicts to server and client.

Connections *start* in v1 and may upgrade: a client sends
``{"op": "hello", "wire": 2}`` as a JSON line, and iff the server
grants ``{"ok": true, "wire": 2}`` both sides switch to v2 frames for
the rest of the connection.  A peer that never sends ``hello`` keeps
speaking v1 bit-identically, which is the whole negotiation story.

The op vocabulary is defined by :mod:`repro.service.ops` (one registry
shared with the servers and the fuzz tier); this module owns only
framing and value encoding, shared by server, client and load
generator.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Any, NamedTuple

import numpy as np

from repro.service.ops import OP_CODES, OP_NAMES

__all__ = [
    "FLAG_RESPONSE",
    "HEADER_SIZE",
    "KIND_BLOB",
    "KIND_NONE",
    "KIND_VALUES",
    "MAX_LINE_BYTES",
    "MAX_META_BYTES",
    "MAX_PAYLOAD_BYTES",
    "OP_CODES",
    "OP_NAMES",
    "PROTOCOL_VERSION",
    "WIRE_V1",
    "WIRE_V2",
    "FrameHeader",
    "WireError",
    "decode_frame",
    "decode_line",
    "decode_values",
    "encode_error_frame",
    "encode_frame",
    "encode_line",
    "encode_v1_message",
    "encode_values",
    "pack_header",
    "parse_header",
    "read_frame",
    "session_number",
    "set_nodelay",
]

#: Protocol version announced by ``ping``; bumped on incompatible change
#: to the op vocabulary (the framing version is negotiated separately).
PROTOCOL_VERSION = 1

#: Framing versions a connection can negotiate through ``hello``.
WIRE_V1 = 1
WIRE_V2 = 2

#: Hard per-line cap — bounds a batch at ~2M float64 values, and bounds
#: what a misbehaving peer can make the reader buffer.
MAX_LINE_BYTES = 32 * 1024 * 1024

#: v2 caps, the frame-level twins of :data:`MAX_LINE_BYTES`: the raw
#: payload gets the same budget as a whole v1 line, the JSON metadata
#: segment far less (it carries no bulk data by construction).
MAX_PAYLOAD_BYTES = MAX_LINE_BYTES
MAX_META_BYTES = 4 * 1024 * 1024


class WireError(ValueError):
    """A frame or value payload violates the wire protocol."""


# --------------------------------------------------------------------- #
# v2 binary framing
# --------------------------------------------------------------------- #

#: Fixed v2 frame header (little-endian, 30 bytes).
HEADER = struct.Struct("<2sBBHQQII")
HEADER_SIZE = HEADER.size
MAGIC = b"R2"

#: Payload kinds (low nibble of the kind byte).
KIND_NONE = 0
KIND_VALUES = 1  # raw little-endian float64 (B, n) batch; shape in meta
KIND_BLOB = 2  # raw checkpoint bytes

#: High bit of the kind byte: the frame is a response, ``code`` is a
#: status (0 = ok) instead of an op code.
FLAG_RESPONSE = 0x80
_KIND_MASK = 0x0F

# Request op codes (name <-> code), re-exported from the shared
# registry of :mod:`repro.service.ops`.  Codes are part of the wire
# format and must never be reassigned, only appended — see the registry.

#: Response status codes.
STATUS_OK = 0
STATUS_ERROR = 1


class FrameHeader(NamedTuple):
    """A parsed v2 fixed header."""

    kind: int  # payload kind, :data:`FLAG_RESPONSE` already stripped
    response: bool
    code: int  # op code (request) or status (response)
    request_id: int
    session: int  # numeric session id, 0 = none
    meta_len: int
    payload_len: int


def pack_header(
    *,
    kind: int,
    code: int,
    request_id: int,
    session: int,
    meta_len: int,
    payload_len: int,
    response: bool = False,
) -> bytes:
    """The 30-byte fixed header for one v2 frame."""
    flags = kind | (FLAG_RESPONSE if response else 0)
    return HEADER.pack(
        MAGIC, WIRE_V2, flags, code, request_id, session, meta_len, payload_len
    )


def parse_header(data: bytes) -> FrameHeader:
    """Validate and parse a fixed header; raises :class:`WireError`."""
    if len(data) < HEADER_SIZE:
        raise WireError(
            f"truncated frame header ({len(data)} of {HEADER_SIZE} bytes)"
        )
    magic, version, flags, code, request_id, session, meta_len, payload_len = (
        HEADER.unpack(data[:HEADER_SIZE])
    )
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_V2:
        raise WireError(f"unsupported wire version {version} (expected {WIRE_V2})")
    kind = flags & _KIND_MASK
    if kind not in (KIND_NONE, KIND_VALUES, KIND_BLOB):
        raise WireError(f"unknown payload kind {kind}")
    if meta_len > MAX_META_BYTES:
        raise WireError(f"meta of {meta_len} bytes exceeds the {MAX_META_BYTES} cap")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"payload of {payload_len} bytes exceeds the {MAX_PAYLOAD_BYTES} cap"
        )
    return FrameHeader(
        kind, bool(flags & FLAG_RESPONSE), code, request_id, session, meta_len,
        payload_len,
    )


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[FrameHeader, bytes, bytes] | None:
    """Read one v2 frame: ``(header, meta bytes, payload bytes)``.

    Returns ``None`` on a clean EOF at a frame boundary.  A header that
    fails validation raises :class:`WireError` (the stream cannot be
    resynchronized — the connection should answer once and close); a
    connection dying mid-frame raises the underlying
    :class:`asyncio.IncompleteReadError`.
    """
    try:
        magic = await reader.readexactly(len(MAGIC))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise WireError(
            f"truncated frame header ({len(exc.partial)} of {HEADER_SIZE} bytes)"
        ) from None
    # Checked before the rest of the header arrives: a desynchronized
    # peer (e.g. one still writing JSON lines) fails fast on its first
    # two bytes instead of parking the reader until 30 show up.
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    try:
        head = magic + await reader.readexactly(HEADER_SIZE - len(MAGIC))
    except asyncio.IncompleteReadError as exc:
        raise WireError(
            f"truncated frame header ({len(MAGIC) + len(exc.partial)} of "
            f"{HEADER_SIZE} bytes)"
        ) from None
    header = parse_header(head)
    meta = await reader.readexactly(header.meta_len) if header.meta_len else b""
    payload = (
        await reader.readexactly(header.payload_len) if header.payload_len else b""
    )
    return header, meta, payload


def session_number(session: Any) -> int:
    """The numeric part of an ``sN`` session id (0 for ``None``)."""
    if session is None:
        return 0
    if isinstance(session, str) and session.startswith("s") and session[1:].isdigit():
        number = int(session[1:])
        if 0 < number <= 0xFFFFFFFFFFFFFFFF:
            return number
    raise WireError(
        f"the v2 wire carries numeric session ids ('sN'), got {session!r}"
    )


def _split_bulk(
    message: dict[str, Any],
) -> tuple[int, bytes | memoryview, dict[str, Any]]:
    """Split a message's bulk field into ``(kind, payload bytes, meta)``.

    Only well-formed bulk values leave the meta segment: a raw
    ``ndarray`` batch, a v1-style ``{"b64", "shape"}`` dict or nested
    list, raw checkpoint ``bytes``, or a valid base64 checkpoint
    string.  Anything else (including deliberately malformed test
    payloads) stays in the JSON meta verbatim, so the *receiving* side
    rejects it with the same error a v1 peer would see.
    """
    values = message.get("values")
    if isinstance(values, np.ndarray):
        block = np.asarray(values, dtype=np.float64)
        if block.ndim == 1:
            block = block[None, :]
        if block.ndim != 2:
            raise WireError(f"values must be a (B, n) batch, got shape {block.shape}")
        meta = {k: v for k, v in message.items() if k != "values"}
        meta["shape"] = [int(block.shape[0]), int(block.shape[1])]
        return KIND_VALUES, _payload_view(block), meta
    if (
        isinstance(values, dict)
        and isinstance(values.get("b64"), str)
        and isinstance(values.get("shape"), (list, tuple))
    ):
        block = decode_values(values)  # validates b64/shape like a v1 server
        meta = {k: v for k, v in message.items() if k != "values"}
        meta["shape"] = [int(block.shape[0]), int(block.shape[1])]
        return KIND_VALUES, _payload_view(block), meta
    if isinstance(values, list):
        # A json-encoded batch must convert too: left as meta text it
        # would hit the 4 MiB meta cap long before the 32 MiB payload
        # budget, breaking wire transparency for v1 clients whose feeds
        # a sharded supervisor re-encodes onto v2 worker links.
        try:
            block = decode_values(values)
        except WireError:
            pass  # malformed list: the receiving side rejects it
        else:
            meta = {k: v for k, v in message.items() if k != "values"}
            meta["shape"] = [int(block.shape[0]), int(block.shape[1])]
            return KIND_VALUES, _payload_view(block), meta
    state = message.get("state")
    if isinstance(state, (bytes, bytearray, memoryview)):
        meta = {k: v for k, v in message.items() if k != "state"}
        return KIND_BLOB, state if isinstance(state, bytes) else bytes(state), meta
    if isinstance(state, str):
        try:
            blob = base64.b64decode(state, validate=True)
        except (TypeError, ValueError):
            blob = None  # leave it in meta; the receiver rejects it
        if blob is not None:
            meta = {k: v for k, v in message.items() if k != "state"}
            return KIND_BLOB, blob, meta
    return KIND_NONE, b"", message


def _payload_view(block: np.ndarray) -> memoryview:
    """The batch's raw little-endian bytes without an intermediate copy
    (``ascontiguousarray`` is a no-op view for the common case of an
    already-contiguous ``<f8`` array, and the byte-cast memoryview
    feeds ``bytes.join`` / ``writer.write`` directly)."""
    return memoryview(np.ascontiguousarray(block, dtype="<f8")).cast("B")


def encode_frame(message: dict[str, Any], *, response: bool = False) -> bytes:
    """One protocol message as a v2 binary frame.

    The message dict is the same shape the v1 codec carries; ``id``,
    ``session``, the op/status and the bulk field (``values`` /
    ``state``) move into the fixed header and raw payload, everything
    else into the JSON meta segment.
    """
    kind, payload, meta = _split_bulk(message)
    meta = {
        k: v
        for k, v in meta.items()
        if k not in ("id", "session", "op", "ok")
    }
    request_id = message.get("id") or 0
    if not isinstance(request_id, int) or not 0 <= request_id <= 0xFFFFFFFFFFFFFFFF:
        raise WireError(f"the v2 wire carries integer request ids, got {request_id!r}")
    if response:
        code = STATUS_OK if message.get("ok", True) else STATUS_ERROR
    else:
        op = message.get("op")
        code = OP_CODES.get(op)
        if code is None:
            raise WireError(f"unknown op {op!r}; valid: {', '.join(OP_CODES)}")
    meta_bytes = (
        json.dumps(meta, separators=(",", ":")).encode("utf-8") if meta else b""
    )
    if len(meta_bytes) > MAX_META_BYTES:
        raise WireError(
            f"meta of {len(meta_bytes)} bytes exceeds the {MAX_META_BYTES} cap"
        )
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireError(
            f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD_BYTES} cap"
        )
    header = pack_header(
        kind=kind,
        code=code,
        request_id=request_id,
        session=session_number(message.get("session")),
        meta_len=len(meta_bytes),
        payload_len=len(payload),
        response=response,
    )
    return b"".join((header, meta_bytes, payload))


def encode_error_frame(request_id: int, exc: BaseException) -> bytes:
    """An error response frame mirroring the v1 error envelope."""
    return encode_frame(
        {
            "id": request_id,
            "ok": False,
            "error": str(exc) or type(exc).__name__,
            "error_type": getattr(exc, "error_type", "") or type(exc).__name__,
        },
        response=True,
    )


def decode_frame(
    header: FrameHeader, meta_bytes: bytes, payload: bytes
) -> dict[str, Any]:
    """A received v2 frame back into the protocol's message dict.

    Observation payloads come back as a zero-copy ``np.frombuffer``
    view of the payload bytes (validated finite — one vectorized pass),
    checkpoints as raw ``bytes``.
    """
    if meta_bytes:
        try:
            meta = json.loads(meta_bytes)
        except (ValueError, UnicodeDecodeError) as exc:
            raise WireError(f"frame meta is not valid JSON: {exc}") from None
        if not isinstance(meta, dict):
            raise WireError(
                f"frame meta must be a JSON object, got {type(meta).__name__}"
            )
    else:
        meta = {}
    message: dict[str, Any] = {"id": header.request_id}
    if header.response:
        message["ok"] = header.code == STATUS_OK
    else:
        op = OP_NAMES.get(header.code)
        if op is None:
            raise WireError(f"unknown op code {header.code}")
        message["op"] = op
    if header.session:
        message["session"] = f"s{header.session}"
    if header.kind == KIND_VALUES:
        shape = meta.pop("shape", None)
        if (
            not isinstance(shape, (list, tuple))
            or len(shape) != 2
            or not all(isinstance(s, int) and s > 0 for s in shape)
        ):
            raise WireError(f"bad values shape {shape!r}")
        expected = shape[0] * shape[1] * 8
        if len(payload) != expected:
            raise WireError(
                f"values payload holds {len(payload)} bytes, "
                f"shape {list(shape)} needs {expected}"
            )
        block = np.frombuffer(payload, dtype="<f8").reshape(shape[0], shape[1])
        message["values"] = _finite(block)
    elif header.kind == KIND_BLOB:
        message["state"] = payload
    message.update(meta)
    return message


def set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle on a stream's socket (request/response frames are
    small; coalescing them just adds latency).  Best-effort: transports
    without a socket (tests, unix pipes) are left alone."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, ValueError):
            pass


# --------------------------------------------------------------------- #
# v1 JSON lines
# --------------------------------------------------------------------- #


def encode_line(message: dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def encode_v1_message(message: dict[str, Any]) -> bytes:
    """One message as a v1 line, converting raw bulk fields to text.

    The handlers and client ops traffic in the canonical forms (raw
    ``bytes`` checkpoints, ``ndarray`` batches); this is the v1 edge
    that base64/JSON-encodes them for the line protocol.
    """
    state = message.get("state")
    if isinstance(state, (bytes, bytearray, memoryview)):
        message = {**message, "state": encode_blob(bytes(state))}
    values = message.get("values")
    if isinstance(values, np.ndarray):
        message = {**message, "values": encode_values(values)}
    return encode_line(message)


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received line; raises :class:`WireError` on bad frames."""
    if len(line) > MAX_LINE_BYTES:
        raise WireError(f"frame of {len(line)} bytes exceeds the {MAX_LINE_BYTES} cap")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise WireError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def encode_values(block: np.ndarray, encoding: str = "b64") -> Any:
    """An observation batch as its wire representation."""
    block = np.asarray(block, dtype=np.float64)
    if block.ndim == 1:
        block = block[None, :]
    if block.ndim != 2:
        raise WireError(f"values must be a (B, n) batch, got shape {block.shape}")
    if encoding == "b64":
        buf = np.ascontiguousarray(block, dtype="<f8")
        return {
            "b64": base64.b64encode(buf.tobytes()).decode("ascii"),
            "shape": [int(block.shape[0]), int(block.shape[1])],
        }
    if encoding == "json":
        return block.tolist()
    raise WireError(f"unknown values encoding {encoding!r} (use 'b64' or 'json')")


def decode_values(payload: Any) -> np.ndarray:
    """An observation batch back from any wire encoding.

    Returns a finite float64 ``(B, n)`` array.  A v2 frame decode has
    already produced the array (zero-copy) and validated it, so
    ``ndarray`` input passes straight through; batch-width-vs-session
    agreement stays the engine's job.
    """
    if isinstance(payload, np.ndarray):
        return payload
    if isinstance(payload, dict):
        try:
            raw = base64.b64decode(payload["b64"], validate=True)
            shape = payload["shape"]
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"bad b64 values payload: {exc}") from None
        if (
            not isinstance(shape, (list, tuple))
            or len(shape) != 2
            or not all(isinstance(s, int) and s > 0 for s in shape)
        ):
            raise WireError(f"bad values shape {shape!r}")
        expected = shape[0] * shape[1] * 8
        if len(raw) != expected:
            raise WireError(
                f"values buffer holds {len(raw)} bytes, shape {shape} needs {expected}"
            )
        return _finite(np.frombuffer(raw, dtype="<f8").reshape(shape[0], shape[1]))
    if isinstance(payload, list):
        try:
            block = np.asarray(payload, dtype=np.float64)
        except (ValueError, TypeError) as exc:
            raise WireError(f"bad json values payload: {exc}") from None
        if block.ndim == 1:
            block = block[None, :]
        if block.ndim != 2:
            raise WireError(f"values must be a (B, n) batch, got shape {block.shape}")
        return _finite(block)
    raise WireError(f"values must be a list or a b64 object, got {type(payload).__name__}")


def _finite(block: np.ndarray) -> np.ndarray:
    """Reject non-finite observation batches at the wire (one vectorized
    pass), so every protocol fails them the same way — as a
    :class:`WireError`, before any session state is touched."""
    if not np.all(np.isfinite(block)):
        raise WireError("values payload contains non-finite floats")
    return block


def encode_blob(blob: bytes) -> str:
    """A binary checkpoint as transportable text."""
    return base64.b64encode(blob).decode("ascii")


def decode_blob(text: Any) -> bytes:
    """The checkpoint bytes back from either wire encoding (v1 base64
    text, or the raw bytes a v2 blob frame already carries)."""
    if isinstance(text, (bytes, bytearray, memoryview)):
        return bytes(text)
    try:
        return base64.b64decode(text, validate=True)
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad checkpoint payload: {exc}") from None
