"""The service's wire protocol: JSON lines over TCP.

Every message is one JSON object terminated by ``\\n``.  Requests carry
``{"id": <client-chosen>, "op": <name>, ...operands}``; the server
answers each with exactly one ``{"id": <echoed>, "ok": true, ...}`` or
``{"id": <echoed>, "ok": false, "error": str, "error_type": str}``
line, in request order per connection.

Observation batches travel in one of two encodings, chosen per call:

- ``json`` — a plain nested list (``[[...], ...]``): readable,
  interoperable, slow;
- ``b64`` — ``{"b64": <base64>, "shape": [B, n]}`` wrapping the raw
  little-endian float64 buffer: the load generator's fast path (one
  decode per batch instead of B·n float parses).

Checkpoints travel base64-encoded (the blob format is
:mod:`repro.service.session`'s pickle-based snapshot; the server
restores through a restricted unpickler).

The op vocabulary is defined by :mod:`repro.service.server`; this
module owns only framing and value encoding, shared by server, client
and load generator.
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "WireError",
    "decode_line",
    "decode_values",
    "encode_line",
    "encode_values",
]

#: Protocol version announced by ``ping``; bumped on incompatible change.
PROTOCOL_VERSION = 1

#: Hard per-line cap — bounds a batch at ~2M float64 values, and bounds
#: what a misbehaving peer can make the reader buffer.
MAX_LINE_BYTES = 32 * 1024 * 1024


class WireError(ValueError):
    """A frame or value payload violates the wire protocol."""


def encode_line(message: dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received line; raises :class:`WireError` on bad frames."""
    if len(line) > MAX_LINE_BYTES:
        raise WireError(f"frame of {len(line)} bytes exceeds the {MAX_LINE_BYTES} cap")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise WireError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def encode_values(block: np.ndarray, encoding: str = "b64") -> Any:
    """An observation batch as its wire representation."""
    block = np.asarray(block, dtype=np.float64)
    if block.ndim == 1:
        block = block[None, :]
    if block.ndim != 2:
        raise WireError(f"values must be a (B, n) batch, got shape {block.shape}")
    if encoding == "b64":
        buf = np.ascontiguousarray(block, dtype="<f8")
        return {
            "b64": base64.b64encode(buf.tobytes()).decode("ascii"),
            "shape": [int(block.shape[0]), int(block.shape[1])],
        }
    if encoding == "json":
        return block.tolist()
    raise WireError(f"unknown values encoding {encoding!r} (use 'b64' or 'json')")


def decode_values(payload: Any) -> np.ndarray:
    """An observation batch back from either wire encoding.

    Returns a float64 ``(B, n)`` array.  Shape/finiteness validation is
    the engine's job (:meth:`MonitoringEngine.advance` checks pushed
    blocks once); this only undoes the transport encoding.
    """
    if isinstance(payload, dict):
        try:
            raw = base64.b64decode(payload["b64"], validate=True)
            shape = payload["shape"]
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"bad b64 values payload: {exc}") from None
        if (
            not isinstance(shape, (list, tuple))
            or len(shape) != 2
            or not all(isinstance(s, int) and s > 0 for s in shape)
        ):
            raise WireError(f"bad values shape {shape!r}")
        expected = shape[0] * shape[1] * 8
        if len(raw) != expected:
            raise WireError(
                f"values buffer holds {len(raw)} bytes, shape {shape} needs {expected}"
            )
        return np.frombuffer(raw, dtype="<f8").reshape(shape[0], shape[1])
    if isinstance(payload, list):
        try:
            block = np.asarray(payload, dtype=np.float64)
        except (ValueError, TypeError) as exc:
            raise WireError(f"bad json values payload: {exc}") from None
        if block.ndim == 1:
            block = block[None, :]
        if block.ndim != 2:
            raise WireError(f"values must be a (B, n) batch, got shape {block.shape}")
        return block
    raise WireError(f"values must be a list or a b64 object, got {type(payload).__name__}")


def encode_blob(blob: bytes) -> str:
    """A binary checkpoint as transportable text."""
    return base64.b64encode(blob).decode("ascii")


def decode_blob(text: str) -> bytes:
    """The checkpoint bytes back from :func:`encode_blob`."""
    try:
        return base64.b64decode(text, validate=True)
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad checkpoint payload: {exc}") from None
