"""Stream and workload generators.

The paper evaluates nothing empirically, but its model is precise about the
input: each node observes one natural number per time step.  This package
provides

- :class:`~repro.streams.base.Trace` — an immutable ``(T, n)`` value
  matrix implementing the engine's :class:`~repro.model.engine.ValueSource`
  protocol, plus ground-truth helpers (Δ, k-th-largest series, σ(t)),
- synthetic generators (:mod:`repro.streams.synthetic`),
- the paper's motivating workloads (:mod:`repro.streams.workloads`):
  web-cluster load balancing and noisy sensor fields,
- adaptive adversaries (:mod:`repro.streams.adversarial`), most notably
  the Theorem 5.1 lower-bound construction, and
- value transforms (:mod:`repro.streams.transforms`), e.g. the
  distinctness perturbation the exact problem requires.
"""

from repro.streams.base import Trace
from repro.streams.synthetic import (
    iid_uniform,
    random_walk,
    sine_drift,
    step_levels,
)
from repro.streams.workloads import cluster_load, sensor_field
from repro.streams.adversarial import LowerBoundAdversary, oscillation_trace
from repro.streams.transforms import clip_trace, make_distinct, quantize

__all__ = [
    "Trace",
    "LowerBoundAdversary",
    "cluster_load",
    "clip_trace",
    "iid_uniform",
    "make_distinct",
    "oscillation_trace",
    "quantize",
    "random_walk",
    "sensor_field",
    "sine_drift",
    "step_levels",
]
