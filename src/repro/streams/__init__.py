"""Stream and workload generators.

The paper evaluates nothing empirically, but its model is precise about the
input: each node observes one natural number per time step.  This package
provides

- :class:`~repro.streams.base.Trace` — an immutable ``(T, n)`` value
  matrix implementing the engine's :class:`~repro.model.engine.ValueSource`
  protocol, plus ground-truth helpers (Δ, k-th-largest series, σ(t)),
- :class:`~repro.streams.streaming.StreamingSource` (alias
  :class:`ChunkedTrace`) — the same protocol generated lazily in blocks,
  so horizons of 10⁶–10⁷ steps run in O(n·block) memory,
- synthetic generators (:mod:`repro.streams.synthetic`),
- the paper's motivating workloads (:mod:`repro.streams.workloads`):
  web-cluster load balancing and noisy sensor fields,
- scenario generators beyond the paper (:mod:`repro.streams.scenarios`):
  heavy-tail loads, Markov regimes, drifting walks, correlated sensor
  clusters, sliding-window churn, and file-backed replay,
- the workload registry (:mod:`repro.streams.registry`) resolving every
  generator by slug with a declared parameter schema — the seam the CLI
  and sweep grids use to treat the workload as data,
- adaptive adversaries (:mod:`repro.streams.adversarial`), most notably
  the Theorem 5.1 lower-bound construction, and
- value transforms (:mod:`repro.streams.transforms`), e.g. the
  distinctness perturbation the exact problem requires.
"""

from repro.streams import registry
from repro.streams.base import Trace
from repro.streams.scenarios import (
    correlated_sensors,
    drifting_walk,
    load_trace,
    markov_levels,
    replay_trace,
    save_trace,
    window_churn,
    zipf_load,
)
from repro.streams.streaming import ChunkedTrace, StreamingSource
from repro.streams.synthetic import (
    iid_uniform,
    random_walk,
    sine_drift,
    step_levels,
)
from repro.streams.workloads import cluster_load, sensor_field
from repro.streams.adversarial import LowerBoundAdversary, oscillation_trace
from repro.streams.transforms import clip_trace, make_distinct, quantize

__all__ = [
    "ChunkedTrace",
    "LowerBoundAdversary",
    "StreamingSource",
    "Trace",
    "clip_trace",
    "cluster_load",
    "correlated_sensors",
    "drifting_walk",
    "iid_uniform",
    "load_trace",
    "make_distinct",
    "markov_levels",
    "oscillation_trace",
    "quantize",
    "random_walk",
    "registry",
    "replay_trace",
    "save_trace",
    "sensor_field",
    "sine_drift",
    "step_levels",
    "window_churn",
    "zipf_load",
]
