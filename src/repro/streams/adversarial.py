"""Adversarial inputs, most importantly the Theorem 5.1 lower bound.

The paper's adversaries are *adaptive*: they know the algorithm's code,
all node/server state and past coin flips, and choose the next values
accordingly (Sect. 2.1).  :class:`LowerBoundAdversary` implements the
Ω(σ/k) construction of Theorem 5.1 as a :class:`~repro.model.engine.ValueSource`
that inspects the online algorithm's *current filters* each step:

- σ "band" nodes start at a common value ``y0`` (the remaining ``n − σ``
  sit clearly below);
- while more than ``k`` band nodes remain at ``y0``, the adversary picks
  one whose filter forbids the drop (one must exist while the online
  filter set is valid) and drops it to ``y1 < (1−ε)·y0``, forcing ≥ 1
  online message;
- when only ``k`` remain, the epoch ends and every band node is reset to
  ``y0`` ("by essentially repeating these ideas, the input stream can be
  extended to an arbitrary length").

The adversary logs the values it plays, so the resulting
:class:`~repro.streams.base.Trace` feeds the offline-OPT computation: per
epoch OPT pays O(k) (one filter per survivor plus a broadcast) while any
filter-based online algorithm pays ≥ σ − k.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.node import NodeArray
from repro.streams.base import Trace
from repro.util.checks import check_epsilon, check_k, check_positive_int, require
from repro.util.rngtools import make_rng

__all__ = ["LowerBoundAdversary", "PivotChaser", "oscillation_trace"]


class LowerBoundAdversary:
    """Adaptive value source realizing the Theorem 5.1 instance.

    Parameters
    ----------
    n, k:
        Model parameters of the monitored system.
    sigma:
        Number of band nodes (the paper's σ); must satisfy
        ``k + 1 <= sigma <= n``.
    eps:
        The *online* algorithm's allowed error; the drop target is
        ``y1 < (1-eps)·y0`` so the drop always violates a valid filter of
        an output node.
    epochs:
        How many drop-and-reset rounds to play.
    y0:
        The band level (a large natural number).
    rng:
        Tie-breaking randomness for victim selection.
    """

    def __init__(
        self,
        n: int,
        k: int,
        sigma: int,
        *,
        eps: float,
        epochs: int = 4,
        y0: float = 2**16,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        n = check_positive_int(n, "n")
        self._k = check_k(k, n)
        self._n = n
        self._eps = check_epsilon(eps)
        self._epochs = check_positive_int(epochs, "epochs")
        require(k + 1 <= sigma <= n, f"sigma must be in [k+1, n], got {sigma}")
        self._sigma = int(sigma)
        self._y0 = float(int(y0))
        # Any y1 < (1-eps)*y0 works; stay integral and clearly separated.
        self._y1 = float(int((1.0 - self._eps) * self._y0) - 1)
        require(self._y1 >= 2.0, f"y0={y0} too small for eps={eps} (y1={self._y1})")
        self._y_base = float(max(1, int(self._y1 / 2)))
        self._rng = make_rng(rng)
        self._log: list[np.ndarray] = []
        self._forced_drops = 0
        # Current values the adversary maintains.
        self._current = np.full(n, self._y_base, dtype=np.float64)
        self._current[: self._sigma] = self._y0

    # ------------------------------------------------------------------ #
    # ValueSource protocol
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_steps(self) -> int:
        """1 setup step + per epoch (σ − k) drops and one reset."""
        return 1 + self._epochs * (self._sigma - self._k + 1)

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:
        """Adaptively choose the next observations (inspects filters)."""
        if t > 0:
            band = np.arange(self._sigma)
            at_y0 = band[self._current[band] == self._y0]
            if at_y0.size > self._k:
                self._drop_one(at_y0, nodes)
            else:
                # Epoch over: raise every band node back to y0.
                self._current[band] = self._y0
        row = self._current.copy()
        self._log.append(row)
        return row

    # ------------------------------------------------------------------ #
    def _drop_one(self, at_y0: np.ndarray, nodes: NodeArray) -> None:
        """Drop one band node to y1, preferring one whose filter forbids it.

        While the online filter set is valid and the output has k members,
        at least one at-y0 node has a filter lower bound > y1 (Thm 5.1's
        existence argument); we pick uniformly among those to avoid
        accidentally cooperating with any particular server strategy.
        """
        lo = nodes.filter_lo[at_y0]
        candidates = at_y0[lo > self._y1]
        if candidates.size > 0:
            victim = int(self._rng.choice(candidates))
            self._forced_drops += 1
        else:  # pragma: no cover - only reachable with an invalid filter set
            victim = int(at_y0[np.argmax(lo)])
        self._current[victim] = self._y1

    # ------------------------------------------------------------------ #
    # Post-run artifacts
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> Trace:
        """The values actually played (for offline-OPT computation)."""
        if not self._log:
            raise RuntimeError("adversary has not produced any steps yet")
        return Trace(np.stack(self._log))

    @property
    def forced_drops(self) -> int:
        """Drops that provably violated an online filter (≥ 1 message each)."""
        return self._forced_drops

    @property
    def epochs(self) -> int:
        """The number of drop-and-reset epochs played."""
        return self._epochs

    def offline_reference_cost(self) -> int:
        """Cost of the explicit offline strategy of the Theorem 5.1 proof.

        Per epoch: k unicast filters for the surviving output nodes plus
        one broadcast for everyone else — ``epochs · (k + 1)``.
        """
        return self._epochs * (self._k + 1)


def oscillation_trace(
    num_steps: int,
    n: int,
    k: int,
    *,
    high: float = 50_000.0,
    gap: float = 5_000.0,
    amplitude: float = 1_000.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Oscillation *without* rank changes: the filter-friendly extreme.

    The top-k nodes wobble around ``high`` and the rest around
    ``high − gap``; with ``amplitude < gap/2`` ranks never change, so an
    optimal filter-based algorithm communicates only once while any
    send-on-change baseline pays Θ(n) per step.  Used for the timeline
    figure (T8) and baseline sanity tests.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    k = check_k(k, n)
    require(amplitude < gap / 2, f"need amplitude < gap/2 for rank stability, got {amplitude} vs {gap}")
    rng = make_rng(rng)
    centers = np.full(n, high - gap, dtype=np.float64)
    centers[:k] = high
    noise = rng.integers(-int(amplitude), int(amplitude) + 1, size=(num_steps, n)).astype(np.float64)
    return Trace(np.maximum(centers[None, :] + noise, 0.0))


class PivotChaser:
    """Adaptive adversary: one node rides just above its filter bound.

    Node ``k`` (the chaser) observes its current filter's upper bound and
    moves one unit above it each step, forcing a violation from below on
    every tick while the online algorithm walks its pivot ladder upward.
    When the ladder is exhausted (the next ride would touch the frozen
    top-k plateau at ``high``), the chaser ends the cycle with a genuine
    rank change — one step above the plateau, then back to the bottom —
    which empties any guess interval and starts a fresh phase for every
    correct filter-based monitor.  An offline player pays O(1) per cycle
    (two rank changes), so messages-per-cycle exposes the ladder length:
    Θ(log Δ) for midpoint pivots vs Θ(log log Δ) for the (P1)–(P4) ladder.
    """

    def __init__(self, num_steps: int, n: int, k: int, high: float) -> None:
        if n < k + 2:
            raise ValueError("need at least k+2 nodes for the chaser game")
        self._steps = int(num_steps)
        self._n = int(n)
        self._k = int(k)
        self._high = float(high)
        self._low = 4.0
        self._chaser = k  # node id of the chaser
        # Distinct, staggered low values in [2, 3.5): a degenerate (tied)
        # low plateau would let boundary re-probes converge in O(1) rounds
        # and mask the Θ(log n) factor experiments T3b/T10 measure.
        self._current = 2.0 + 1.5 * np.arange(n) / n
        self._current[:k] = [high + k - i for i in range(k)]  # distinct plateau
        self._current[self._chaser] = self._low
        self._mode = "climb"
        self.resets = 0

    @property
    def n(self) -> int:
        return self._n

    @property
    def num_steps(self) -> int:
        return self._steps

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:
        if t > 0:
            if self._mode == "spike":
                # Back down: the second rank change ends the cycle.
                self._current[self._chaser] = self._low
                self._mode = "climb"
                self.resets += 1
            else:
                bound = float(nodes.filter_hi[self._chaser])
                target = bound + 1.0
                if not math.isfinite(bound) or target >= self._high - 2.0:
                    # Ladder exhausted: spike above the plateau.
                    self._current[self._chaser] = self._high + self._k + 10.0
                    self._mode = "spike"
                else:
                    self._current[self._chaser] = target
        return self._current.copy()
