"""The :class:`Trace` container and ground-truth helpers.

A trace is the materialized input of one run: a ``(T, n)`` float matrix,
row ``t`` holding the values every node observes at step ``t``.  Traces
are the engine's plainest :class:`~repro.model.engine.ValueSource` (they
ignore the node state) and also what the offline optimum is computed on —
OPT knows the whole matrix in advance, exactly as the paper's adversary
does.
"""

from __future__ import annotations

import numpy as np

from repro.model.invariants import kth_largest
from repro.model.node import NodeArray

__all__ = ["Trace"]


class Trace:
    """An immutable ``(T, n)`` matrix of observations.

    Parameters
    ----------
    data:
        Array of shape ``(T, n)``; copied and made read-only.  Values must
        be finite; the paper's streams are naturals but floats are allowed
        (several transforms produce them).
    """

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"trace must be 2-D (T, n), got shape {data.shape}")
        if data.shape[0] < 1 or data.shape[1] < 2:
            raise ValueError(f"trace needs T >= 1 and n >= 2, got shape {data.shape}")
        if not np.all(np.isfinite(data)):
            raise ValueError("trace values must be finite")
        self._data = data.copy()
        self._data.setflags(write=False)

    # ------------------------------------------------------------------ #
    # ValueSource protocol
    # ------------------------------------------------------------------ #
    #: The whole matrix is shape- and finiteness-checked above, so the
    #: engine may skip its per-step delivery validation (fast path).
    prevalidated = True

    @property
    def n(self) -> int:
        """Number of nodes (columns)."""
        return self._data.shape[1]

    @property
    def num_steps(self) -> int:
        """Number of time steps (rows)."""
        return self._data.shape[0]

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:  # noqa: ARG002 - trace ignores node state
        """Row ``t`` (the engine's per-step delivery)."""
        return self._data[t]

    # ------------------------------------------------------------------ #
    # Raw access & ground truth (omniscient: for OPT, tests, analysis)
    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The read-only ``(T, n)`` matrix."""
        return self._data

    @property
    def delta(self) -> float:
        """Δ — the largest value observed by any node (Sect. 2)."""
        return float(self._data.max())

    @property
    def min_value(self) -> float:
        """The smallest observed value."""
        return float(self._data.min())

    def kth_largest_series(self, k: int) -> np.ndarray:
        """``v_{π(k,t)}`` for every ``t`` (length ``T``)."""
        T, n = self._data.shape
        if not 1 <= k <= n:
            raise ValueError(f"k={k} out of range for n={n}")
        # k-th largest of each row via partition (vectorized over rows).
        part = np.partition(self._data, n - k, axis=1)
        return part[:, n - k].copy()

    def sigma_series(self, k: int, eps: float) -> np.ndarray:
        """``σ(t) = |K(t)|`` for every ``t`` (length ``T``).

        One vectorized pass over the matrix; equivalent to applying
        :func:`repro.model.invariants.sigma` row by row.
        """
        if not 0.0 <= eps < 1.0:
            raise ValueError(f"eps must be in [0,1), got {eps}")
        vk = self.kth_largest_series(k)
        lo = (1.0 - eps) * vk
        hi = vk / (1.0 - eps)
        near = (self._data >= lo[:, None]) & (self._data <= hi[:, None])
        return near.sum(axis=1).astype(np.int64)

    def sigma_max(self, k: int, eps: float) -> int:
        """``σ = max_t σ(t)`` — the paper's density parameter."""
        return int(self.sigma_series(k, eps).max())

    def kth_largest_at(self, t: int, k: int) -> float:
        """``v_{π(k,t)}`` at one step."""
        return kth_largest(self._data[t], k)

    def slice_steps(self, start: int, stop: int) -> "Trace":
        """A sub-trace of rows ``start..stop-1``."""
        return Trace(self._data[start:stop])

    def is_integral(self) -> bool:
        """True when every value is a (float-represented) integer."""
        return bool(np.all(self._data == np.round(self._data)))

    def has_distinct_columns(self) -> bool:
        """True when, at every step, all n node values are distinct.

        The exact Top-k problem assumes this (Sect. 2); use
        :func:`repro.streams.transforms.make_distinct` to enforce it.

        One sort per chunk of rows plus an adjacent-difference check —
        a duplicate in a row is exactly an equal adjacent pair after
        sorting that row.  Chunking bounds the scratch memory on very
        long traces.
        """
        T = self.num_steps
        chunk = max(1, min(T, (1 << 22) // self.n))
        for start in range(0, T, chunk):
            srt = np.sort(self._data[start : start + chunk], axis=1)
            if np.any(srt[:, 1:] == srt[:, :-1]):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace(T={self.num_steps}, n={self.n}, Δ={self.delta:g})"
