"""Shared helpers for chunk-first generators.

Every block-streaming generator partitions the time axis the same way
and several replace per-step state loops with the same event-forward-
fill; this module holds those two primitives so
:mod:`repro.streams.synthetic`, :mod:`repro.streams.scenarios`, and the
vectorized :func:`repro.streams.synthetic.step_levels` share one
implementation.  Both are pure integer/index manipulations — bit-exact
under any blocking (the chunk-first contract, see
docs/ARCHITECTURE.md §3).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["block_lengths", "forward_fill_events"]


def block_lengths(num_steps: int, block_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, length)`` covering ``0..num_steps`` in block steps."""
    for start in range(0, num_steps, block_size):
        yield start, min(block_size, num_steps - start)


def forward_fill_events(
    carry: np.ndarray, mask: np.ndarray, fresh: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per column: value at row ``r`` is the latest event value at ``<= r``.

    ``carry`` holds the per-column value entering the block, ``mask`` is
    the ``(B, n)`` event indicator, and ``fresh`` the event values in
    row-major order of ``mask`` (exactly the order a per-step loop would
    have drawn them).  Returns the filled ``(B, n)`` block and the new
    carry.  Pure integer indexing — bit-exact under any blocking.
    """
    B, n = mask.shape
    table = np.empty((B + 1, n), dtype=carry.dtype)
    table[0] = carry
    table[1:][mask] = fresh  # boolean assignment is row-major == draw order
    idx = np.where(mask, np.arange(1, B + 1, dtype=np.int64)[:, None], 0)
    np.maximum.accumulate(idx, axis=0, out=idx)
    filled = np.take_along_axis(table, idx, axis=0)
    return filled, filled[-1].copy()
