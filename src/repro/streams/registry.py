"""The workload registry: every scenario resolvable by slug.

The experiment suite, the CLI, and sweep grids all refer to workloads
by a short slug (``"cluster"``, ``"zipf"``) plus a flat mapping of
scalar parameters — exactly the plain-data shape a
:class:`repro.runner.grid.Cell` can carry, so *the workload itself* can
be a sweep axis.  Each :class:`WorkloadSpec` declares its parameter
schema up front; registration fails loudly if the declaration drifts
from the factory's actual signature, and the CLI uses the schema to
parse and type-coerce ``--workload-param key=value`` tokens.

Usage::

    from repro.streams import registry

    registry.available()                      # all slugs
    spec = registry.get("zipf")               # the full spec
    tr = registry.make("zipf", 2_000, 64, alpha=1.3, rng=0)
    src = registry.stream("zipf", 10**6, 64, block_size=8192, rng=0)

``make`` materializes a :class:`~repro.streams.base.Trace`;
``stream`` builds a lazily generated
:class:`~repro.streams.streaming.StreamingSource` for chunk-first
workloads (``spec.streaming``), byte-identical to ``make`` at any
block size.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro.streams import scenarios, synthetic, workloads
from repro.streams.base import Trace
from repro.streams.streaming import StreamingSource
from repro.util.checks import check_positive_int
from repro.util.rngtools import make_rng

__all__ = [
    "Param",
    "WorkloadParamError",
    "WorkloadSpec",
    "available",
    "get",
    "make",
    "stream",
    "register",
    "parse_cli_params",
    "validate_params",
]


class WorkloadParamError(ValueError):
    """A workload was given out-of-range or unusable parameters.

    A distinct type so callers (the CLI) can tell bad user input apart
    from genuine failures inside a run.
    """

#: Sentinel default for parameters the caller must supply.
REQUIRED = object()

#: A chunk-capable generator core:
#: ``(num_steps, n, block_size, *, **params, rng) -> iterator of blocks``.
BlockFn = Callable[..., Iterator[np.ndarray]]


@dataclass(frozen=True)
class Param:
    """One declared workload parameter."""

    name: str
    kind: str  # "int" | "float" | "bool" | "str" | "array"
    default: Any = REQUIRED
    doc: str = ""

    _KINDS = ("int", "float", "bool", "str", "array")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"param {self.name!r}: unknown kind {self.kind!r}")

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def parse(self, text: str) -> Any:
        """Coerce a CLI ``key=value`` string to this parameter's type."""
        try:
            if self.kind == "int":
                return int(text)
            if self.kind == "float":
                return float(text)
        except ValueError:
            raise ValueError(
                f"param {self.name!r} expects {self.kind}, got {text!r}"
            ) from None
        if self.kind == "bool":
            lowered = text.lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"param {self.name!r}: not a boolean: {text!r}")
        if self.kind == "str":
            return text
        raise ValueError(f"param {self.name!r} (kind {self.kind!r}) cannot be set "
                         "from the command line")


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: factory, schema, and streaming twin."""

    slug: str
    factory: Callable[..., Trace]
    summary: str
    params: tuple[Param, ...]
    #: Whether the generated values are (float-represented) integers —
    #: the paper's streams are over ℕ; property tests enforce the flag.
    integral: bool = True
    #: The chunk-first core, if the workload supports block streaming.
    block_fn: BlockFn | None = None
    #: Parameter overrides that make a small smoke instance runnable
    #: (e.g. ``sensor`` needs ``k``).  ``None`` marks workloads that
    #: need external input (``replay`` needs a saved file).
    example_params: dict[str, Any] | None = field(default_factory=dict)

    @property
    def streaming(self) -> bool:
        return self.block_fn is not None

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"workload {self.slug!r} has no param {name!r}; "
                       f"valid: {[p.name for p in self.params]}")


_REGISTRY: dict[str, WorkloadSpec] = {}


def _validate_against_signature(spec: WorkloadSpec) -> None:
    """Registration-time check: declared schema == factory signature."""
    sig = inspect.signature(spec.factory)
    names = list(sig.parameters)
    if names[:2] != ["num_steps", "n"]:
        raise TypeError(
            f"workload {spec.slug!r}: factory must take (num_steps, n, ...), "
            f"got {names[:2]}"
        )
    declared = {p.name: p for p in spec.params}
    actual = {
        name: par
        for name, par in sig.parameters.items()
        if name not in ("num_steps", "n", "rng")
    }
    if set(declared) != set(actual):
        raise TypeError(
            f"workload {spec.slug!r}: declared params {sorted(declared)} do not "
            f"match factory signature params {sorted(actual)}"
        )
    for name, par in actual.items():
        dec = declared[name]
        factory_default = (
            REQUIRED if par.default is inspect.Parameter.empty else par.default
        )
        dec_default = REQUIRED if dec.required else dec.default
        if dec_default is not factory_default and dec_default != factory_default:
            raise TypeError(
                f"workload {spec.slug!r}: param {name!r} declares default "
                f"{dec.default!r} but the factory has {par.default!r}"
            )
    if spec.block_fn is not None:
        block_sig = inspect.signature(spec.block_fn)
        block_names = [
            name for name in block_sig.parameters
            if name not in ("num_steps", "n", "block_size", "rng")
        ]
        if set(block_names) != set(declared):
            raise TypeError(
                f"workload {spec.slug!r}: block_fn params {sorted(block_names)} "
                f"do not match declared params {sorted(declared)}"
            )


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add ``spec`` to the registry (import-time; fails fast on drift)."""
    if spec.slug in _REGISTRY:
        raise ValueError(f"workload slug {spec.slug!r} already registered")
    _validate_against_signature(spec)
    _REGISTRY[spec.slug] = spec
    return spec


def available() -> tuple[str, ...]:
    """All registered slugs, in registration order."""
    return tuple(_REGISTRY)


def get(slug: str) -> WorkloadSpec:
    """The spec for ``slug`` (raises ``KeyError`` with the valid slugs)."""
    try:
        return _REGISTRY[slug]
    except KeyError:
        raise KeyError(
            f"unknown workload {slug!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def _check_params(
    spec: WorkloadSpec, params: Mapping[str, Any], *, fill_defaults: bool = False
) -> dict[str, Any]:
    declared = {p.name for p in spec.params}
    unknown = sorted(set(params) - declared)
    if unknown:
        raise TypeError(
            f"workload {spec.slug!r} got unknown params {unknown}; "
            f"valid: {sorted(declared)}"
        )
    missing = sorted(
        p.name for p in spec.params if p.required and p.name not in params
    )
    if missing:
        raise TypeError(f"workload {spec.slug!r} requires params {missing}")
    checked = dict(params)
    if fill_defaults:  # block_fns declare every param keyword-only, no defaults
        for p in spec.params:
            if p.name not in checked:
                checked[p.name] = p.default
    return checked


def make(
    slug: str,
    num_steps: int,
    n: int,
    *,
    rng: np.random.Generator | int | None = None,
    **params: Any,
) -> Trace:
    """Materialize the workload ``slug`` as a :class:`Trace`."""
    spec = get(slug)
    return spec.factory(num_steps, n, **_check_params(spec, params), rng=rng)


def validate_params(slug: str, n: int, params: Mapping[str, Any]) -> None:
    """Check ``params`` exactly as ``make(slug, ..., n, **params)`` would.

    Runs the factory's own range validation via a one-row probe call
    (cheap: a single generated step) and raises
    :class:`WorkloadParamError` with the factory's message on any
    rejection.  Use before launching work that would otherwise fail
    deep inside a sweep cell.
    """
    spec = get(slug)
    checked = _check_params(spec, params)
    try:
        spec.factory(1, n, **checked, rng=0)
    except (ValueError, TypeError) as exc:
        raise WorkloadParamError(
            f"workload {slug!r}: {exc.args[0] if exc.args else exc}"
        ) from None


def stream(
    slug: str,
    num_steps: int,
    n: int,
    *,
    block_size: int = 8192,
    rng: np.random.Generator | int | None = None,
    **params: Any,
) -> StreamingSource:
    """Build a block-streaming source for ``slug`` — O(n·block) memory.

    Byte-identical to ``make(slug, ...)`` with the same seed, at any
    ``block_size`` (the chunk-first contract;
    tests/streams/test_scenarios.py enforces it).  Only workloads with
    ``spec.streaming`` support this; others raise ``TypeError``.

    The source must be re-runnable (the engine resets it per run, and
    ground-truth scans make their own passes), so the randomness is
    pinned to a seed here: passing a ``Generator`` draws one 63-bit
    seed from it and every pass restarts from that seed.
    """
    spec = get(slug)
    if spec.block_fn is None:
        raise TypeError(
            f"workload {slug!r} is not block-streamable; materialize it with "
            f"make({slug!r}, ...) instead"
        )
    block_size = check_positive_int(block_size, "block_size")
    checked = _check_params(spec, params, fill_defaults=True)
    # Range validation lives in the factories (require(...) calls), which
    # the block path would otherwise skip — out-of-range params must fail
    # here exactly as they would in make(), instead of silently producing
    # a wrong stream.
    validate_params(slug, n, params)
    if isinstance(rng, (int, np.integer)) or rng is None:
        seed: int | None = None if rng is None else int(rng)
        if seed is None:
            seed = int(make_rng(None).integers(2**63))
    else:
        seed = int(make_rng(rng).integers(2**63))
    block_fn = spec.block_fn

    def factory() -> Iterator[np.ndarray]:
        return block_fn(
            num_steps, n, block_size, **checked, rng=np.random.default_rng(seed)
        )

    return StreamingSource(factory, num_steps=num_steps, n=n)


def parse_cli_params(slug: str, tokens: list[str]) -> dict[str, Any]:
    """Parse CLI ``key=value`` tokens against the workload's schema."""
    spec = get(slug)
    parsed: dict[str, Any] = {}
    for token in tokens:
        key, sep, text = token.partition("=")
        if not sep:
            raise ValueError(
                f"--workload-param must look like key=value, got {token!r}"
            )
        parsed[key] = spec.param(key).parse(text)
    return parsed


# --------------------------------------------------------------------- #
# Registrations
# --------------------------------------------------------------------- #
register(WorkloadSpec(
    slug="walk",
    factory=synthetic.random_walk,
    summary="Independent reflected integer random walks (the Δ-sweep workhorse)",
    params=(
        Param("low", "float", 0.0),
        Param("high", "float", 2**16),
        Param("step", "float", 8.0),
        Param("init", "array", None, "start positions (not CLI-settable)"),
        Param("lazy", "float", 0.0, "per-tick probability of not moving"),
    ),
    block_fn=synthetic._random_walk_blocks,
))

register(WorkloadSpec(
    slug="iid",
    factory=synthetic.iid_uniform,
    summary="Fresh uniform redraw every step — maximal churn stress case",
    params=(
        Param("low", "float", 0.0),
        Param("high", "float", 2**16),
    ),
    block_fn=synthetic._iid_uniform_blocks,
))

register(WorkloadSpec(
    slug="sine",
    factory=synthetic.sine_drift,
    summary="Random-phase sinusoids with integer noise — slow rank churn",
    params=(
        Param("base", "float", 1000.0),
        Param("amplitude", "float", 200.0),
        Param("period", "float", 200.0),
        Param("noise", "float", 5.0),
    ),
    block_fn=synthetic._sine_drift_blocks,
))

register(WorkloadSpec(
    slug="levels",
    factory=synthetic.step_levels,
    summary="Discrete levels with rare jumps — long quiet stretches",
    params=(
        Param("levels", "int", 8),
        Param("spread", "float", 1000.0),
        Param("switch_prob", "float", 0.01),
        Param("noise", "float", 2.0),
    ),
))

register(WorkloadSpec(
    slug="cluster",
    factory=workloads.cluster_load,
    summary="Webserver cluster: diurnal wave + AR(1) noise + flash crowds (Sect. 1)",
    params=(
        Param("base", "float", 5_000.0),
        Param("diurnal_amplitude", "float", 1_500.0),
        Param("period", "float", 500.0),
        Param("ar_coeff", "float", 0.9),
        Param("noise", "float", 60.0),
        Param("burst_prob", "float", 0.002),
        Param("burst_height", "float", 6_000.0),
        Param("burst_length", "int", 40),
    ),
))

register(WorkloadSpec(
    slug="sensor",
    factory=workloads.sensor_field,
    summary="Dense ε-neighborhood sensor field — band controls σ (Sect. 1)",
    params=(
        Param("k", "int", doc="the top-k parameter the band is built around"),
        Param("eps", "float", 0.1),
        Param("band", "int", None, "nodes inside the ε-neighborhood (default 2k)"),
        Param("level", "float", 10_000.0),
        Param("band_spread", "float", 0.5),
        Param("wobble", "float", 0.35),
        Param("low_fraction", "float", 0.45),
    ),
    example_params={"k": 3},
))

register(WorkloadSpec(
    slug="zipf",
    factory=scenarios.zipf_load,
    summary="Heavy-tail (Pareto) levels with churn — skewed domains",
    params=(
        Param("alpha", "float", 1.6, "tail exponent; smaller = heavier"),
        Param("scale", "float", 1_000.0),
        Param("churn", "float", 0.002, "per-step level-redraw probability"),
        Param("noise", "float", 0.01, "multiplicative jitter"),
    ),
    block_fn=scenarios._zipf_blocks,
))

register(WorkloadSpec(
    slug="markov",
    factory=scenarios.markov_levels,
    summary="Per-node Markov regime switching over discrete levels",
    params=(
        Param("states", "int", 6),
        Param("stay", "float", 0.995, "per-step probability of keeping the state"),
        Param("spread", "float", 10_000.0),
        Param("noise", "float", 3.0),
    ),
    block_fn=scenarios._markov_blocks,
))

register(WorkloadSpec(
    slug="drift",
    factory=scenarios.drifting_walk,
    summary="Reflected walks with persistent per-node drift — nonstationary ranks",
    params=(
        Param("low", "float", 0.0),
        Param("high", "float", 2**20),
        Param("step", "float", 16.0),
        Param("drift", "float", 0.5, "per-node drift drawn from [-drift, drift]"),
    ),
    block_fn=scenarios._drift_blocks,
))

register(WorkloadSpec(
    slug="correlated",
    factory=scenarios.correlated_sensors,
    summary="Sensor clusters sharing slow factors — correlated rank bursts",
    params=(
        Param("clusters", "int", 4),
        Param("rho", "float", 0.8, "shared-factor weight in [0, 1]"),
        Param("level", "float", 10_000.0),
        Param("amplitude", "float", 0.05),
        Param("period", "float", 2_000.0),
        Param("noise", "float", 20.0),
    ),
    block_fn=scenarios._correlated_blocks,
))

register(WorkloadSpec(
    slug="churn",
    factory=scenarios.window_churn,
    summary="Sliding-window churn: cohort redraws every `window` steps",
    params=(
        Param("window", "int", 500),
        Param("churn_frac", "float", 0.25),
        Param("spread", "float", 5_000.0),
        Param("noise", "float", 4.0),
    ),
    block_fn=scenarios._window_churn_blocks,
))

register(WorkloadSpec(
    slug="replay",
    factory=scenarios.replay_trace,
    summary="File-backed replay of a saved .npz trace",
    params=(
        Param("path", "str", doc="path written by streams.scenarios.save_trace"),
    ),
    integral=False,  # whatever was saved
    example_params=None,  # needs an external file
))
