"""Scenario generators beyond the paper's two motivating workloads.

Related work names the workload shapes a monitoring testbed should
cover: heavy-tail domains (Bemmann et al., arXiv:1706.03568), windowed
churn (Chan et al., arXiv:0912.4569), regime switches and correlated
sensor clusters.  This module provides them, plus file-backed replay.

Every generator here is **chunk-first**: the core is a ``_*_blocks``
iterator yielding ``(B, n)`` blocks, and the materializing factory just
concatenates blocks.  Two design rules make block streaming exact:

1. **One child generator per randomness source.**  Each factory spawns
   independent child RNGs (via :func:`repro.util.rngtools.spawn`) for
   each purpose (levels, event masks, event values, noise, ...), so the
   draws of one purpose form a single sequential stream regardless of
   how the time axis is blocked.
2. **No floating-point carries across blocks.**  State carried between
   blocks is either integral (exact in int64/float64) or an elementwise
   copy — never a partial FP reduction — so re-associating the block
   boundaries cannot change a single bit.

Together these give the streaming invariant (enforced by
tests/streams/test_scenarios.py): for any block size, the concatenated
blocks equal the materialized trace byte for byte.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.streams.base import Trace
from repro.streams.chunking import block_lengths, forward_fill_events
from repro.util.checks import check_positive_int, require
from repro.util.rngtools import make_rng, spawn

__all__ = [
    "zipf_load",
    "markov_levels",
    "drifting_walk",
    "correlated_sensors",
    "window_churn",
    "replay_trace",
    "save_trace",
    "load_trace",
]

#: Block length used when a chunk-first generator is materialized whole.
DEFAULT_BLOCK = 4096


# --------------------------------------------------------------------- #
# Heavy-tail load (zipf/pareto domains)
# --------------------------------------------------------------------- #
def _zipf_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    alpha: float,
    scale: float,
    churn: float,
    noise: float,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    level_rng, churn_rng, fresh_rng, noise_rng = spawn(rng, 4)
    levels = scale * (level_rng.pareto(alpha, size=n) + 1.0)
    for _start, B in block_lengths(num_steps, block_size):
        mask = churn_rng.random((B, n)) < churn
        fresh = scale * (fresh_rng.pareto(alpha, size=int(mask.sum())) + 1.0)
        filled, levels = forward_fill_events(levels, mask, fresh)
        mult = 1.0 + noise * noise_rng.standard_normal((B, n))
        yield np.round(np.maximum(filled * mult, 0.0))


def zipf_load(
    num_steps: int,
    n: int,
    *,
    alpha: float = 1.6,
    scale: float = 1_000.0,
    churn: float = 0.002,
    noise: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Heavy-tail (Pareto) load levels with occasional rank-shuffling churn.

    Each node holds a level drawn from a Pareto tail with exponent
    ``alpha`` (smaller ``alpha`` = heavier tail = a more dominant head),
    redraws it with per-step probability ``churn``, and jitters
    multiplicatively by ``noise``.  Models skewed domains — a few nodes
    carry most of the load, but the head occasionally changes hands.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    require(alpha > 0.0, f"alpha must be > 0, got {alpha}")
    require(scale > 0.0, f"scale must be > 0, got {scale}")
    require(0.0 <= churn <= 1.0, f"churn must be a probability, got {churn}")
    require(noise >= 0.0, f"noise must be >= 0, got {noise}")
    blocks = _zipf_blocks(
        num_steps, n, DEFAULT_BLOCK,
        alpha=alpha, scale=scale, churn=churn, noise=noise, rng=make_rng(rng),
    )
    return Trace(np.concatenate(list(blocks), axis=0))


# --------------------------------------------------------------------- #
# Markov regime switching
# --------------------------------------------------------------------- #
def _markov_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    states: int,
    stay: float,
    spread: float,
    noise: float,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    init_rng, switch_rng, target_rng, noise_rng = spawn(rng, 4)
    level_values = np.linspace(spread / states, spread, states)
    state = init_rng.integers(0, states, size=n)
    jitter_span = int(noise)
    for _start, B in block_lengths(num_steps, block_size):
        jump = switch_rng.random((B, n)) >= stay
        targets = target_rng.integers(0, states, size=int(jump.sum()))
        state_block, state = forward_fill_events(state, jump, targets)
        vals = level_values[state_block]
        if jitter_span >= 1:
            vals = vals + noise_rng.integers(-jitter_span, jitter_span + 1, size=(B, n))
        yield np.round(np.maximum(vals, 0.0))


def markov_levels(
    num_steps: int,
    n: int,
    *,
    states: int = 6,
    stay: float = 0.995,
    spread: float = 10_000.0,
    noise: float = 3.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Per-node Markov chains over discrete load regimes.

    Each node sits on one of ``states`` levels and keeps it with
    probability ``stay`` per step, otherwise jumping to a uniformly
    chosen state.  Long quiet regimes punctuated by rank flips — the
    generalization of :func:`repro.streams.synthetic.step_levels` with
    an explicit dwell-time knob.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    states = check_positive_int(states, "states")
    require(0.0 <= stay <= 1.0, f"stay must be a probability, got {stay}")
    require(spread > 0.0, f"spread must be > 0, got {spread}")
    require(noise >= 0.0, f"noise must be >= 0, got {noise}")
    blocks = _markov_blocks(
        num_steps, n, DEFAULT_BLOCK,
        states=states, stay=stay, spread=spread, noise=noise, rng=make_rng(rng),
    )
    return Trace(np.concatenate(list(blocks), axis=0))


# --------------------------------------------------------------------- #
# Drifting random walks
# --------------------------------------------------------------------- #
def _drift_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    low: float,
    high: float,
    step: float,
    drift: float,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    init_rng, drift_rng, move_rng = spawn(rng, 3)
    init = init_rng.integers(int(low), int(high) + 1, size=n).astype(np.float64)
    drifts = drift_rng.uniform(-drift, drift, size=n)
    width = float(high) - float(low)
    period = 2.0 * width
    s = max(1, int(step))
    carry = np.zeros(n, dtype=np.int64)  # exact integer cumsum across blocks
    for start, B in block_lengths(num_steps, block_size):
        moves = move_rng.integers(-s, s + 1, size=(B, n))
        cum = carry + np.cumsum(moves, axis=0)
        carry = cum[-1].copy()
        t = np.arange(start + 1, start + B + 1, dtype=np.float64)[:, None]
        free = init[None, :] + cum + drifts[None, :] * t
        # Reflect into [low, high] by folding the free walk (triangle map).
        y = np.mod(free - low, period)
        yield np.round(low + np.where(y > width, period - y, y))


def drifting_walk(
    num_steps: int,
    n: int,
    *,
    low: float = 0.0,
    high: float = 2**20,
    step: float = 16.0,
    drift: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Reflected random walks with a persistent per-node drift.

    Unlike :func:`repro.streams.synthetic.random_walk`, each node also
    carries a constant drift drawn from ``[-drift, drift]``, so rankings
    reorder systematically over long horizons (nonstationarity) instead
    of only diffusively.  The walk is folded into ``[low, high]`` with
    the triangle (reflection) map, which makes the whole trajectory an
    elementwise function of an exact integer cumulative sum — the
    generator streams in O(n·block) memory at any horizon.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    require(high > low, f"need high > low, got [{low}, {high}]")
    require(drift >= 0.0, f"drift must be >= 0, got {drift}")
    blocks = _drift_blocks(
        num_steps, n, DEFAULT_BLOCK,
        low=low, high=high, step=step, drift=drift, rng=make_rng(rng),
    )
    return Trace(np.concatenate(list(blocks), axis=0))


# --------------------------------------------------------------------- #
# Correlated sensor clusters
# --------------------------------------------------------------------- #
def _correlated_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    clusters: int,
    rho: float,
    level: float,
    amplitude: float,
    period: float,
    noise: float,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    assign_rng, phase_rng, base_rng, shared_rng, own_rng = spawn(rng, 5)
    assign = assign_rng.integers(0, clusters, size=n)
    phases = phase_rng.uniform(0.0, 2 * np.pi, size=clusters)
    bases = base_rng.uniform(0.9, 1.1, size=n) * level
    mix = float(np.sqrt(max(0.0, 1.0 - rho * rho)))
    for start, B in block_lengths(num_steps, block_size):
        shared = shared_rng.standard_normal((B, clusters))
        own = own_rng.standard_normal((B, n))
        t = np.arange(start, start + B, dtype=np.float64)[:, None]
        wave = amplitude * level * np.sin(2 * np.pi * t / period + phases[None, :])
        vals = bases[None, :] + wave[:, assign] + noise * (rho * shared[:, assign] + mix * own)
        yield np.round(np.maximum(vals, 0.0))


def correlated_sensors(
    num_steps: int,
    n: int,
    *,
    clusters: int = 4,
    rho: float = 0.8,
    level: float = 10_000.0,
    amplitude: float = 0.05,
    period: float = 2_000.0,
    noise: float = 20.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Sensor clusters sharing a common slowly-drifting factor.

    Nodes are partitioned into ``clusters``; each cluster follows its own
    sinusoidal environmental factor (random phase, period ``period``)
    and nodes mix a shared per-step disturbance (weight ``rho``) with
    idiosyncratic noise (weight ``sqrt(1-rho²)``).  High ``rho`` means
    whole clusters rise and fall together — rank changes arrive in
    correlated bursts rather than as independent node events.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    clusters = check_positive_int(clusters, "clusters")
    require(clusters <= n, f"need clusters <= n, got clusters={clusters}, n={n}")
    require(0.0 <= rho <= 1.0, f"rho must be in [0,1], got {rho}")
    require(level > 0.0, f"level must be > 0, got {level}")
    require(period > 0.0, f"period must be > 0, got {period}")
    require(noise >= 0.0, f"noise must be >= 0, got {noise}")
    blocks = _correlated_blocks(
        num_steps, n, DEFAULT_BLOCK,
        clusters=clusters, rho=rho, level=level, amplitude=amplitude,
        period=period, noise=noise, rng=make_rng(rng),
    )
    return Trace(np.concatenate(list(blocks), axis=0))


# --------------------------------------------------------------------- #
# Sliding-window churn
# --------------------------------------------------------------------- #
def _window_churn_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    window: int,
    churn_frac: float,
    spread: float,
    noise: float,
    rng: np.random.Generator,
) -> Iterator[np.ndarray]:
    level_rng, pick_rng, noise_rng = spawn(rng, 3)
    levels = level_rng.uniform(0.0, spread, size=n)
    jitter_span = int(noise)
    for start, B in block_lengths(num_steps, block_size):
        block = np.empty((B, n), dtype=np.float64)
        row = 0
        while row < B:
            t = start + row
            if t > 0 and t % window == 0:
                picked = pick_rng.random(n) < churn_frac
                levels = levels.copy()
                levels[picked] = level_rng.uniform(0.0, spread, size=int(picked.sum()))
            until = min(B, row + (window - t % window))
            block[row:until] = levels[None, :]
            row = until
        if jitter_span >= 1:
            block = block + noise_rng.integers(-jitter_span, jitter_span + 1, size=(B, n))
        yield np.round(np.maximum(block, 0.0))


def window_churn(
    num_steps: int,
    n: int,
    *,
    window: int = 500,
    churn_frac: float = 0.25,
    spread: float = 5_000.0,
    noise: float = 4.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Epoch-based churn: every ``window`` steps part of the field redraws.

    Between epoch boundaries the ranking is static up to small noise; at
    each boundary a ``churn_frac`` fraction of nodes draws a fresh level
    uniformly in ``[0, spread]`` — the batch-expiry regime of
    sliding-window monitoring, where whole cohorts of values leave the
    window at once.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    window = check_positive_int(window, "window")
    require(0.0 <= churn_frac <= 1.0, f"churn_frac must be a probability, got {churn_frac}")
    require(spread > 0.0, f"spread must be > 0, got {spread}")
    require(noise >= 0.0, f"noise must be >= 0, got {noise}")
    blocks = _window_churn_blocks(
        num_steps, n, DEFAULT_BLOCK,
        window=window, churn_frac=churn_frac, spread=spread, noise=noise,
        rng=make_rng(rng),
    )
    return Trace(np.concatenate(list(blocks), axis=0))


# --------------------------------------------------------------------- #
# File-backed replay
# --------------------------------------------------------------------- #
def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write a trace to ``path`` as an ``.npz`` archive (key ``data``).

    Round-trips exactly through :func:`load_trace` /
    :func:`replay_trace`: float64 values are stored losslessly.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, data=trace.data)
    return path


def load_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "data" not in archive:
            raise ValueError(f"{path} is not a saved trace (no 'data' array)")
        return Trace(archive["data"])


def replay_trace(
    num_steps: int,
    n: int,
    *,
    path: str,
    rng: np.random.Generator | int | None = None,  # noqa: ARG001 - replay is deterministic
) -> Trace:
    """Replay the first ``num_steps`` steps of a saved ``.npz`` trace.

    The factory form of :func:`load_trace`, shaped like every other
    workload so recorded traces (converted production logs, traces from
    other tools) sweep through the registry by slug.  ``n`` must match
    the stored trace; ``num_steps`` may be at most the stored length.
    ``rng`` is accepted for signature uniformity and ignored.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    full = load_trace(path)
    require(
        full.n == n,
        f"saved trace {path} has n={full.n}, requested n={n}",
    )
    require(
        num_steps <= full.num_steps,
        f"saved trace {path} has only T={full.num_steps} steps, "
        f"requested num_steps={num_steps}",
    )
    if num_steps == full.num_steps:
        return full
    return full.slice_steps(0, num_steps)
