"""Block-streaming value sources: O(n·block) memory at any horizon.

A :class:`Trace` materializes the full ``(T, n)`` matrix, which caps
runs at what fits in RAM.  :class:`StreamingSource` (alias
:class:`ChunkedTrace`) keeps only one block of rows resident: a fresh
block iterator is obtained from a factory whenever the source is
(re)started, each block is shape/finiteness-checked **once** on
arrival — so the source honestly declares ``prevalidated = True`` and
the engine's validation-free fast path applies — and rows are served
from the cached block until the next one is needed.

The engine consumes sources strictly in step order, which is exactly
the access pattern a block stream supports; the source refuses random
back-seeks (re-running requires ``reset()``, which the engine calls
automatically at the start of every run).

Ground truth (``kth_largest_series``, ``sigma_series``, Δ) is computed
by block-streaming passes with the same memory bound, so OPT-style
analyses work at 10⁶–10⁷ steps too.

Chunk-first generators live in :mod:`repro.streams.scenarios`; build a
streaming source for a registered workload with
:func:`repro.streams.registry.stream`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.model.invariants import kth_largest
from repro.model.node import NodeArray
from repro.streams.base import Trace
from repro.util.checks import check_positive_int, require

__all__ = ["StreamingSource", "ChunkedTrace"]

#: ``block_factory`` — returns a fresh iterator over ``(B_i, n)`` blocks
#: whose row counts sum to ``num_steps``.
BlockFactory = Callable[[], Iterator[np.ndarray]]


class StreamingSource:
    """A lazily generated ``(T, n)`` value stream, one block resident.

    Parameters
    ----------
    block_factory:
        Zero-argument callable returning a *fresh* iterator of float64
        blocks of shape ``(B_i, n)``; the row counts must sum to
        ``num_steps``.  Called once per pass (construction-time
        validation pass, engine runs after ``reset()``, ground-truth
        scans), so it must be re-invocable with identical output —
        which every chunk-first generator seeded by value satisfies.
    num_steps, n:
        The stream dimensions (declared up front; delivery is checked
        against them block by block).
    """

    def __init__(self, block_factory: BlockFactory, *, num_steps: int, n: int) -> None:
        self.num_steps_ = check_positive_int(num_steps, "num_steps")
        require(n >= 2, f"streaming source needs n >= 2, got {n}")
        self._n = int(n)
        self._factory = block_factory
        self._blocks: Iterator[np.ndarray] | None = None
        self._block: np.ndarray | None = None
        self._block_start = 0  # global step index of the cached block's row 0
        self._block_stop = 0
        #: Largest number of rows ever resident at once (memory audit).
        self.max_resident_rows = 0

    # ------------------------------------------------------------------ #
    # ValueSource protocol
    # ------------------------------------------------------------------ #
    #: Every block is validated once on arrival (shape, finiteness), so
    #: the engine may skip per-step delivery validation.
    prevalidated = True

    @property
    def n(self) -> int:
        """Number of nodes (columns)."""
        return self._n

    @property
    def num_steps(self) -> int:
        """Number of time steps the stream provides."""
        return self.num_steps_

    def values(self, t: int, nodes: NodeArray) -> np.ndarray:  # noqa: ARG002 - ignores node state
        """Row ``t``; loads the next block when ``t`` walks past the cache."""
        if not self._block_start <= t < self._block_stop:
            if t < self._block_start:
                raise ValueError(
                    f"streaming source cannot seek backwards (step {t} < "
                    f"cached block start {self._block_start}); call reset() "
                    "to start a fresh pass"
                )
            self._advance_to(t)
        assert self._block is not None
        return self._block[t - self._block_start]

    def reset(self) -> None:
        """Start a fresh pass (the engine calls this at run start)."""
        self._blocks = None
        self._block = None
        self._block_start = 0
        self._block_stop = 0

    # ------------------------------------------------------------------ #
    # Block plumbing
    # ------------------------------------------------------------------ #
    def _advance_to(self, t: int) -> None:
        if t >= self.num_steps_:
            raise ValueError(f"step {t} out of range (T={self.num_steps_})")
        if self._blocks is None:
            self._blocks = self._validated_blocks()
        while not self._block_start <= t < self._block_stop:
            try:
                block = next(self._blocks)
            except StopIteration:
                raise ValueError(
                    f"block stream exhausted at step {self._block_stop} "
                    f"before reaching declared T={self.num_steps_}"
                ) from None
            self._block_start = self._block_stop
            self._block_stop += block.shape[0]
            self._block = block

    def _validated_blocks(self) -> Iterator[np.ndarray]:
        """A fresh block iterator with per-block prevalidation."""
        delivered = 0
        for block in self._factory():
            block = np.asarray(block, dtype=np.float64)
            if block.ndim != 2 or block.shape[1] != self._n:
                raise ValueError(
                    f"block must have shape (B, {self._n}), got {block.shape}"
                )
            if not np.all(np.isfinite(block)):
                raise ValueError("stream values must be finite")
            delivered += block.shape[0]
            if delivered > self.num_steps_:
                raise ValueError(
                    f"block stream delivered {delivered} rows, more than the "
                    f"declared T={self.num_steps_}"
                )
            self.max_resident_rows = max(self.max_resident_rows, block.shape[0])
            yield block

    def iter_blocks(self) -> Iterator[np.ndarray]:
        """A fresh, validated pass over all blocks (for streaming scans)."""
        it = self._validated_blocks()
        delivered = 0
        for block in it:
            delivered += block.shape[0]
            yield block
        if delivered != self.num_steps_:
            raise ValueError(
                f"block stream delivered {delivered} rows, declared T={self.num_steps_}"
            )

    # ------------------------------------------------------------------ #
    # Ground truth, computed by streaming scans
    # ------------------------------------------------------------------ #
    @property
    def delta(self) -> float:
        """Δ — the largest value observed by any node (one streaming pass)."""
        return float(max(float(block.max()) for block in self.iter_blocks()))

    @property
    def min_value(self) -> float:
        """The smallest observed value (one streaming pass)."""
        return float(min(float(block.min()) for block in self.iter_blocks()))

    def kth_largest_series(self, k: int) -> np.ndarray:
        """``v_{π(k,t)}`` for every ``t`` — O(n·block) resident memory.

        The output is a length-``T`` vector (that much memory is
        inherent in the answer); only one value *block* is ever held.
        """
        if not 1 <= k <= self._n:
            raise ValueError(f"k={k} out of range for n={self._n}")
        out = np.empty(self.num_steps_, dtype=np.float64)
        pos = 0
        for block in self.iter_blocks():
            part = np.partition(block, self._n - k, axis=1)
            out[pos : pos + block.shape[0]] = part[:, self._n - k]
            pos += block.shape[0]
        return out

    def sigma_series(self, k: int, eps: float) -> np.ndarray:
        """``σ(t) = |K(t)|`` for every ``t`` — one streaming pass."""
        if not 0.0 <= eps < 1.0:
            raise ValueError(f"eps must be in [0,1), got {eps}")
        out = np.empty(self.num_steps_, dtype=np.int64)
        pos = 0
        for block in self.iter_blocks():
            part = np.partition(block, self._n - k, axis=1)
            vk = part[:, self._n - k]
            lo = (1.0 - eps) * vk
            hi = vk / (1.0 - eps)
            near = (block >= lo[:, None]) & (block <= hi[:, None])
            out[pos : pos + block.shape[0]] = near.sum(axis=1)
            pos += block.shape[0]
        return out

    def sigma_max(self, k: int, eps: float) -> int:
        """``σ = max_t σ(t)`` — the paper's density parameter."""
        return int(self.sigma_series(k, eps).max())

    def kth_largest_at(self, t: int, k: int) -> float:
        """``v_{π(k,t)}`` at one step of the *current* pass (step order)."""
        self._advance_to(t)
        assert self._block is not None
        return kth_largest(self._block[t - self._block_start], k)

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    def materialize(self) -> Trace:
        """Concatenate all blocks into a plain :class:`Trace`.

        Only sensible for horizons that fit in memory (tests, plots);
        the point of the class is not to call this at 10⁷ steps.
        """
        return Trace(np.concatenate(list(self.iter_blocks()), axis=0))

    @classmethod
    def from_npy(cls, path: str | Path, *, block_size: int = 8192) -> "StreamingSource":
        """Stream a ``.npy`` matrix from disk via memmap — O(block) resident.

        The ``.npz`` replay path (:func:`repro.streams.scenarios.replay_trace`)
        decompresses the whole matrix; for out-of-core replay save with
        ``np.save`` and stream it here.
        """
        path = Path(path)
        block_size = check_positive_int(block_size, "block_size")
        header = np.load(path, mmap_mode="r")
        if header.ndim != 2:
            raise ValueError(f"{path} must hold a 2-D (T, n) matrix, got {header.shape}")
        T, n = header.shape

        def factory() -> Iterator[np.ndarray]:
            mm = np.load(path, mmap_mode="r")
            for start in range(0, T, block_size):
                yield np.asarray(mm[start : start + block_size], dtype=np.float64)

        return cls(factory, num_steps=T, n=n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamingSource(T={self.num_steps_}, n={self._n})"


#: The name the paper-side code uses: a trace in chunks.
ChunkedTrace = StreamingSource
