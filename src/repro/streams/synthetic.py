"""Synthetic stream generators.

Each generator returns a :class:`~repro.streams.base.Trace`.  All values
are non-negative integers by default (the paper's streams are over ℕ, and
integral values make the guess-interval arithmetic of the protocols behave
exactly as analyzed); the ``integral`` switch produces floats where noted.

Generators take an explicit ``rng`` (any ``numpy.random.Generator`` or
seed) so experiment sweeps are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import Trace
from repro.util.checks import check_positive_int, require
from repro.util.rngtools import make_rng

__all__ = ["random_walk", "iid_uniform", "sine_drift", "step_levels"]


def random_walk(
    num_steps: int,
    n: int,
    *,
    low: float = 0.0,
    high: float = 2**16,
    step: float = 8.0,
    init: np.ndarray | None = None,
    lazy: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Independent reflected integer random walks, one per node.

    Each node starts uniformly in ``[low, high]`` (or at ``init``) and
    moves by a uniform integer step in ``[-step, step]`` per tick,
    reflecting at the bounds.  ``lazy`` is the per-tick probability that a
    node does not move at all — high laziness models the "similar to the
    previous time step" regime where filters shine.

    This is the workhorse for Δ-sweeps (T3/T4): ``high`` controls Δ.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    require(high > low, f"need high > low, got [{low}, {high}]")
    require(0.0 <= lazy <= 1.0, f"lazy must be a probability, got {lazy}")
    rng = make_rng(rng)
    step = max(1, int(step))
    data = np.empty((num_steps, n), dtype=np.float64)
    if init is None:
        current = rng.integers(int(low), int(high) + 1, size=n).astype(np.float64)
    else:
        current = np.asarray(init, dtype=np.float64).copy()
        require(current.shape == (n,), f"init must have shape ({n},)")
    data[0] = current
    for t in range(1, num_steps):
        moves = rng.integers(-step, step + 1, size=n).astype(np.float64)
        if lazy > 0.0:
            moves[rng.random(n) < lazy] = 0.0
        current = current + moves
        # Reflect at the bounds (keeps values in range and integral).
        current = np.where(current < low, 2 * low - current, current)
        current = np.where(current > high, 2 * high - current, current)
        current = np.clip(current, low, high)
        data[t] = current
    return Trace(data)


def iid_uniform(
    num_steps: int,
    n: int,
    *,
    low: float = 0.0,
    high: float = 2**16,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Fresh uniform integer redraw every step — maximal churn.

    Filters barely help here; used as a stress case and to sanity-check
    that online costs degrade gracefully together with OPT's.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    require(high > low, f"need high > low, got [{low}, {high}]")
    rng = make_rng(rng)
    data = rng.integers(int(low), int(high) + 1, size=(num_steps, n)).astype(np.float64)
    return Trace(data)


def sine_drift(
    num_steps: int,
    n: int,
    *,
    base: float = 1000.0,
    amplitude: float = 200.0,
    period: float = 200.0,
    noise: float = 5.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Per-node sinusoids with random phases plus integer noise.

    Produces slow rank churn: nodes overtake each other as their phases
    drift apart — a gentle, realistic workload for timeline figures.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    rng = make_rng(rng)
    phases = rng.uniform(0.0, 2 * np.pi, size=n)
    offsets = rng.uniform(0.0, amplitude / 2, size=n)
    t = np.arange(num_steps, dtype=np.float64)[:, None]
    clean = base + offsets[None, :] + amplitude * np.sin(2 * np.pi * t / period + phases[None, :])
    jitter = rng.integers(-int(noise), int(noise) + 1, size=(num_steps, n)) if noise >= 1 else 0.0
    data = np.round(np.maximum(clean + jitter, 0.0))
    return Trace(data)


def step_levels(
    num_steps: int,
    n: int,
    *,
    levels: int = 8,
    spread: float = 1000.0,
    switch_prob: float = 0.01,
    noise: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Nodes sit on discrete levels and occasionally jump to another level.

    Long quiet stretches punctuated by rank changes — the regime where a
    good filter-based algorithm should approach OPT.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    levels = check_positive_int(levels, "levels")
    rng = make_rng(rng)
    level_values = np.linspace(spread / levels, spread, levels)
    assignment = rng.integers(0, levels, size=n)
    data = np.empty((num_steps, n), dtype=np.float64)
    for t in range(num_steps):
        switches = rng.random(n) < switch_prob
        if switches.any():
            assignment[switches] = rng.integers(0, levels, size=int(switches.sum()))
        jitter = rng.integers(-int(noise), int(noise) + 1, size=n) if noise >= 1 else 0
        data[t] = np.maximum(level_values[assignment] + jitter, 0.0)
    return Trace(np.round(data))
