"""Synthetic stream generators.

Each generator returns a :class:`~repro.streams.base.Trace`.  All values
are non-negative integers by default (the paper's streams are over ℕ, and
integral values make the guess-interval arithmetic of the protocols behave
exactly as analyzed); the ``integral`` switch produces floats where noted.

Generators take an explicit ``rng`` (any ``numpy.random.Generator`` or
seed) so experiment sweeps are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import Trace
from repro.streams.chunking import block_lengths, forward_fill_events
from repro.util.checks import check_positive_int, require
from repro.util.rngtools import make_rng

__all__ = ["random_walk", "iid_uniform", "sine_drift", "step_levels"]


def random_walk(
    num_steps: int,
    n: int,
    *,
    low: float = 0.0,
    high: float = 2**16,
    step: float = 8.0,
    init: np.ndarray | None = None,
    lazy: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Independent reflected integer random walks, one per node.

    Each node starts uniformly in ``[low, high]`` (or at ``init``) and
    moves by a uniform integer step in ``[-step, step]`` per tick,
    reflecting at the bounds.  ``lazy`` is the per-tick probability that a
    node does not move at all — high laziness models the "similar to the
    previous time step" regime where filters shine.

    This is the workhorse for Δ-sweeps (T3/T4): ``high`` controls Δ.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    require(high > low, f"need high > low, got [{low}, {high}]")
    require(0.0 <= lazy <= 1.0, f"lazy must be a probability, got {lazy}")
    rng = make_rng(rng)
    step = max(1, int(step))
    data = np.empty((num_steps, n), dtype=np.float64)
    if init is None:
        current = rng.integers(int(low), int(high) + 1, size=n).astype(np.float64)
    else:
        current = np.asarray(init, dtype=np.float64).copy()
        require(current.shape == (n,), f"init must have shape ({n},)")
    data[0] = current
    for t in range(1, num_steps):
        moves = rng.integers(-step, step + 1, size=n).astype(np.float64)
        if lazy > 0.0:
            moves[rng.random(n) < lazy] = 0.0
        current = current + moves
        # Reflect at the bounds (keeps values in range and integral).
        current = np.where(current < low, 2 * low - current, current)
        current = np.where(current > high, 2 * high - current, current)
        current = np.clip(current, low, high)
        data[t] = current
    return Trace(data)


def iid_uniform(
    num_steps: int,
    n: int,
    *,
    low: float = 0.0,
    high: float = 2**16,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Fresh uniform integer redraw every step — maximal churn.

    Filters barely help here; used as a stress case and to sanity-check
    that online costs degrade gracefully together with OPT's.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    require(high > low, f"need high > low, got [{low}, {high}]")
    rng = make_rng(rng)
    data = rng.integers(int(low), int(high) + 1, size=(num_steps, n)).astype(np.float64)
    return Trace(data)


def sine_drift(
    num_steps: int,
    n: int,
    *,
    base: float = 1000.0,
    amplitude: float = 200.0,
    period: float = 200.0,
    noise: float = 5.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Per-node sinusoids with random phases plus integer noise.

    Produces slow rank churn: nodes overtake each other as their phases
    drift apart — a gentle, realistic workload for timeline figures.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    rng = make_rng(rng)
    phases = rng.uniform(0.0, 2 * np.pi, size=n)
    offsets = rng.uniform(0.0, amplitude / 2, size=n)
    t = np.arange(num_steps, dtype=np.float64)[:, None]
    clean = base + offsets[None, :] + amplitude * np.sin(2 * np.pi * t / period + phases[None, :])
    jitter = rng.integers(-int(noise), int(noise) + 1, size=(num_steps, n)) if noise >= 1 else 0.0
    data = np.round(np.maximum(clean + jitter, 0.0))
    return Trace(data)


def step_levels(
    num_steps: int,
    n: int,
    *,
    levels: int = 8,
    spread: float = 1000.0,
    switch_prob: float = 0.01,
    noise: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Nodes sit on discrete levels and occasionally jump to another level.

    Long quiet stretches punctuated by rank changes — the regime where a
    good filter-based algorithm should approach OPT.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    levels = check_positive_int(levels, "levels")
    rng = make_rng(rng)
    level_values = np.linspace(spread / levels, spread, levels)
    assignment = rng.integers(0, levels, size=n)
    # Phase 1 — draw all randomness in today's order.  The draws must
    # stay in a per-step loop: how many fresh levels step t consumes
    # depends on step t's own switch mask, so the RNG stream cannot be
    # hoisted into one bulk request without reshuffling it.
    jitter_span = int(noise)
    switch_rows = np.zeros((num_steps, n), dtype=bool)
    fresh_parts: list[np.ndarray] = []
    jitter = np.zeros((num_steps, n), dtype=np.int64) if jitter_span >= 1 else None
    for t in range(num_steps):
        switches = rng.random(n) < switch_prob
        if switches.any():
            switch_rows[t] = switches
            fresh_parts.append(rng.integers(0, levels, size=int(switches.sum())))
        if jitter is not None:
            jitter[t] = rng.integers(-jitter_span, jitter_span + 1, size=n)
    # Phase 2 — the scan, vectorized: per column, the assignment at t is
    # the latest fresh level drawn at <= t (forward fill over the switch
    # events; integer indexing, hence bit-exact).
    fresh = (
        np.concatenate(fresh_parts) if fresh_parts else np.empty(0, dtype=assignment.dtype)
    )
    assignment_at, _ = forward_fill_events(assignment, switch_rows, fresh)
    vals = level_values[assignment_at]
    if jitter is not None:
        vals = vals + jitter
    return Trace(np.round(np.maximum(vals, 0.0)))


# --------------------------------------------------------------------- #
# Block-streaming twins (used via repro.streams.registry.stream)
# --------------------------------------------------------------------- #
# Each ``_*_blocks`` iterator consumes the generator's RNG streams in
# exactly the order of its materializing twin above, so the concatenated
# blocks are byte-identical to the full trace (chunked numpy draws of
# one request sequence produce the same value stream; enforced by
# tests/streams/test_scenarios.py).


def _random_walk_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    low: float,
    high: float,
    step: float,
    init: np.ndarray | None,
    lazy: float,
    rng: np.random.Generator,
):
    step = max(1, int(step))
    if init is None:
        current = rng.integers(int(low), int(high) + 1, size=n).astype(np.float64)
    else:
        current = np.asarray(init, dtype=np.float64).copy()
        require(current.shape == (n,), f"init must have shape ({n},)")
    first = True
    for _start, B in block_lengths(num_steps, block_size):
        block = np.empty((B, n), dtype=np.float64)
        row = 0
        if first:
            block[0] = current
            row = 1
            first = False
        for r in range(row, B):
            moves = rng.integers(-step, step + 1, size=n).astype(np.float64)
            if lazy > 0.0:
                moves[rng.random(n) < lazy] = 0.0
            current = current + moves
            current = np.where(current < low, 2 * low - current, current)
            current = np.where(current > high, 2 * high - current, current)
            current = np.clip(current, low, high)
            block[r] = current
        yield block


def _iid_uniform_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    low: float,
    high: float,
    rng: np.random.Generator,
):
    for _start, B in block_lengths(num_steps, block_size):
        yield rng.integers(int(low), int(high) + 1, size=(B, n)).astype(np.float64)


def _sine_drift_blocks(
    num_steps: int,
    n: int,
    block_size: int,
    *,
    base: float,
    amplitude: float,
    period: float,
    noise: float,
    rng: np.random.Generator,
):
    phases = rng.uniform(0.0, 2 * np.pi, size=n)
    offsets = rng.uniform(0.0, amplitude / 2, size=n)
    for start, B in block_lengths(num_steps, block_size):
        t = np.arange(start, start + B, dtype=np.float64)[:, None]
        clean = base + offsets[None, :] + amplitude * np.sin(
            2 * np.pi * t / period + phases[None, :]
        )
        jitter = (
            rng.integers(-int(noise), int(noise) + 1, size=(B, n)) if noise >= 1 else 0.0
        )
        yield np.round(np.maximum(clean + jitter, 0.0))
