"""Trace transforms.

The most important one is :func:`make_distinct`: the exact Top-k problem
assumes all values are distinct ("at least by using the nodes' identifiers
to break ties", Sect. 2).  The canonical realization is an order-preserving
re-encoding ``v' = v·n + (n-1-i)`` for node ``i`` — equal raw values are
ordered by *lower id wins*, matching
:func:`repro.model.invariants.exact_topk_set`.  It requires an integral
trace and scales Δ by the factor ``n`` (documented; harmless for the
log Δ experiments, which account for it).
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import Trace
from repro.util.checks import require

__all__ = ["make_distinct", "clip_trace", "quantize"]


def make_distinct(trace: Trace) -> Trace:
    """Perturb an integral trace so all per-step values are distinct.

    ``v'[t, i] = v[t, i] * n + (n - 1 - i)`` — strictly order-preserving
    across nodes, ties broken toward lower ids (the lower id receives the
    larger offset and hence the larger perturbed value).
    """
    require(trace.is_integral(), "make_distinct requires an integer-valued trace")
    n = trace.n
    # The encoding lives in float64, which is exact only up to 2^53.
    # Beyond that, v*n + offset collapses adjacent codes (consecutive
    # integers map to the same double) and silently corrupts the exact
    # top-k ground truth — so refuse loudly instead.
    hi_code = int(trace.delta) * n + (n - 1)
    lo_code = int(trace.min_value) * n
    if max(hi_code, -lo_code) > 2**53:
        raise ValueError(
            f"make_distinct overflow: encoded values reach |v*n + (n-1)| = "
            f"{max(hi_code, -lo_code)} > 2^53 = {2**53}, where float64 stops "
            f"resolving consecutive integers and the re-encoding is no longer "
            f"order-preserving; rescale the trace (values must stay below "
            f"~2^53/n = {2**53 // n} for n = {n})"
        )
    offsets = (n - 1 - np.arange(n)).astype(np.float64)
    return Trace(trace.data * n + offsets[None, :])


def clip_trace(trace: Trace, lo: float, hi: float) -> Trace:
    """Clamp all values into ``[lo, hi]``."""
    require(hi > lo, f"need hi > lo, got [{lo}, {hi}]")
    return Trace(np.clip(trace.data, lo, hi))


def quantize(trace: Trace, grid: float) -> Trace:
    """Round every value to the nearest multiple of ``grid``."""
    require(grid > 0, f"grid must be positive, got {grid}")
    return Trace(np.round(trace.data / grid) * grid)
