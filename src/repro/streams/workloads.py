"""The paper's motivating workloads.

Two domain scenarios drive the experiment suite:

- :func:`cluster_load` — "a central load balancer within a local cluster
  of webservers is interested in keeping track of those nodes which are
  facing the highest loads" (Sect. 1).  Diurnal drift, AR(1) noise and
  flash-crowd bursts.
- :func:`sensor_field` — "lots of nodes observe values oscillating around
  the k-th largest value" (Sect. 1): the dense regime that motivates the
  ε-relaxation and exercises DENSEPROTOCOL.  The ``band`` parameter
  directly controls the paper's density measure σ.
"""

from __future__ import annotations

import numpy as np

from repro.streams.base import Trace
from repro.util.checks import check_epsilon, check_k, check_positive_int, require
from repro.util.rngtools import make_rng

try:  # scipy is optional: only the vectorized AR(1) scan uses it
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - exercised only without scipy
    _lfilter = None

__all__ = ["cluster_load", "sensor_field"]


def _ar1_scan(innovations: np.ndarray, coeff: float) -> np.ndarray:
    """``y[t] = coeff·y[t-1] + x[t]`` down axis 0, ``y`` starting from 0.

    ``scipy.signal.lfilter`` runs the identical multiply-then-add
    recursion in C (bit-for-bit equal to the Python loop — enforced by
    tests/streams/test_vectorization.py); without scipy the explicit
    loop is the fallback.
    """
    if _lfilter is not None:
        return _lfilter([1.0], [1.0, -coeff], innovations, axis=0)
    y = np.zeros_like(innovations)  # pragma: no cover - scipy absent
    y[0] = innovations[0]
    for t in range(1, innovations.shape[0]):
        y[t] = coeff * y[t - 1] + innovations[t]
    return y


def cluster_load(
    num_steps: int,
    n: int,
    *,
    base: float = 5_000.0,
    diurnal_amplitude: float = 1_500.0,
    period: float = 500.0,
    ar_coeff: float = 0.9,
    noise: float = 60.0,
    burst_prob: float = 0.002,
    burst_height: float = 6_000.0,
    burst_length: int = 40,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Webserver load streams: diurnal wave + AR(1) noise + flash crowds.

    Each node's load is ``base + diurnal + smooth noise`` and occasionally
    a "flash crowd" lifts one node by ``burst_height`` for
    ``burst_length`` steps, shuffling the top-k.  Values are rounded to
    integers (requests/s) and clipped at 0.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    require(0.0 <= ar_coeff < 1.0, f"ar_coeff must be in [0,1), got {ar_coeff}")
    rng = make_rng(rng)
    phases = rng.uniform(0.0, 2 * np.pi, size=n)
    skews = rng.uniform(-0.3, 0.3, size=n) * diurnal_amplitude
    t = np.arange(num_steps, dtype=np.float64)[:, None]
    diurnal = diurnal_amplitude * np.sin(2 * np.pi * t / period + phases[None, :])
    # AR(1) noise: all innovations drawn up front (today's RNG order),
    # the linear scan handled by _ar1_scan in one vectorized pass.  The
    # first row never carried noise (ar[0] = 0), so zero its innovation.
    innovations = rng.normal(0.0, noise, size=(num_steps, n))
    innovations[0] = 0.0
    ar = _ar1_scan(innovations, ar_coeff)
    # Flash crowds: per-(step, node) Bernoulli trigger, rectangular pulse.
    bursts = np.zeros((num_steps, n))
    triggers = np.argwhere(rng.random((num_steps, n)) < burst_prob)
    for start, node in triggers:
        stop = min(num_steps, start + burst_length)
        ramp = np.linspace(1.0, 0.3, stop - start)
        bursts[start:stop, node] += burst_height * ramp
    data = np.maximum(base + skews[None, :] + diurnal + ar + bursts, 0.0)
    return Trace(np.round(data))


def sensor_field(
    num_steps: int,
    n: int,
    k: int,
    *,
    eps: float = 0.1,
    band: int | None = None,
    level: float = 10_000.0,
    band_spread: float = 0.5,
    wobble: float = 0.35,
    low_fraction: float = 0.45,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """The dense ε-neighborhood regime (controls σ directly).

    Node layout:

    - ``band`` nodes (default ``2k``) oscillate *inside* the
      ε-neighborhood of ``level``: their values wander in
      ``[(1-ε·band_spread)·level, level/(1-ε·band_spread)]`` — so the k-th
      largest value stays ≈ ``level`` and ``σ(t) ≈ band``.
    - the remaining nodes sit clearly below, around
      ``low_fraction·(1-ε)·level``, with small noise.

    ``wobble`` scales how fast band nodes move within the neighborhood
    (fraction of the band width crossed per step, in expectation).  Larger
    wobble means more rank churn around position k — more work for exact
    algorithms, little for ε-approximate ones.
    """
    num_steps = check_positive_int(num_steps, "num_steps")
    n = check_positive_int(n, "n")
    k = check_k(k, n)
    eps = check_epsilon(eps)
    if band is None:
        band = min(n, 2 * k)
    require(k < band <= n, f"band must be in (k, n], got band={band} with k={k}, n={n}")
    require(0.0 < band_spread <= 1.0, f"band_spread must be in (0,1], got {band_spread}")
    rng = make_rng(rng)

    lo = (1.0 - eps * band_spread) * level
    hi = level / (1.0 - eps * band_spread)
    width = hi - lo
    step = max(1.0, wobble * width / 4.0)

    data = np.empty((num_steps, n), dtype=np.float64)
    # Band nodes: reflected random walk inside [lo, hi].
    band_vals = rng.uniform(lo, hi, size=band)
    # Low nodes: light noise around a clearly smaller level.
    low_level = low_fraction * (1.0 - eps) * level
    low_vals = rng.uniform(0.9 * low_level, 1.1 * low_level, size=n - band)
    # All per-step randomness drawn up front in today's order: each step
    # consumed `band` uniforms for the band moves, then `n - band` for
    # the low moves — exactly one (T, n) raw-uniform matrix, scaled per
    # column group (uniform(a, b) ≡ a + (b-a)·U bit for bit).  The loop
    # below is a pure reflect/clip scan — no RNG, no allocation beyond
    # the per-step temporaries — which keeps the trace byte-identical to
    # the pre-vectorization generator.
    u = rng.random((num_steps, n))
    band_moves = -step + (2.0 * step) * u[:, :band]
    low_moves = -2.0 + 4.0 * u[:, band:]
    cap = 1.2 * low_level
    for t in range(num_steps):
        data[t, :band] = band_vals
        data[t, band:] = low_vals
        band_vals = band_vals + band_moves[t]
        band_vals = np.where(band_vals < lo, 2 * lo - band_vals, band_vals)
        band_vals = np.where(band_vals > hi, 2 * hi - band_vals, band_vals)
        band_vals = np.clip(band_vals, lo, hi)
        low_vals = np.clip(low_vals + low_moves[t], 0.0, cap)
    return Trace(np.round(data))
