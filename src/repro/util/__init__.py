"""Small generic utilities shared by every layer of the reproduction.

Nothing in :mod:`repro.util` knows about streams, protocols or the
monitoring model; these are plain data structures and numeric helpers:

- :mod:`repro.util.intervals` — closed numeric intervals with ``+inf``
  endpoints, the basic currency of filter-based algorithms.
- :mod:`repro.util.mathx` — safe logarithms and the (P1)–(P4) style
  double-log predicates used by Section 4 of the paper.
- :mod:`repro.util.rngtools` — deterministic random-generator spawning.
- :mod:`repro.util.tables` — a light tabular result container with
  markdown/CSV rendering (used for every experiment table).
- :mod:`repro.util.ascii_plot` — dependency-free "figures".
- :mod:`repro.util.checks` — argument validation helpers.
"""

from repro.util.intervals import Interval
from repro.util.tables import Table

__all__ = ["Interval", "Table"]
