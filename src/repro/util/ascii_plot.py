"""Dependency-free ASCII "figures".

matplotlib is unavailable in the offline environment, so every figure in
EXPERIMENTS.md is rendered twice: as a CSV series (for real plotting later)
and as an ASCII chart produced here.  The charts are intentionally simple —
a fixed-size character grid with one glyph per series — but they make the
*shape* claims of the paper (constant vs log vs linear growth, crossovers)
visible directly in the terminal and in the committed results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "line_plot", "histogram"]

_GLYPHS = "*o+x#@%&"


@dataclass
class Series:
    """One named (x, y) series for :func:`line_plot`."""

    name: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name!r}: len(x)={len(self.x)} != len(y)={len(self.y)}")


def _transform(values: Sequence[float], log: bool) -> list[float]:
    if not log:
        return [float(v) for v in values]
    out = []
    for v in values:
        if v <= 0:
            raise ValueError(f"log-scale axis requires positive values, got {v}")
        out.append(math.log10(v))
    return out


def line_plot(
    series: Sequence[Series],
    *,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render series as a character grid line plot.

    Points are scattered onto a ``width x height`` grid; each series uses
    its own glyph, and a legend maps glyphs back to names.  Log scales are
    available per axis (labels show the raw values).
    """
    if not series or all(len(s.x) == 0 for s in series):
        return f"{title}\n(no data)"
    xs = [v for s in series for v in _transform(s.x, logx)]
    ys = [v for s in series for v in _transform(s.y, logy)]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(xv: float, yv: float, glyph: str) -> None:
        col = int(round((xv - xmin) / (xmax - xmin) * (width - 1)))
        row = int(round((yv - ymin) / (ymax - ymin) * (height - 1)))
        grid[height - 1 - row][col] = glyph

    for idx, s in enumerate(series):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for xv, yv in zip(_transform(s.x, logx), _transform(s.y, logy)):
            put(xv, yv, glyph)

    top_label = f"{(10 ** ymax if logy else ymax):.4g}"
    bot_label = f"{(10 ** ymin if logy else ymin):.4g}"
    pad = max(len(top_label), len(bot_label))
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = top_label.rjust(pad)
        elif r == height - 1:
            label = bot_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}|")
    left = f"{(10 ** xmin if logx else xmin):.4g}"
    right = f"{(10 ** xmax if logx else xmax):.4g}"
    axis = " " * pad + " +" + "-" * width + "+"
    xline = " " * pad + "  " + left + " " * max(1, width - len(left) - len(right)) + right
    lines.append(axis)
    lines.append(xline)
    scale = []
    if logx:
        scale.append("log-x")
    if logy:
        scale.append("log-y")
    suffix = f" [{', '.join(scale)}]" if scale else ""
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]} {s.name}" for i, s in enumerate(series))
    lines.append(f"x: {xlabel}   y: {ylabel}{suffix}")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 12,
    title: str = "",
    width: int = 50,
) -> str:
    """Render a horizontal-bar histogram of ``values``."""
    if len(values) == 0:
        return f"{title}\n(no data)"
    vmin, vmax = min(values), max(values)
    if vmax == vmin:
        vmax = vmin + 1.0
    counts = [0] * bins
    for v in values:
        b = min(bins - 1, int((v - vmin) / (vmax - vmin) * bins))
        counts[b] = counts[b] + 1
    peak = max(counts)
    lines = [title] if title else []
    for b, c in enumerate(counts):
        lo = vmin + (vmax - vmin) * b / bins
        hi = vmin + (vmax - vmin) * (b + 1) / bins
        bar = "#" * (0 if peak == 0 else int(round(c / peak * width)))
        lines.append(f"[{lo:8.3g}, {hi:8.3g}) {bar} {c}")
    return "\n".join(lines)
