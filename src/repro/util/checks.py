"""Argument validation helpers with uniform error messages.

The public API validates eagerly so misuse fails at the call site with an
actionable message instead of deep inside a protocol round.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "require",
    "check_positive_int",
    "check_nonneg_int",
    "check_epsilon",
    "check_k",
    "check_finite",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonneg_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_epsilon(value: Any, name: str = "eps", *, allow_zero: bool = False) -> float:
    """Validate an approximation error ``eps``.

    The paper restricts the online error to ``(0, 1/2]`` for Section 4 and
    ``(0, 1)`` in general; we accept ``(0, 1)`` everywhere (and optionally
    ``0`` for the exact problem) and let algorithms impose tighter ranges.
    """
    value = float(value)
    if allow_zero and value == 0.0:
        return 0.0
    if not (0.0 < value < 1.0):
        bound = "[0, 1)" if allow_zero else "(0, 1)"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return value


def check_k(k: Any, n: int) -> int:
    """Validate the top-``k`` parameter against the number of nodes."""
    k = check_positive_int(k, "k")
    if k >= n:
        raise ValueError(f"k must be < n (monitoring all {n} nodes is trivial), got k={k}")
    return k


def check_finite(value: float, name: str) -> float:
    """Validate that ``value`` is a finite float and return it."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value
