"""Closed numeric intervals, the currency of filter-based monitoring.

The paper manipulates two kinds of intervals:

- *filters* ``F_i = [l_i, u_i]`` assigned to nodes (``u_i`` may be ``+inf``,
  ``l_i`` may be ``0`` or ``-inf``), and
- the *guess interval* ``L = [l, u]`` that online algorithms maintain on the
  position of the offline algorithm's separating value (Sections 3–5).

Both are closed intervals over the reals; ``Interval`` implements exactly
the operations the protocols need: membership, intersection, halving
(midpoint splits used by the generic framework), and emptiness.  The class
is an immutable value type so that protocol state snapshots stay cheap and
aliasing bugs are impossible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Interval", "EMPTY"]

_INF = math.inf


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals.

    An interval with ``lo > hi`` is *empty*; the canonical empty interval is
    :data:`EMPTY`.  All operations treat any ``lo > hi`` instance as empty.

    Parameters
    ----------
    lo:
        Lower endpoint (may be ``-inf``).
    hi:
        Upper endpoint (may be ``+inf``).
    """

    lo: float
    hi: float

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "Interval":
        """Return the canonical empty interval."""
        return EMPTY

    @staticmethod
    def everything() -> "Interval":
        """Return ``[-inf, +inf]``."""
        return Interval(-_INF, _INF)

    @staticmethod
    def at_least(lo: float) -> "Interval":
        """Return the upward-closed filter ``[lo, +inf]``."""
        return Interval(lo, _INF)

    @staticmethod
    def at_most(hi: float) -> "Interval":
        """Return the downward-closed filter ``[-inf, hi]``."""
        return Interval(-_INF, hi)

    @staticmethod
    def point(x: float) -> "Interval":
        """Return the degenerate interval ``[x, x]``."""
        return Interval(x, x)

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """``True`` when the interval contains no point (``lo > hi``)."""
        return self.lo > self.hi

    def __contains__(self, x: float) -> bool:
        return self.lo <= x <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """``True`` when ``other ⊆ self`` (the empty set is in everything)."""
        if other.is_empty:
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """``True`` when the two intervals share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------ #
    # Measures
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        """Length ``hi - lo`` (``0`` for empty intervals, ``inf`` allowed)."""
        if self.is_empty:
            return 0.0
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """Arithmetic midpoint; requires a non-empty, bounded interval."""
        if self.is_empty:
            raise ValueError("midpoint of an empty interval")
        if math.isinf(self.lo) or math.isinf(self.hi):
            raise ValueError(f"midpoint of an unbounded interval {self}")
        return (self.lo + self.hi) / 2.0

    # ------------------------------------------------------------------ #
    # Combinators
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Interval") -> "Interval":
        """Intersection; returns :data:`EMPTY` if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return EMPTY
        return Interval(lo, hi)

    def clamp_below(self, x: float) -> "Interval":
        """``self ∩ [-inf, x]`` — used when a violation from above at value
        ``x`` proves the offline separator is at most ``x``."""
        return self.intersect(Interval.at_most(x))

    def clamp_above(self, x: float) -> "Interval":
        """``self ∩ [x, +inf]`` — dual of :meth:`clamp_below`."""
        return self.intersect(Interval.at_least(x))

    def lower_half(self) -> "Interval":
        """The closed lower half ``[lo, mid)`` rendered as ``[lo, prev(mid)]``.

        The paper halves the guess interval ``L``; to guarantee that
        repeated halving terminates (reaches the empty interval) even for
        point intervals, a half of a point interval is empty and the two
        halves share no interior.  We use half-open semantics realized with
        closed intervals: lower half is ``[lo, mid]`` with ``mid`` excluded
        from the upper half.  Since widths shrink geometrically this always
        empties in ``O(log(width/resolution))`` steps; protocols detect
        emptiness via :attr:`is_empty` *or* width underflow (see
        :meth:`is_degenerate`).
        """
        if self.is_empty:
            return EMPTY
        if self.lo == self.hi:
            return EMPTY
        return Interval(self.lo, self.midpoint)

    def upper_half(self) -> "Interval":
        """The closed upper half ``[mid, hi]`` (see :meth:`lower_half`)."""
        if self.is_empty:
            return EMPTY
        if self.lo == self.hi:
            return EMPTY
        return Interval(self.midpoint, self.hi)

    def is_degenerate(self, resolution: float = 1.0) -> bool:
        """``True`` when further halving is pointless at this resolution.

        The paper's values are naturals, so its intervals empty after
        ``log Δ`` halvings.  With float values, halving never reaches the
        empty set by itself; protocols therefore treat an interval of width
        below ``resolution`` as (effectively) empty.  ``resolution=1.0``
        recovers the paper's integral semantics.
        """
        return self.is_empty or self.width < resolution

    # ------------------------------------------------------------------ #
    # Dunder conveniences
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_empty:
            return "Interval(∅)"
        return f"Interval[{self.lo:g}, {self.hi:g}]"


#: The canonical empty interval.
EMPTY = Interval(_INF, -_INF)
