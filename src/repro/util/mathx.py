"""Numeric helpers used throughout the protocol implementations.

Section 4 of the paper dispatches between four phase strategies based on
double-logarithmic comparisons of the guess interval's endpoints:

- (P1): ``log log u > log log l + 1``
- (P2): ``log log u <= log log l + 1  and  u > 4 l``
- (P3): ``u <= 4 l  and  u > l / (1 - eps)``
- (P4): ``u <= l / (1 - eps)``

``log log x`` is only defined for ``x > 1``; the paper implicitly works
with large natural values.  :func:`loglog2` extends the predicate to the
whole positive axis in the standard way (monotone, ``-inf`` below the
domain) so that the phase dispatch below is total and matches the paper on
its domain.  Tests in ``tests/util/test_mathx.py`` pin the exact semantics.
"""

from __future__ import annotations

import math

__all__ = [
    "log2",
    "loglog2",
    "phase_p1",
    "phase_p2",
    "phase_p3",
    "phase_p4",
    "ceil_log2",
    "geometric_midpoint",
    "double_exp",
]


def log2(x: float) -> float:
    """``log2(x)``, with ``-inf`` for ``x <= 0`` (total on the reals)."""
    if x <= 0.0:
        return -math.inf
    return math.log2(x)


def loglog2(x: float) -> float:
    """``log2(log2(x))`` for ``x > 2``; ``-inf`` for ``x <= 2``.

    The paper's (P1)/(P2) predicates compare double logarithms of large
    natural numbers, where the distinction below 2 never arises.  Mapping
    the whole sub-domain ``x <= 2`` to ``-inf`` (instead of the negative
    reals that ``log2(log2(x))`` would give on ``(1, 2]``) keeps the phase
    dispatch *total and loop-free* for degenerate tiny endpoints: (P1)
    then fails whenever ``u <= 2``, so the doubly-exponential strategy A1
    — whose first pivot is ``ℓ + 2`` — is only armed when the gap can
    actually absorb it.  Tests pin both regimes.
    """
    if x <= 2.0:
        return -math.inf
    return math.log2(math.log2(x))


def phase_p1(lo: float, hi: float) -> bool:
    """Property (P1): ``log log u > log log l + 1``."""
    return loglog2(hi) > loglog2(lo) + 1.0


def phase_p2(lo: float, hi: float) -> bool:
    """Property (P2): ``log log u <= log log l + 1`` and ``u > 4 l``."""
    return (not phase_p1(lo, hi)) and hi > 4.0 * lo


def phase_p3(lo: float, hi: float, eps: float) -> bool:
    """Property (P3): ``u <= 4 l`` and ``u > l / (1 - eps)``."""
    return hi <= 4.0 * lo and hi * (1.0 - eps) > lo


def phase_p4(lo: float, hi: float, eps: float) -> bool:
    """Property (P4): ``u <= l / (1 - eps)`` (the filters may overlap)."""
    return hi * (1.0 - eps) <= lo


def ceil_log2(n: int) -> int:
    """Smallest ``g`` with ``2**g >= n`` (``0`` for ``n <= 1``)."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


def geometric_midpoint(lo: float, hi: float) -> float:
    """``2 ** midpoint([log2 lo, log2 hi])`` — the (P2) pivot choice.

    Algorithm A2 broadcasts ``m = 2^mid`` where ``mid`` is the midpoint of
    ``[log l, log u]``; this is the geometric mean of the endpoints and is
    guaranteed to lie inside ``[lo, hi]`` for ``0 < lo <= hi``.
    """
    if not (0.0 < lo <= hi):
        raise ValueError(f"geometric midpoint needs 0 < lo <= hi, got [{lo}, {hi}]")
    return math.sqrt(lo) * math.sqrt(hi)


def double_exp(r: int) -> float:
    """``2 ** (2 ** r)`` with overflow clamped to ``inf`` (A1's step sizes)."""
    if r < 0:
        raise ValueError("double_exp needs r >= 0")
    exponent = 2.0**r
    if exponent > 1023.0:  # would overflow float64
        return math.inf
    return 2.0**exponent
