"""Deterministic random-number management.

Every randomized component (the existence protocol's per-node coin flips,
stream generators, adversaries) takes a :class:`numpy.random.Generator`.
To make whole experiment sweeps reproducible bit-for-bit, a single root
seed is expanded into independent child generators via
:class:`numpy.random.SeedSequence` spawning — the supported way to derive
statistically independent streams without seed collisions.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["make_rng", "spawn", "rng_stream"]


def make_rng(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses the generator's bit-generator seed sequence when available and
    falls back to drawing 128-bit child seeds otherwise.  Children are
    independent of each other *and* of further draws from ``rng``.
    """
    seed_seq = rng.bit_generator.seed_seq
    if isinstance(seed_seq, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
    # Fallback: derive children by drawing entropy from the parent.
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def rng_stream(seed: int, labels: Sequence[str]) -> Iterator[tuple[str, np.random.Generator]]:
    """Yield ``(label, generator)`` pairs, one independent stream per label.

    Convenience for experiment sweeps::

        for label, rng in rng_stream(7, ["trace", "protocol", "adversary"]):
            ...
    """
    root = np.random.SeedSequence(seed)
    for label, child in zip(labels, root.spawn(len(labels))):
        yield label, np.random.default_rng(child)
