"""A light tabular container used by every experiment.

We deliberately avoid a pandas dependency: experiments produce small tables
(tens of rows) where all we need is column ordering, row append, markdown
and CSV rendering, and simple selection.  Keeping this tiny also keeps the
benchmark harness dependency-free.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    """Render a cell: floats get 4 significant digits, the rest ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """An ordered collection of uniform rows.

    Parameters
    ----------
    columns:
        Column names, fixed at construction.
    title:
        Optional human-readable caption (rendered above markdown output).
    """

    columns: Sequence[str]
    title: str = ""
    rows: list[tuple[Any, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def add(self, *values: Any, **named: Any) -> None:
        """Append one row, either positionally or by column name."""
        if values and named:
            raise TypeError("pass either positional values or named values, not both")
        if named:
            missing = set(self.columns) - set(named)
            extra = set(named) - set(self.columns)
            if missing or extra:
                raise ValueError(f"row mismatch: missing={sorted(missing)} extra={sorted(extra)}")
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(tuple(values))

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many rows given as mappings."""
        for row in rows:
            self.add(**row)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for row in self.rows:
            yield dict(zip(self.columns, row))

    def column(self, name: str) -> list[Any]:
        """Return one column as a list."""
        idx = self._col_index(name)
        return [row[idx] for row in self.rows]

    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Return a new table with the rows satisfying ``predicate``."""
        out = Table(self.columns, title=self.title)
        out.rows = [r for r in self.rows if predicate(dict(zip(self.columns, r)))]
        return out

    def _col_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {list(self.columns)}") from None

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        header = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = ["| " + " | ".join(_fmt(v) for v in row) + " |" for row in self.rows]
        lines = ([f"**{self.title}**", ""] if self.title else []) + [header, sep, *body]
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (with header row)."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([_fmt(v) for v in row])
        return buf.getvalue()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_markdown()
