"""Tests for :mod:`repro.analysis.aggregate` and competitive runner."""

import numpy as np
import pytest

from repro.analysis.aggregate import aggregate
from repro.analysis.competitive import run_competitive
from repro.core.exact_monitor import ExactTopKMonitor
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct


class TestAggregate:
    def test_stats(self):
        stats = aggregate(lambda s: float(s), [1, 2, 3, 4])
        assert stats.mean == 2.5
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.count == 4
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert stats.sem == pytest.approx(stats.std / 2)

    def test_single_seed(self):
        stats = aggregate(lambda s: 7.0, [0])
        assert stats.std == 0.0 and stats.sem == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate(lambda s: 1.0, [])

    def test_format(self):
        assert "±" in format(aggregate(lambda s: float(s), [1, 2]))


class TestCompetitiveRunner:
    def test_end_to_end(self):
        trace = make_distinct(random_walk(100, 8, high=1024, step=64, rng=0))
        run = run_competitive(
            trace,
            lambda: ExactTopKMonitor(2),
            k=2,
            eps_online=0.0,
            eps_offline=0.0,
            check=True,
        )
        assert run.online_messages > 0
        assert run.online_phases >= 1
        assert run.ratio >= 1.0  # online can't beat the offline bound here
        assert run.ratio_vs_explicit > 0
        assert run.algorithm == "exact-cor3.3"
