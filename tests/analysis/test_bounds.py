"""Tests for :mod:`repro.analysis.bounds`."""

import pytest

from repro.analysis.bounds import (
    bound_cor33,
    bound_cor59,
    bound_dense,
    bound_ipdps15,
    bound_topk,
    correlation,
    fitted_slope,
    lower_bound_ratio,
    loglog_term,
)


class TestBoundFormulas:
    def test_cor33_below_ipdps15(self):
        for delta in (2**8, 2**16, 2**24):
            assert bound_cor33(4, 64, delta) < bound_ipdps15(4, 64, delta)

    def test_topk_flat_in_delta(self):
        """log log Δ: doubling the exponent adds exactly 1."""
        b1 = bound_topk(4, 64, 2.0**16, 0.1)
        b2 = bound_topk(4, 64, 2.0**32, 0.1)
        assert b2 - b1 == pytest.approx(1.0)

    def test_topk_grows_as_eps_shrinks(self):
        assert bound_topk(4, 64, 2**16, 0.01) > bound_topk(4, 64, 2**16, 0.2)

    def test_dense_superlinear_in_sigma(self):
        b8 = bound_dense(8, 10_000, 2**16, 0.1)
        b16 = bound_dense(16, 10_000, 2**16, 0.1)
        assert b16 > 2.5 * b8  # σ² term dominates

    def test_cor59_linear_in_sigma(self):
        b8 = bound_cor59(8, 4, 64, 2**16, 0.1)
        b16 = bound_cor59(16, 4, 64, 2**16, 0.1)
        assert b16 - b8 == pytest.approx(8.0)

    def test_lower_bound_ratio(self):
        assert lower_bound_ratio(20, 4) == pytest.approx(16 / 5)
        assert lower_bound_ratio(4, 4) == 1.0  # clamped

    def test_loglog_clamped(self):
        assert loglog_term(2.0) == 1.0
        assert loglog_term(2.0**16) == 4.0


class TestFitting:
    def test_slope_exact_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [3.0, 5.0, 7.0, 9.0]
        assert fitted_slope(xs, ys) == pytest.approx(2.0)

    def test_correlation_perfect(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_correlation_degenerate(self):
        assert correlation([1, 2, 3], [5, 5, 5]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fitted_slope([1.0], [2.0])
        with pytest.raises(ValueError):
            fitted_slope([1.0, 1.0], [2.0, 3.0])
