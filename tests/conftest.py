"""Repo-wide test configuration: hypothesis profiles for the fuzz tier.

Profiles must be registered in an *initial* conftest — the hypothesis
pytest plugin resolves ``--hypothesis-profile`` during
``pytest_configure``, which runs before per-directory conftests are
imported.  Three profiles, selected per run:

- ``dev`` (default): a handful of short examples, so a plain local
  ``pytest -m fuzz`` finishes in seconds;
- ``ci`` (``--hypothesis-profile=ci``): ~200 examples per machine, the
  PR-gate budget (run under both ``REPRO_WIRE`` pins, see
  .github/workflows/ci.yml);
- ``nightly``: thousands of examples with long sequences, for the
  scheduled deep run over the full topology set including 4 shards.

``deadline=None`` everywhere: every step crosses real sockets (and, on
sharded topologies, spawned worker processes), so per-example wall
clock is dominated by I/O that hypothesis must not flag as flaky.
"""

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # tier-1 runs fine without hypothesis installed
    pass
else:
    _COMMON = dict(
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
            HealthCheck.filter_too_much,
        ],
    )
    settings.register_profile("dev", max_examples=10, stateful_step_count=10, **_COMMON)
    settings.register_profile(
        "ci", max_examples=200, stateful_step_count=15, print_blob=True, **_COMMON
    )
    settings.register_profile(
        "nightly", max_examples=2500, stateful_step_count=50, print_blob=True, **_COMMON
    )
    settings.load_profile("dev")
