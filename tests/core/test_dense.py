"""Tests for DENSEPROTOCOL and SUBPROTOCOL (Section 5.2)."""

import numpy as np
import pytest

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.dense_protocol import DenseCore
from repro.model.engine import MonitoringEngine
from repro.streams.base import Trace
from repro.streams.workloads import sensor_field


def run(trace, k, eps, *, seed=0, check=True, resolution=1.0):
    algo = ApproxTopKMonitor(k, eps, resolution=resolution)
    engine = MonitoringEngine(trace, algo, k=k, eps=eps, seed=seed, check=check)
    return engine.run(), algo


class TestDenseRegime:
    def test_valid_on_sensor_field(self):
        trace = sensor_field(250, 20, 4, eps=0.1, band=10, rng=1)
        result, algo = run(trace, 4, 0.1)
        assert algo.dense_phases >= 1
        assert algo.topk_phases == 0  # never separated on this workload

    def test_dense_beats_pure_topk_restarts(self):
        """The motivation for Section 5: exact-style handling churns."""
        from repro.core.topk_protocol import TopKMonitor

        trace = sensor_field(300, 20, 4, eps=0.1, band=10, rng=2)
        dense_res, _ = run(trace, 4, 0.1, check=False)
        topk = TopKMonitor(4, 0.1)
        topk_res = MonitoringEngine(trace, topk, k=4, eps=0.1, seed=0).run()
        assert dense_res.messages * 3 < topk_res.messages

    def test_few_phases_when_band_stays_put(self):
        trace = sensor_field(400, 24, 4, eps=0.15, band=12, band_spread=0.4, rng=3)
        _, algo = run(trace, 4, 0.15, check=False)
        # The band never leaves the ε-neighborhood: a handful of phases
        # (each needs Ω(log) filter-violation rounds to conclude) suffice.
        assert algo.phases <= 15

    def test_various_k(self):
        for k in (1, 3, 7):
            trace = sensor_field(120, 16, k, eps=0.12, band=min(16, 2 * k + 2), rng=k)
            run(trace, k, 0.12)

    def test_eps_extremes(self):
        trace = sensor_field(120, 16, 3, eps=0.3, band=8, rng=5)
        run(trace, 3, 0.3)
        trace = sensor_field(120, 16, 3, eps=0.02, band=8, rng=6)
        run(trace, 3, 0.02)


class TestPreStage:
    def test_pre_stage_silent_on_frozen_values(self):
        """Band filters contain the probe values: no violations, no cost."""
        row = np.array([100.0, 99.0, 98.0, 97.0, 50.0, 40.0])
        trace = Trace(np.tile(row, (50, 1)))
        result, algo = run(trace, 3, 0.1)
        assert algo.dense_phases == 1
        assert sum(result.ledger.per_step[1:]) == 0

    def test_main_stage_entered_on_violation(self):
        data = np.tile(np.array([100.0, 99.0, 98.0, 97.0, 50.0, 40.0]), (10, 1))
        data[5:, 3] = 105.0  # a band node rises above v_k
        result, algo = run(Trace(data), 3, 0.1)
        assert result.messages > 5  # classification happened


class TestGuards:
    def test_v1_overflow_restarts(self):
        """More than k nodes rising clearly above z forces a fresh phase."""
        data = np.tile(np.array([100.0, 99.0, 98.0, 97.0, 96.0, 40.0]), (12, 1))
        data[6:, :5] = 200.0  # five nodes jump far above the band
        result, algo = run(Trace(data), 3, 0.1)
        assert algo.phases >= 2

    def test_collapse_to_v3_restarts(self):
        data = np.tile(np.array([100.0, 99.0, 98.0, 97.0, 96.0, 95.0]), (12, 1))
        data[6:, 2:] = 10.0  # four of six nodes collapse below the band
        result, algo = run(Trace(data), 3, 0.1)
        assert algo.phases >= 2

    def test_resolution_validated(self):
        from repro.model.channel import Channel
        from repro.model.ledger import CostLedger
        from repro.model.node import NodeArray

        nodes = NodeArray(4)
        nodes.deliver(np.array([9.0, 8.0, 8.0, 1.0]))
        ch = Channel(nodes, CostLedger(), 0)
        probe = [(0, 9.0), (1, 8.0), (2, 8.0)]
        with pytest.raises(ValueError, match="resolution"):
            DenseCore(ch, 2, 0.1, probe, resolution=0.0)


class TestSubProtocol:
    def _oscillating_trace(self):
        """One band node swings across the whole ε-band every step —
        guaranteed to be seen above u_r and below ℓ_r within a phase."""
        T, n, k = 120, 8, 3
        base = np.array([1000.0, 999.0, 998.0, 997.0, 996.0, 500.0, 499.0, 498.0])
        data = np.tile(base, (T, 1))
        swing = np.where(np.arange(T) % 2 == 0, 1105.0, 905.0)
        data[:, 4] = swing  # node 4 oscillates hard around the band
        return Trace(data)

    def test_sub_protocol_triggered_and_valid(self):
        trace = self._oscillating_trace()
        algo = ApproxTopKMonitor(3, 0.1)
        engine = MonitoringEngine(trace, algo, k=3, eps=0.1, seed=0, check=True)
        engine.run()  # validity enforced every step

    def test_sub_protocol_stats(self):
        trace = sensor_field(400, 20, 4, eps=0.1, band=10, wobble=0.9, rng=7)
        algo = ApproxTopKMonitor(4, 0.1)
        MonitoringEngine(trace, algo, k=4, eps=0.1, seed=1, check=True).run()
        # No assertion on counts (workload-dependent); the run must settle
        # and stay valid, which check=True enforces.


class TestDispatcher:
    def test_separated_values_use_topk(self):
        data = np.tile(np.array([1000.0, 900.0, 800.0, 100.0, 90.0, 80.0]), (30, 1))
        _, algo = run(Trace(data), 3, 0.1)
        assert algo.topk_phases == 1 and algo.dense_phases == 0

    def test_dense_values_use_dense(self):
        data = np.tile(np.array([100.0, 99.0, 98.0, 97.0, 10.0, 9.0]), (30, 1))
        _, algo = run(Trace(data), 3, 0.1)
        assert algo.dense_phases == 1 and algo.topk_phases == 0

    def test_dense_stats_shape(self):
        data = np.tile(np.array([100.0, 99.0, 98.0, 97.0, 10.0, 9.0]), (5, 1))
        _, algo = run(Trace(data), 3, 0.1)
        assert set(algo.dense_stats) == {"rounds", "subs", "sub_rounds"}
