"""State-machine tests for DENSEPROTOCOL/SUBPROTOCOL (the Sect. 5.2 cases).

These drive a :class:`DenseCore` directly — delivering crafted values and
detecting violations through the real channel — and assert the exact
class/set transitions of the paper's case table.  The end-to-end suites
check the laws hold; these tests check *why* (each case does what the
paper says).

Fixture geometry (k=1, eps=0.2, z=100): z_lo = 80, z_hi = 125,
L₀ = [80, 100], round 0: ℓ₀ = 90, u₀ = 112.5.
"""

import numpy as np
import pytest

from repro.core.dense_protocol import DenseCore
from repro.core.phased import PhaseOutcome
from repro.core.primitives import detect_violation_existence
from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray


K = 1
EPS = 0.2
BASE = np.array([100.0, 100.0, 95.0, 30.0, 20.0])
PROBE = [(0, 100.0), (1, 100.0)]  # top-(k+1) at start time


@pytest.fixture
def world():
    nodes = NodeArray(5)
    nodes.deliver(BASE)
    channel = Channel(nodes, CostLedger(), 7)
    core = DenseCore(channel, K, EPS, PROBE)
    core.start()  # pre-stage band filters
    return core, nodes, channel


def settle(core, channel, max_iter=500):
    """Feed detected violations to the core until silence or an outcome."""
    for _ in range(max_iter):
        violation = detect_violation_existence(channel)
        if violation is None:
            return None
        outcome = core.handle(violation)
        if outcome is not None:
            return outcome
    raise AssertionError("no settlement")


def deliver(nodes, **changes):
    row = nodes.values.copy()
    for key, value in changes.items():
        row[int(key[1:])] = value  # n0=..., n1=...
    nodes.deliver(row)


class TestPreStage:
    def test_band_filters_are_silent(self, world):
        core, nodes, channel = world
        assert not nodes.violating_mask().any()
        assert core._stage == "pre"

    def test_violation_from_below_sets_z_to_vk(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)  # crosses v_k = 100
        assert settle(core, channel) is None
        assert core._stage == "main"
        assert core.z == 100.0  # the probe's v_k
        assert core.z_lo == pytest.approx(80.0)
        assert core.z_hi == pytest.approx(125.0)

    def test_violation_from_above_sets_z_to_vk1(self):
        nodes = NodeArray(5)
        # Separated probe values so v_k != v_{k+1}.
        nodes.deliver(np.array([110.0, 100.0, 95.0, 30.0, 20.0]))
        channel = Channel(nodes, CostLedger(), 7)
        core = DenseCore(channel, K, EPS, [(0, 110.0), (1, 100.0)])
        core.start()
        deliver(nodes, n0=99.0)  # top node drops below v_{k+1} = 100
        settle(core, channel)
        assert core.z == 100.0  # the probe's v_{k+1}


class TestMainStageClassification:
    def test_partition(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)
        assert core.V1 == set()
        assert core.V2 == {0, 1, 2}
        assert core.V3 == {3, 4}
        assert (core.L.lo, core.L.hi) == (80.0, 100.0)
        assert core.l_r == pytest.approx(90.0)
        assert core.u_r == pytest.approx(112.5)

    def test_case_b2_adds_to_s1(self, world):
        """V2 \\ S violating from below joins S1 (≤ k others above u_r)."""
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)
        assert core.S1 == {2}
        assert nodes.get_filter(2).hi == pytest.approx(125.0)  # [ℓ_r, z/(1-ε)]
        assert nodes.get_filter(2).lo == pytest.approx(90.0)

    def test_case_bprime2_adds_to_s2(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)
        deliver(nodes, n1=85.0)  # V2\S below ℓ_r; others keep count ≥ k
        settle(core, channel)
        assert core.S2 == {1}
        assert nodes.get_filter(1).lo == pytest.approx(80.0)  # [(1-ε)z, u_r]

    def test_case_c1_promotes_to_v1(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)  # node 2 in S1
        deliver(nodes, n2=130.0)  # beyond z/(1-ε)
        settle(core, channel)
        assert core.V1 == {2}
        assert 2 not in core.S1 and 2 not in core.V2
        assert core.output() == frozenset({2})  # V1 is mandatory

    def test_case_cprime1_demotes_to_v3(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)
        deliver(nodes, n1=85.0)
        settle(core, channel)  # node 1 in S2
        deliver(nodes, n1=75.0)  # below (1-ε)z
        settle(core, channel)
        assert 1 in core.V3 and 1 not in core.V2
        assert core.V3 == {1, 3, 4}

    def test_case_a_halves_lower_and_resets_s2(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)
        deliver(nodes, n2=130.0)
        settle(core, channel)  # node 2 now V1 with filter [90, ∞)
        deliver(nodes, n1=85.0)
        settle(core, channel)  # node 1 in S2
        deliver(nodes, n2=87.0)  # V1 violates from above
        settle(core, channel)
        assert (core.L.lo, core.L.hi) == (80.0, 90.0)  # lower half
        assert core.S2 == set()  # reset by the halving direction
        assert core.r == 1

    def test_case_aprime_halves_upper_and_resets_s1(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)  # node 2 in S1
        deliver(nodes, n3=110.0)  # V3 node crosses u_r = 112.5? No: 110 < 112.5
        assert settle(core, channel) is None  # no violation at all
        deliver(nodes, n3=115.0)  # now a V3 violation from below
        settle(core, channel)
        assert (core.L.lo, core.L.hi) == (90.0, 100.0)  # upper half
        assert core.S1 == set()
        assert core.r == 1

    def test_case_b1_halves_upper_when_crowd_above(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)  # S1 = {2}; count_above(112.5) was 1 = k
        deliver(nodes, n0=120.0, n1=118.0)  # two more above u_r
        outcome_or_none = settle(core, channel)
        # Either b.1 fired (upper half) possibly repeatedly; S1 reset.
        assert core.L.lo >= 90.0
        assert outcome_or_none in (None, PhaseOutcome.RESTART)

    def test_v1_overflow_guard_restarts(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)
        deliver(nodes, n2=130.0)
        settle(core, channel)  # V1 = {2}, k = 1
        deliver(nodes, n0=126.0)  # second node beyond z_hi
        outcome = settle(core, channel)
        assert outcome is PhaseOutcome.RESTART


class TestSubProtocol:
    def enter_sub(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)  # node 2 -> S1
        deliver(nodes, n2=85.0)  # S1 node from above -> S1∩S2 -> SUB
        outcome = settle(core, channel)
        assert outcome is None
        assert core.sub is not None
        return core, nodes, channel

    def test_sub_started_with_initiator(self, world):
        core, nodes, channel = self.enter_sub(world)
        sub = core.sub
        assert sub.initiator == 2
        assert (sub.Lp.lo, sub.Lp.hi) == (80.0, 90.0)  # L ∩ [(1-ε)z, ℓ_r]
        # After settling, node 2 sits in S'1∩S'2 with an [ℓ', z_hi] filter.
        assert 2 in sub.S1p and 2 in sub.S2p
        assert nodes.get_filter(2).lo <= 85.0

    def test_sub_output_includes_conflicted_node(self, world):
        core, nodes, channel = self.enter_sub(world)
        assert core.output() == frozenset({2})  # V1 ∪ S'1 core

    def test_case_d1_moves_to_v1_and_terminates(self, world):
        core, nodes, channel = self.enter_sub(world)
        deliver(nodes, n2=130.0)  # beyond z/(1-ε) from S'1∩S'2
        outcome = settle(core, channel)
        assert outcome is None
        assert core.sub is None
        assert core.V1 == {2}
        assert core.S1 == set() and core.S2 == set()

    def test_case_d2_exhaustion_moves_to_v3(self, world):
        core, nodes, channel = self.enter_sub(world)
        deliver(nodes, n2=80.05)  # below every future ℓ' until L' is spent
        outcome = settle(core, channel)
        assert outcome is None
        assert core.sub is None
        assert 2 in core.V3 and 2 not in core.V2

    def test_case_a_in_sub_halves_parent(self, world):
        core, nodes, channel = self.enter_sub(world)
        # Promote node 0 to V1 first: it must cross z_hi from S1.
        deliver(nodes, n0=115.0)
        settle(core, channel)  # b.2 within SUB -> S'1
        deliver(nodes, n0=130.0)
        settle(core, channel)  # c.1 within SUB -> V1 (sub continues)
        assert 0 in core.V1
        assert core.sub is not None
        deliver(nodes, n0=85.0)  # V1 violates from above -> SUB case a
        settle(core, channel)
        assert core.sub is None
        assert core.L.hi <= 90.0  # parent halved to the lower half


class TestOutputSelection:
    def test_fill_is_stable(self, world):
        core, nodes, channel = world
        deliver(nodes, n2=115.0)
        settle(core, channel)
        first = core.output()
        # A harmless S2 addition elsewhere must not churn the fill.
        deliver(nodes, n1=85.0)
        settle(core, channel)
        second = core.output()
        assert first == second or len(first & second) >= 0  # stable-or-legal
        assert len(second) == K

    def test_resolution_exhaustion_restarts(self):
        nodes = NodeArray(5)
        nodes.deliver(BASE)
        channel = Channel(nodes, CostLedger(), 7)
        # Huge resolution: L is degenerate immediately at main entry.
        core = DenseCore(channel, K, EPS, PROBE, resolution=1000.0)
        core.start()
        deliver(nodes, n2=115.0)
        violation = detect_violation_existence(channel)
        assert core.handle(violation) is PhaseOutcome.RESTART
