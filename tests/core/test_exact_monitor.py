"""Tests for :mod:`repro.core.exact_monitor` (Cor. 3.3 and the [6] baseline)."""

import numpy as np
import pytest

from repro.core.exact_monitor import ExactTopKMonitor
from repro.model.engine import MonitoringEngine
from repro.streams.adversarial import oscillation_trace
from repro.streams.base import Trace
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct


def run(trace, k, *, use_existence=True, seed=0, check=True):
    algo = ExactTopKMonitor(k, use_existence=use_existence)
    engine = MonitoringEngine(trace, algo, k=k, eps=0.0, seed=seed, check=check)
    return engine.run(), algo


class TestCorrectness:
    def test_tracks_exact_topk_on_walks(self):
        trace = make_distinct(random_walk(200, 12, high=8192, step=64, rng=3))
        result, _ = run(trace, 3)  # check=True verifies every step
        assert result.num_steps == 200

    def test_works_for_k1(self):
        trace = make_distinct(random_walk(100, 8, high=1024, step=32, rng=4))
        run(trace, 1)

    def test_works_for_large_k(self):
        trace = make_distinct(random_walk(100, 8, high=1024, step=32, rng=5))
        run(trace, 7)

    def test_handles_rank_swap(self):
        """A hand-built crossing must flip the output set."""
        data = np.array(
            [
                [100.0, 50.0, 10.0, 5.0],
                [100.0, 50.0, 10.0, 5.0],
                [40.0, 50.0, 10.0, 5.0],  # node 0 drops below node 1
            ]
        )
        trace = make_distinct(Trace(data))
        result, _ = run(trace, 1)
        assert result.outputs[0] == {0}
        assert result.outputs[-1] == {1}

    def test_valid_even_with_ties(self):
        """Without make_distinct the ε=0 validity definition still holds."""
        data = np.tile(np.array([7.0, 7.0, 7.0, 1.0]), (5, 1))
        run(Trace(data), 2)


class TestCosts:
    def test_silence_costs_nothing_after_setup(self):
        trace = oscillation_trace(200, 10, 3, amplitude=100.0, gap=10_000.0, rng=1)
        result, algo = run(trace, 3)
        assert algo.phases == 1
        # Setup probe + one filter broadcast; then silence.
        assert result.messages < 80
        assert sum(result.ledger.per_step[1:]) == 0

    def test_existence_beats_baseline_on_walks(self):
        """Corollary 3.3 never loses; its excess is the boundary re-probe."""
        trace = make_distinct(random_walk(300, 64, high=2**16, step=256, rng=6))
        res_new, _ = run(trace, 4, use_existence=True, check=False)
        res_old, _ = run(trace, 4, use_existence=False, check=False)
        assert res_old.messages > res_new.messages
        assert res_old.ledger.by_scope().get("boundary_reprobe", 0) > 0
        assert "boundary_reprobe" not in res_new.ledger.by_scope()

    def test_existence_gap_large_under_chaser(self):
        """Violation-heavy adversary: the Θ(log n) factor dominates."""
        from repro.model.engine import MonitoringEngine
        from repro.streams.adversarial import PivotChaser

        msgs = {}
        for use_existence in (True, False):
            source = PivotChaser(300, n=32, k=3, high=float(2**20))
            algo = ExactTopKMonitor(3, use_existence=use_existence)
            res = MonitoringEngine(source, algo, k=3, eps=0.0, seed=1,
                                   record_outputs=False).run()
            msgs[use_existence] = res.messages
        assert msgs[False] > 1.4 * msgs[True]

    def test_phase_count_independent_of_detection(self):
        trace = make_distinct(random_walk(150, 16, high=4096, step=64, rng=7))
        _, algo_new = run(trace, 3, use_existence=True, check=False)
        _, algo_old = run(trace, 3, use_existence=False, check=False)
        # Phases are driven by L emptying, not by how violators are found.
        assert algo_old.phases == pytest.approx(algo_new.phases, abs=max(2, algo_new.phases))


class TestNames:
    def test_names_distinguish_variants(self):
        assert ExactTopKMonitor(2).name == "exact-cor3.3"
        assert ExactTopKMonitor(2, use_existence=False).name == "exact-ipdps15"
