"""Tests for :mod:`repro.core.halfeps` (Corollary 5.9)."""

import numpy as np

from repro.core.halfeps import HalfEpsMonitor
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.streams.base import Trace
from repro.streams.workloads import sensor_field


def run(trace, k, eps, *, seed=0, check=True):
    algo = HalfEpsMonitor(k, eps)
    engine = MonitoringEngine(trace, algo, k=k, eps=eps, seed=seed, check=check)
    return engine.run(), algo


class TestCorrectness:
    def test_valid_on_sensor_field(self):
        trace = sensor_field(250, 20, 4, eps=0.1, band=10, rng=1)
        result, algo = run(trace, 4, 0.1)
        assert algo.dense_phases >= 1

    def test_valid_on_separated_values(self):
        data = np.tile(np.array([1000.0, 900.0, 100.0, 90.0]), (30, 1))
        _, algo = run(Trace(data), 2, 0.1)
        assert algo.topk_phases == 1

    def test_frozen_dense_values_are_silent(self):
        row = np.array([100.0, 99.0, 98.0, 97.0, 50.0, 40.0])
        trace = Trace(np.tile(row, (60, 1)))
        result, algo = run(trace, 3, 0.2)
        assert sum(result.ledger.per_step[1:]) == 0


class TestCheapPhases:
    def test_phase_cost_linear_in_sigma(self):
        """Cor. 5.9: O(σ + k log n) per phase — no σ·log² blowup."""
        trace = sensor_field(300, 40, 4, eps=0.2, band=20, wobble=0.9, rng=2)
        result, algo = run(trace, 4, 0.2, check=False)
        sigma = trace.sigma_max(4, 0.2)
        per_phase = result.messages / max(1, algo.phases)
        # σ + k log n + slack ≈ 20 + 4*5.3 + … : allow a 6x constant.
        assert per_phase <= 6 * (sigma + 4 * np.log2(40) + 10)

    def test_cheaper_than_full_dense_on_hot_band(self):
        from repro.core.approx_monitor import ApproxTopKMonitor

        trace = sensor_field(400, 32, 4, eps=0.2, band=16, wobble=1.0, rng=3)
        halfeps_res, _ = run(trace, 4, 0.2, check=False)
        dense = ApproxTopKMonitor(4, 0.2)
        dense_res = MonitoringEngine(trace, dense, k=4, eps=0.2, seed=0).run()
        assert halfeps_res.messages < dense_res.messages


class TestCompetitiveAgainstHalfEpsOpt:
    def test_ratio_vs_restricted_adversary(self):
        trace = sensor_field(300, 24, 4, eps=0.2, band=12, wobble=0.8, rng=4)
        result, algo = run(trace, 4, 0.2, check=False)
        opt = offline_opt(trace, 4, 0.1)  # ε' = ε/2
        ratio = result.messages / opt.ratio_denominator
        sigma = trace.sigma_max(4, 0.2)
        bound = sigma + 4 * np.log2(24) + 20
        assert ratio < 20 * bound, f"ratio {ratio} >> Cor 5.9 bound {bound}"
