"""State-machine tests for the Corollary 5.9 one-round-dense core."""

import numpy as np
import pytest

from repro.core.halfeps import OneRoundDenseCore
from repro.core.phased import PhaseOutcome
from repro.core.primitives import detect_violation_existence
from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray

# k=2, eps=0.2, z=100 → ℓ₀ = 90, u₀ = 112.5.
K = 2
EPS = 0.2
BASE = np.array([100.0, 100.0, 95.0, 111.0, 30.0, 20.0])
PROBE = [(0, 100.0), (1, 100.0), (2, 95.0)]


@pytest.fixture
def world():
    nodes = NodeArray(6)
    nodes.deliver(BASE)
    channel = Channel(nodes, CostLedger(), 3)
    core = OneRoundDenseCore(channel, K, EPS, PROBE)
    core.start()
    return core, nodes, channel


def settle(core, channel, max_iter=200):
    for _ in range(max_iter):
        violation = detect_violation_existence(channel)
        if violation is None:
            return None
        outcome = core.handle(violation)
        if outcome is not None:
            return outcome
    raise AssertionError("no settlement")


class TestClassification:
    def test_thresholds(self, world):
        core, _, _ = world
        assert core.l0 == pytest.approx(90.0)
        assert core.u0 == pytest.approx(112.5)

    def test_partition(self, world):
        core, _, _ = world
        assert core.V1 == set()  # nobody above 112.5
        assert core.V2 == {0, 1, 2, 3}
        assert core.V3 == {4, 5}

    def test_start_is_silent(self, world):
        core, nodes, _ = world
        assert not nodes.violating_mask().any()

    def test_output_filled_from_v2(self, world):
        core, _, _ = world
        out = core.output()
        assert len(out) == K and out <= core.V2


class TestPromotions:
    def test_v2_rises_to_v1(self, world):
        core, nodes, channel = world
        row = BASE.copy()
        row[3] = 120.0  # above u₀
        nodes.deliver(row)
        assert settle(core, channel) is None
        assert 3 in core.V1 and 3 not in core.V2
        assert 3 in core.output()  # V1 is mandatory
        assert core.moves == 1

    def test_v2_falls_to_v3(self, world):
        core, nodes, channel = world
        row = BASE.copy()
        row[2] = 50.0  # below ℓ₀
        nodes.deliver(row)
        assert settle(core, channel) is None
        assert 2 in core.V3 and 2 not in core.V2

    def test_moves_are_single_unicast_each(self, world):
        core, nodes, channel = world
        before = channel.ledger.messages
        row = BASE.copy()
        row[3] = 120.0
        nodes.deliver(row)
        settle(core, channel)
        # detection (existence, O(1)) + one unicast filter: tiny.
        assert channel.ledger.messages - before <= 8


class TestTermination:
    def test_v1_violation_ends_phase(self, world):
        core, nodes, channel = world
        row = BASE.copy()
        row[3] = 120.0
        nodes.deliver(row)
        settle(core, channel)  # 3 → V1
        row[3] = 70.0  # V1 node collapses below ℓ₀
        nodes.deliver(row)
        assert settle(core, channel) is PhaseOutcome.RESTART

    def test_v3_violation_ends_phase(self, world):
        core, nodes, channel = world
        row = BASE.copy()
        row[4] = 120.0  # a V3 node erupts above u₀
        nodes.deliver(row)
        assert settle(core, channel) is PhaseOutcome.RESTART

    def test_v1_overflow_ends_phase(self, world):
        core, nodes, channel = world
        row = BASE.copy()
        row[[0, 1, 2]] = 130.0  # three nodes (> k) rise above u₀
        nodes.deliver(row)
        assert settle(core, channel) is PhaseOutcome.RESTART

    def test_starvation_ends_phase(self, world):
        core, nodes, channel = world
        row = BASE.copy()
        row[[0, 1, 2]] = 50.0  # V2 drains below k remaining candidates
        nodes.deliver(row)
        assert settle(core, channel) is PhaseOutcome.RESTART
