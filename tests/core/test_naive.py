"""Tests for :mod:`repro.core.naive`."""

import numpy as np

from repro.core.naive import SendAlwaysMonitor, SendOnChangeMonitor
from repro.model.engine import MonitoringEngine
from repro.streams.base import Trace
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct


class TestSendAlways:
    def test_cost_is_n_plus_query_per_step(self):
        data = np.tile(np.arange(6, dtype=float), (10, 1))
        res = MonitoringEngine(Trace(data), SendAlwaysMonitor(2), k=2, check=True).run()
        assert res.messages == 10 * (6 + 1)  # n replies + 1 query broadcast

    def test_output_exact(self):
        trace = make_distinct(random_walk(40, 8, rng=0))
        res = MonitoringEngine(trace, SendAlwaysMonitor(3), k=3, eps=0.0, check=True).run()
        assert res.num_steps == 40


class TestSendOnChange:
    def test_frozen_trace_costs_only_setup(self):
        data = np.tile(np.arange(6, dtype=float), (20, 1))
        res = MonitoringEngine(Trace(data), SendOnChangeMonitor(2), k=2, check=True).run()
        assert res.messages == 6 + 1 + 1  # initial collect + freeze broadcast

    def test_every_change_costs(self):
        trace = make_distinct(random_walk(50, 8, step=16, lazy=0.0, rng=1))
        res = MonitoringEngine(trace, SendOnChangeMonitor(3), k=3, eps=0.0, check=True).run()
        changes = int((np.diff(trace.data, axis=0) != 0).sum())
        assert res.messages >= changes  # at least one message per change

    def test_output_tracks_exact_topk(self):
        trace = make_distinct(random_walk(60, 8, step=64, rng=2))
        MonitoringEngine(trace, SendOnChangeMonitor(3), k=3, eps=0.0, check=True).run()
