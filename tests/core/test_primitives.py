"""Unit tests for :mod:`repro.core.primitives` (Lemma 2.6 / Cor. 3.2)."""

import math

import numpy as np
import pytest

from repro.core.primitives import (
    detect_violation_bisection,
    detect_violation_direct,
    detect_violation_existence,
    max_protocol,
    min_protocol,
    top_m_probe,
)
from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray
from repro.util.intervals import Interval


def make_channel(values, seed=0):
    nodes = NodeArray(len(values))
    nodes.deliver(np.asarray(values, dtype=float))
    led = CostLedger()
    return Channel(nodes, led, seed), nodes, led


class TestMaxProtocol:
    def test_finds_max(self):
        rng = np.random.default_rng(0)
        for trial in range(30):
            values = rng.permutation(64).astype(float)
            ch, _, _ = make_channel(values, seed=trial)
            node, value = max_protocol(ch)
            assert value == values.max()
            assert values[node] == value

    def test_none_when_empty(self):
        ch, _, _ = make_channel([1.0, 2.0])
        assert max_protocol(ch, above=10.0) is None

    def test_threshold_respected(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0])
        node, value = max_protocol(ch, above=4.0)
        assert value == 9.0

    def test_exclusion(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0])
        node, value = max_protocol(ch, exclude=np.array([2]))
        assert (node, value) == (1, 5.0)

    def test_expected_messages_logarithmic(self):
        """Lemma 2.6: O(log n) messages on expectation."""
        rng = np.random.default_rng(7)
        for n in (32, 256, 1024):
            total = 0
            trials = 40
            for _ in range(trials):
                values = rng.permutation(n).astype(float)
                ch, _, led = make_channel(values, seed=rng)
                max_protocol(ch)
                total += led.messages
            mean = total / trials
            # Each of ~log2(n) expected iterations costs 1 broadcast plus
            # O(1) expected replies; allow a generous constant.
            assert mean <= 10 * math.log2(n) + 10, f"n={n}: mean={mean}"

    def test_ties_resolved_to_max_value(self):
        ch, _, _ = make_channel([5.0, 9.0, 9.0, 1.0])
        node, value = max_protocol(ch)
        assert value == 9.0 and node in (1, 2)


class TestTopMProbe:
    def test_exact_top_values(self):
        rng = np.random.default_rng(1)
        for trial in range(20):
            values = rng.permutation(40).astype(float)
            ch, _, _ = make_channel(values, seed=trial)
            probe = top_m_probe(ch, 5)
            got = [v for _, v in probe]
            assert got == sorted(values, reverse=True)[:5]
            assert all(values[i] == v for i, v in probe)

    def test_handles_ties(self):
        ch, _, _ = make_channel([7.0, 7.0, 3.0, 1.0])
        probe = top_m_probe(ch, 3)
        assert [v for _, v in probe] == [7.0, 7.0, 3.0]
        assert {i for i, _ in probe[:2]} == {0, 1}

    def test_m_validation(self):
        ch, _, _ = make_channel([1.0, 2.0])
        with pytest.raises(ValueError):
            top_m_probe(ch, 0)
        with pytest.raises(ValueError):
            top_m_probe(ch, 3)

    def test_cost_scales_with_m(self):
        values = np.arange(128, dtype=float)
        costs = []
        for m in (1, 4, 8):
            ch, _, led = make_channel(values, seed=2)
            top_m_probe(ch, m)
            costs.append(led.messages)
        assert costs[0] < costs[1] < costs[2]

    def test_scope_attribution(self):
        ch, _, led = make_channel([3.0, 1.0, 2.0])
        top_m_probe(ch, 2)
        by = led.by_scope()
        assert by.get("max_protocol", 0) > 0
        assert by.get("top_m_probe", 0) > 0  # the stand-down notifies


class TestMinProtocol:
    def test_finds_min(self):
        rng = np.random.default_rng(5)
        for trial in range(20):
            values = rng.permutation(48).astype(float) + 3.0
            ch, _, _ = make_channel(values, seed=trial)
            node, value = min_protocol(ch)
            assert value == values.min() and values[node] == value

    def test_exclusion_and_threshold(self):
        ch, _, _ = make_channel([9.0, 5.0, 1.0])
        assert min_protocol(ch, exclude=np.array([2])) == (1, 5.0)
        assert min_protocol(ch, below=1.0) is None

    def test_logarithmic_cost(self):
        rng = np.random.default_rng(8)
        total = 0.0
        trials = 40
        for _ in range(trials):
            values = rng.permutation(512).astype(float)
            ch, _, led = make_channel(values, seed=rng)
            min_protocol(ch)
            total += led.messages
        assert total / trials <= 10 * math.log2(512) + 10


class TestDirectDetection:
    def test_silent_zero_cost(self):
        ch, _, led = make_channel([1.0] * 8)
        assert detect_violation_direct(ch) is None
        assert led.messages == 0

    def test_every_violator_charged(self):
        ch, nodes, led = make_channel([10.0] * 8)
        nodes.set_filters_bulk(np.arange(4), 0.0, 5.0)  # 4 violators
        rep = detect_violation_direct(ch)
        assert rep is not None and rep.node == 0  # lowest id acted upon
        assert led.node_to_server == 4  # all four reports were sent


class TestExistenceDetection:
    def test_silent_zero_cost(self):
        ch, _, led = make_channel([1.0, 2.0])
        assert detect_violation_existence(ch) is None
        assert led.messages == 0

    def test_detects(self):
        ch, nodes, _ = make_channel([10.0, 20.0])
        nodes.set_filter(1, Interval(0.0, 15.0))
        rep = detect_violation_existence(ch)
        assert rep is not None and rep.node == 1 and rep.from_below


class TestBisectionDetection:
    def test_silent_cost_is_one_query(self):
        ch, _, led = make_channel([1.0] * 16)
        assert detect_violation_bisection(ch) is None
        assert led.messages == 1  # the root range query (no reply)

    def test_finds_lowest_id_violator(self):
        ch, nodes, _ = make_channel([10.0] * 16)
        nodes.set_filter(5, Interval(0.0, 5.0))
        nodes.set_filter(11, Interval(0.0, 5.0))
        rep = detect_violation_bisection(ch)
        assert rep is not None and rep.node == 5

    def test_cost_is_theta_log_n(self):
        n = 256
        ch, nodes, led = make_channel([10.0] * n)
        nodes.set_filter(200, Interval(0.0, 5.0))
        rep = detect_violation_bisection(ch)
        assert rep is not None and rep.node == 200
        # 1 root + log2(n) bisection queries (1-2 msgs each) + final fetch.
        assert led.messages >= math.log2(n)
        assert led.messages <= 3 * math.log2(n) + 4

    def test_more_expensive_than_existence(self):
        """The whole point of Lemma 3.1."""
        n = 512
        cost_exist, cost_bisect = 0, 0
        for seed in range(20):
            ch, nodes, led = make_channel([10.0] * n, seed=seed)
            nodes.set_filter(99, Interval(0.0, 5.0))
            detect_violation_existence(ch)
            cost_exist += led.messages
            ch2, nodes2, led2 = make_channel([10.0] * n, seed=seed)
            nodes2.set_filter(99, Interval(0.0, 5.0))
            detect_violation_bisection(ch2)
            cost_bisect += led2.messages
        assert cost_bisect > 3 * cost_exist
