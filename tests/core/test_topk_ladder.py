"""State-machine tests for the Section-4 strategy ladder (A1 → A2 → A3 → P4).

Drives a :class:`TopKCore` with crafted violations and asserts that each
property regime uses the pivot rule Lemmas 4.1–4.3 prescribe, that the
guess interval's invariant updates are exact, and that the phase ends
exactly when ``L`` empties.
"""

import numpy as np
import pytest

from repro.core.phased import PhaseOutcome
from repro.core.primitives import detect_violation_existence
from repro.core.topk_protocol import TopKCore
from repro.model.channel import Channel, Violation
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray, VIOLATION_ABOVE, VIOLATION_BELOW


def make_core(values, k=2, eps=0.25, seed=0):
    nodes = NodeArray(len(values))
    nodes.deliver(np.asarray(values, dtype=float))
    channel = Channel(nodes, CostLedger(), seed)
    order = np.argsort(values)[::-1]
    probe = [(int(i), float(values[i])) for i in order[: k + 1]]
    core = TopKCore(channel, k, eps, probe)
    core.start()
    return core, nodes, channel


def settle(core, channel, max_iter=300):
    for _ in range(max_iter):
        violation = detect_violation_existence(channel)
        if violation is None:
            return None
        outcome = core.handle(violation)
        if outcome is not None:
            return outcome
    raise AssertionError("no settlement")


class TestLadderWalk:
    def test_full_descent_a1_to_p4(self):
        """Chasing violations walk the ladder down without skipping."""
        values = [2.0**40, 2.0**39, 8.0, 2.0]  # L = [8, 2^39]: (P1)
        core, nodes, channel = make_core(values)
        seen = [core.mode]
        # Ride the pivot from below until the phase ends.
        for _ in range(200):
            pivot = nodes.filter_hi[2]  # node 2's F2 filter ends at the pivot
            if not np.isfinite(pivot):
                break
            target = pivot + 1.0
            if target >= values[1]:  # would cross the top plateau
                break
            row = nodes.values.copy()
            row[2] = target
            nodes.deliver(row)
            if settle(core, channel) is not None:
                break
            if core.mode != seen[-1]:
                seen.append(core.mode)
        assert seen[0] == "A1"
        assert seen == [m for m in ["A1", "A2", "A3", "P4"] if m in seen]  # ordered
        assert "P4" in seen  # the overlap phase is reached

    def test_a1_needs_only_loglog_violations(self):
        values = [2.0**40, 2.0**39, 8.0, 2.0]
        core, nodes, channel = make_core(values)
        count = 0
        while core.mode == "A1" and count < 50:
            pivot = nodes.filter_hi[2]
            row = nodes.values.copy()
            row[2] = pivot + 1.0
            nodes.deliver(row)
            settle(core, channel)
            count += 1
        # log log 2^39 ≈ 5.3: the doubly-exponential sweep is short.
        assert count <= 10


class TestInvariantUpdates:
    def test_from_below_raises_lo(self):
        values = [1000.0, 900.0, 300.0, 3.0]
        core, _, _ = make_core(values)  # A3: pivot 600
        outcome = core.handle(Violation(2, 700.0, VIOLATION_BELOW))
        assert outcome is None
        assert core.lo == 700.0 and core.hi == 900.0

    def test_from_above_lowers_hi(self):
        values = [1000.0, 900.0, 300.0, 3.0]
        core, _, _ = make_core(values)
        outcome = core.handle(Violation(1, 450.0, VIOLATION_ABOVE))
        assert outcome is None
        assert core.hi == 450.0 and core.lo == 300.0

    def test_crossing_updates_empty_l_and_restart(self):
        values = [1000.0, 900.0, 300.0, 3.0]
        core, _, _ = make_core(values)
        core.handle(Violation(2, 700.0, VIOLATION_BELOW))
        outcome = core.handle(Violation(1, 650.0, VIOLATION_ABOVE))
        assert outcome is PhaseOutcome.RESTART  # hi=650 < lo=700: L = ∅

    def test_p4_single_violation_ends_phase(self):
        values = [1000.0, 900.0, 890.0, 3.0]
        core, _, _ = make_core(values, eps=0.25)
        assert core.mode == "P4"
        assert core.handle(Violation(3, 950.0, VIOLATION_BELOW)) is PhaseOutcome.RESTART

    def test_output_fixed_for_whole_phase(self):
        values = [1000.0, 900.0, 300.0, 3.0]
        core, _, _ = make_core(values)
        before = core.output()
        core.handle(Violation(2, 700.0, VIOLATION_BELOW))
        assert core.output() == before == frozenset({0, 1})


class TestFiltersAlwaysRecover:
    @pytest.mark.parametrize(
        "values",
        [
            [2.0**40, 2.0**39, 8.0, 2.0],  # P1 regime
            [2.0**40, 2.0**39, 2.0**30, 2.0],  # P2 regime
            [1000.0, 900.0, 300.0, 3.0],  # P3 regime
            [1000.0, 900.0, 890.0, 3.0],  # P4 regime
            [5.0, 4.0, 3.0, 2.0],  # tiny values
            [2.0, 1.0, 0.0, 0.0],  # degenerate tiny values with ties
        ],
    )
    def test_start_is_silent(self, values):
        """Phase-start filters always contain the probe-time values."""
        core, nodes, _ = make_core(values)
        assert not nodes.violating_mask().any(), (values, core.mode)
