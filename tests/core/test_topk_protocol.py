"""Tests for :mod:`repro.core.topk_protocol` (Section 4)."""

import numpy as np

from repro.core.topk_protocol import TopKCore, TopKMonitor
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.streams.synthetic import random_walk
from repro.streams.transforms import make_distinct


def run(trace, k, eps, *, seed=0, check=True):
    algo = TopKMonitor(k, eps)
    engine = MonitoringEngine(trace, algo, k=k, eps=eps, seed=seed, check=check)
    return engine.run(), algo


class TestCorrectness:
    def test_valid_on_walks(self):
        trace = make_distinct(random_walk(200, 12, high=2**14, step=128, rng=1))
        run(trace, 3, 0.25)  # engine checks validity per step

    def test_valid_on_small_eps(self):
        trace = make_distinct(random_walk(150, 10, high=2**12, step=64, rng=2))
        run(trace, 2, 0.01)

    def test_huge_delta(self):
        """Large Δ exercises the doubly-exponential A1 strategy."""
        trace = make_distinct(random_walk(100, 8, high=2**40, step=2**30, rng=3))
        result, algo = run(trace, 2, 0.1)
        assert result.num_steps == 100


class TestPhaseStrategies:
    def _core(self, values, k=2, eps=0.25):
        """Build a TopKCore directly on a static value set."""
        from repro.model.channel import Channel
        from repro.model.ledger import CostLedger
        from repro.model.node import NodeArray

        nodes = NodeArray(len(values))
        nodes.deliver(np.asarray(values, dtype=float))
        ch = Channel(nodes, CostLedger(), 0)
        order = np.argsort(values)[::-1]
        probe = [(int(i), float(values[i])) for i in order[: k + 1]]
        core = TopKCore(ch, k, eps, probe)
        core.start()
        return core, nodes, ch

    def test_a1_armed_for_doubly_exponential_gap(self):
        values = [2.0**40, 2.0**39, 4.0, 3.0]
        core, _, _ = self._core(values)  # L = [4, 2^39]
        assert core.mode == "A1"

    def test_a2_armed_for_polynomial_gap(self):
        values = [2.0**40, 2.0**39, 2.0**30, 3.0]
        core, _, _ = self._core(values)  # L = [2^30, 2^39]: loglog gap < 1
        assert core.mode == "A2"

    def test_a3_armed_for_constant_factor_gap(self):
        values = [1000.0, 900.0, 300.0, 3.0]
        core, _, _ = self._core(values)  # u = 900 <= 4*300, eps-wide
        assert core.mode == "A3"

    def test_p4_armed_inside_eps_overlap(self):
        values = [1000.0, 900.0, 890.0, 3.0]
        core, _, _ = self._core(values, eps=0.25)  # 900*(0.75) = 675 <= 890
        assert core.mode == "P4"

    def test_pivot_between_filters(self):
        values = [1000.0, 900.0, 300.0, 3.0]
        core, nodes, _ = self._core(values)
        # All values must be inside the assigned filters at phase start.
        assert not nodes.violating_mask().any()

    def test_p4_violation_ends_phase(self):
        from repro.core.phased import PhaseOutcome
        from repro.model.channel import Violation
        from repro.model.node import VIOLATION_BELOW

        values = [1000.0, 900.0, 890.0, 3.0]
        core, _, _ = self._core(values, eps=0.25)
        outcome = core.handle(Violation(3, 950.0, VIOLATION_BELOW))
        assert outcome is PhaseOutcome.RESTART

    def test_violation_narrows_interval(self):
        from repro.model.channel import Violation
        from repro.model.node import VIOLATION_BELOW

        values = [1000.0, 900.0, 300.0, 3.0]
        core, nodes, _ = self._core(values)
        before = core.hi - core.lo
        nodes.deliver(np.array([1000.0, 900.0, 620.0, 3.0]))
        outcome = core.handle(Violation(2, 620.0, VIOLATION_BELOW))
        assert outcome is None
        assert core.lo == 620.0
        assert (core.hi - core.lo) < before

    def test_mode_entry_stats_recorded(self):
        values = [2.0**40, 2.0**39, 4.0, 3.0]
        core, _, _ = self._core(values)
        assert core.mode_entries["A1"] == 1


class TestCompetitiveness:
    def test_ratio_against_exact_opt_is_moderate(self):
        """Thm 4.5: O(k log n + log log Δ + log 1/ε) per OPT message."""
        trace = make_distinct(random_walk(400, 16, high=2**16, step=512, rng=4))
        result, algo = run(trace, 3, 0.2, check=False)
        opt = offline_opt(trace, 3, 0.0)  # the exact adversary
        ratio = result.messages / opt.ratio_denominator
        # k log n + loglog Δ + log 1/ε ≈ 3*4 + 4.5 + 2.3 ≈ 19; allow 20x.
        assert ratio < 400, f"ratio {ratio} out of line with Thm 4.5"

    def test_phases_track_opt(self):
        trace = make_distinct(random_walk(300, 12, high=2**14, step=256, rng=5))
        _, algo = run(trace, 3, 0.2, check=False)
        opt = offline_opt(trace, 3, 0.0)
        # Every finished phase forces >= 1 OPT message (Thm 4.5);
        # the running phase may be unfinished, hence the +1.
        assert algo.phases <= opt.message_lb + 1
