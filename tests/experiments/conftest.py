"""Shared fixtures: keep CLI-driven cache writes out of the repo tree.

``python -m repro.experiments`` caches sweep cells under
``results/.cache`` by default; tests that go through the CLI must never
write there, so every test in this package gets a throwaway cache root.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("repro-cache")))
