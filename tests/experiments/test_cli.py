"""Tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "Lemma 3.1" in out

    def test_run_single_experiment(self, tmp_path, capsys):
        assert main(["run", "T2", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[T2] done" in out
        assert (tmp_path / "T2" / "report.md").exists()
        assert (tmp_path / "T2" / "max_protocol.csv").exists()

    def test_unknown_id_fails(self, tmp_path, capsys):
        assert main(["run", "T99", "--outdir", str(tmp_path)]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_seed_flag_respected(self, tmp_path):
        main(["run", "T2", "--outdir", str(tmp_path / "a"), "--seed", "5"])
        main(["run", "T2", "--outdir", str(tmp_path / "b"), "--seed", "5"])
        a = (tmp_path / "a" / "T2" / "max_protocol.csv").read_text()
        b = (tmp_path / "b" / "T2" / "max_protocol.csv").read_text()
        assert a == b

    def test_only_slug_quick(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["--only", "max", "--quick", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[T2] done" in out and "[T1]" not in out
        assert (tmp_path / "T2" / "report.md").exists()

    def test_jobs_flag_output_identical_to_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        main(["run", "T9", "--outdir", str(tmp_path / "a"), "--no-cache"])
        main(["run", "T9", "--outdir", str(tmp_path / "b"), "--no-cache", "--jobs", "4"])
        a = (tmp_path / "a" / "T9" / "dispatch.csv").read_text()
        b = (tmp_path / "b" / "T9" / "dispatch.csv").read_text()
        assert a == b

    def test_full_and_quick_conflict(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--full", "--quick", "--outdir", str(tmp_path)])

    def test_workloads_command_prints_catalog(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for slug in ("cluster", "sensor", "zipf", "markov", "drift", "churn", "replay"):
            assert slug in out
        assert "alpha" in out and "(required)" in out  # schemas are shown

    def test_workload_override_runs_the_zoo(self, tmp_path, capsys):
        assert main([
            "--workload", "zipf", "--workload-param", "alpha=1.2",
            "--outdir", str(tmp_path), "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "[T8] done" in out and "[T1]" not in out  # narrows to T8
        report = (tmp_path / "T8" / "report.md").read_text()
        assert "zipf load" in report

    def test_unknown_workload_fails(self, tmp_path, capsys):
        assert main(["--workload", "nope", "--outdir", str(tmp_path)]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bad_workload_param_fails(self, tmp_path, capsys):
        assert main([
            "--workload", "zipf", "--workload-param", "alpah=1.2",
            "--outdir", str(tmp_path),
        ]) == 2
        assert "no param" in capsys.readouterr().err

    def test_out_of_range_workload_param_is_a_clean_error(self, tmp_path, capsys):
        assert main([
            "--workload", "zipf", "--workload-param", "churn=1.5",
            "--outdir", str(tmp_path), "--no-cache",
        ]) == 2
        assert "churn must be a probability" in capsys.readouterr().err

    def test_workload_param_requires_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--workload-param", "alpha=1.2", "--outdir", str(tmp_path)])

    def test_workload_rejected_for_incapable_experiments(self, tmp_path, capsys):
        assert main([
            "run", "T2", "--workload", "zipf", "--outdir", str(tmp_path),
        ]) == 2
        assert "workload-parameterized" in capsys.readouterr().err

    def test_cache_skips_recomputation(self, tmp_path, capsys):
        argv = ["run", "T9", "--outdir", str(tmp_path),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = {p: p.stat().st_mtime_ns for p in (tmp_path / "cache").rglob("*.json")}
        assert cold, "CLI default must populate the cell cache"
        assert main(argv) == 0
        warm = {p: p.stat().st_mtime_ns for p in (tmp_path / "cache").rglob("*.json")}
        # A recomputation would rewrite entries (new mtime) or add files.
        assert warm == cold, "warm run must serve every cell from the cache"


class TestServiceSubcommands:
    """The serve/loadgen front door (the in-depth coverage lives in
    tests/service/; here: dispatch, argument surface, end-to-end spawn)."""

    def test_serve_help_reaches_service_parser(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--help"])
        assert exit_info.value.code == 0
        assert "JSON-lines" in capsys.readouterr().out

    def test_loadgen_help_reaches_service_parser(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["loadgen", "--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert "--sessions" in out and "--spawn" in out

    def test_loadgen_bad_workload_param(self, capsys):
        assert main(["loadgen", "--workload", "zipf",
                     "--workload-param", "alpah=1.2"]) == 2
        assert "no param" in capsys.readouterr().err

    def test_loadgen_spawn_end_to_end(self, capsys):
        """Smoke: spawn a real server subprocess, drive 2 tiny sessions,
        require a clean shutdown and a JSON report."""
        import json

        assert main([
            "loadgen", "--spawn", "--workload", "iid",
            "--sessions", "2", "--concurrency", "2", "--steps", "120",
            "--n", "8", "--k", "2", "--block-size", "40", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total_steps"] == 240
        assert report["clean_shutdown"] is True
