"""Tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "Lemma 3.1" in out

    def test_run_single_experiment(self, tmp_path, capsys):
        assert main(["run", "T2", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[T2] done" in out
        assert (tmp_path / "T2" / "report.md").exists()
        assert (tmp_path / "T2" / "max_protocol.csv").exists()

    def test_unknown_id_fails(self, tmp_path, capsys):
        assert main(["run", "T99", "--outdir", str(tmp_path)]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_seed_flag_respected(self, tmp_path):
        main(["run", "T2", "--outdir", str(tmp_path / "a"), "--seed", "5"])
        main(["run", "T2", "--outdir", str(tmp_path / "b"), "--seed", "5"])
        a = (tmp_path / "a" / "T2" / "max_protocol.csv").read_text()
        b = (tmp_path / "b" / "T2" / "max_protocol.csv").read_text()
        assert a == b
