"""Tests for the experiment registry and result infrastructure."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import ExperimentResult
from repro.util.tables import Table


EXPECTED_IDS = {"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T12", "T13"}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_specs_are_complete(self):
        for spec in EXPERIMENTS.values():
            assert spec.title
            assert spec.validates
            assert callable(spec.run)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("T99")

    def test_workload_override_rejected_for_incapable_experiments(self):
        with pytest.raises(ValueError, match="workload override"):
            run_experiment("T2", workload="zipf")

    def test_workload_override_reaches_the_sweep(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        result = run_experiment("T8", workload="levels", workload_params={"levels": 4})
        table = result.tables["totals"]
        assert "levels load" in table.title

    def test_params_without_workload_keep_the_curated_defaults(self):
        """Tweaking one param of the default T8 scenario must not silently
        drop the curated smooth-noise regime (user values win, rest stay)."""
        from repro.experiments.exp_timeline import DEFAULT_WORKLOAD_PARAMS

        tweaked = run_experiment("T8", workload_params={"burst_prob": 0.0})
        explicit = run_experiment(
            "T8",
            workload="cluster",
            workload_params={**DEFAULT_WORKLOAD_PARAMS, "burst_prob": 0.0},
        )
        assert tweaked.tables["totals"].to_csv() == explicit.tables["totals"].to_csv()


class TestExperimentResult:
    def test_duplicate_table_rejected(self):
        res = ExperimentResult("X", "x")
        res.add_table("t", Table(["a"]))
        with pytest.raises(ValueError, match="duplicate"):
            res.add_table("t", Table(["a"]))

    def test_markdown_contains_everything(self):
        res = ExperimentResult("X", "demo title")
        t = Table(["a"], title="tab")
        t.add(1)
        res.add_table("t", t)
        res.add_figure("f", "ASCII ART")
        res.note("a finding")
        md = res.to_markdown()
        assert "demo title" in md and "tab" in md
        assert "ASCII ART" in md and "a finding" in md

    def test_write_creates_files(self, tmp_path):
        res = ExperimentResult("X", "demo")
        t = Table(["a"])
        t.add(1)
        res.add_table("t", t)
        res.add_figure("f", "art")
        outdir = res.write(tmp_path)
        assert (outdir / "report.md").exists()
        assert (outdir / "t.csv").read_text().startswith("a\n")
        assert (outdir / "f.txt").read_text() == "art"
