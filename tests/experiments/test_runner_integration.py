"""Experiment-level determinism: the ISSUE's acceptance law.

Running a real experiment through the sweep runner with ``jobs=1``,
``jobs=4``, or a warm cache must yield byte-identical tables (CSV text
compared, not just row equality).
"""


from repro.experiments import run_experiment
from repro.runner import RunnerConfig

#: A fast experiment with several cells (T9: one engine run per gap).
EXP = "T9"


def _csvs(result):
    return {name: table.to_csv() for name, table in result.tables.items()}


class TestExperimentDeterminism:
    def test_serial_and_parallel_tables_identical(self):
        serial = run_experiment(EXP, quick=True, seed=2, runner=RunnerConfig(jobs=1))
        parallel = run_experiment(EXP, quick=True, seed=2, runner=RunnerConfig(jobs=4))
        assert _csvs(serial) == _csvs(parallel)
        assert serial.notes == parallel.notes

    def test_default_runner_matches_explicit_serial(self):
        default = run_experiment(EXP, quick=True, seed=2)
        serial = run_experiment(EXP, quick=True, seed=2, runner=RunnerConfig(jobs=1))
        assert _csvs(default) == _csvs(serial)

    def test_warm_cache_reproduces_cold_run(self, tmp_path):
        config = RunnerConfig(jobs=1, cache=True, cache_dir=tmp_path / "cache")
        cold = run_experiment(EXP, quick=True, seed=2, runner=config)
        assert any((tmp_path / "cache").rglob("*.json")), "cold run must populate the cache"
        warm = run_experiment(EXP, quick=True, seed=2, runner=config)
        assert _csvs(cold) == _csvs(warm)

    def test_cache_does_not_leak_across_seeds(self, tmp_path):
        config = RunnerConfig(jobs=1, cache=True, cache_dir=tmp_path / "cache")
        a = run_experiment(EXP, quick=True, seed=2, runner=config)
        b = run_experiment(EXP, quick=True, seed=3, runner=config)
        assert _csvs(a) != _csvs(b)
