"""Smoke tests: every experiment runs in quick mode and yields its tables.

The benchmark harness asserts the *claims*; these only assert structure,
so a broken sweep fails fast in the unit suite with a clear message.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment

#: Tables each experiment must produce (DESIGN.md §3's deliverables).
REQUIRED_TABLES = {
    "T1": {"messages"},
    "T2": {"max_protocol", "top_m_probe"},
    "T3": {"exact_sweep", "chaser_sweep"},
    "T4": {"delta_sweep", "eps_sweep"},
    "T5": {"lower_bound"},
    "T6": {"sigma_sweep", "eps_sweep"},
    "T7": {"halfeps_sweep"},
    "T8": {"totals"},
    "T9": {"dispatch"},
    "T10": {"pivot_ablation", "existence_ablation"},
    "T12": {"opt_phases", "ratio_grid"},
    "T13": {"broadcast_pricing", "existence_base"},
}


@pytest.fixture(scope="module")
def results():
    return {exp_id: run_experiment(exp_id, quick=True, seed=1) for exp_id in EXPERIMENTS}


@pytest.mark.parametrize("exp_id", sorted(REQUIRED_TABLES))
def test_experiment_produces_required_tables(exp_id, results):
    result = results[exp_id]
    assert result.exp_id == exp_id
    missing = REQUIRED_TABLES[exp_id] - set(result.tables)
    assert not missing, f"{exp_id} missing tables {missing}"
    for name, table in result.tables.items():
        assert len(table) > 0, f"{exp_id}/{name} is empty"


@pytest.mark.parametrize("exp_id", sorted(REQUIRED_TABLES))
def test_experiment_has_notes_and_renders(exp_id, results):
    result = results[exp_id]
    assert result.notes, f"{exp_id} reports no findings"
    md = result.to_markdown()
    assert exp_id in md


def test_quick_runs_are_deterministic():
    a = run_experiment("T2", quick=True, seed=3)
    b = run_experiment("T2", quick=True, seed=3)
    assert a.tables["max_protocol"].rows == b.tables["max_protocol"].rows
