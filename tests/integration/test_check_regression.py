"""The benchmark regression gate (benchmarks/check_regression.py).

The gate script lives outside the package (it is a CI helper, not
library code), so it is loaded by path here.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


class TestCollectMetrics:
    def test_flattens_only_throughput_leaves(self):
        report = {
            "mode": "ci",
            "single": {"steps_per_s": 100, "seconds": 2.5, "messages": 42},
            "scaling": {"1": {"steps_per_s": 90}, "4": {"steps_per_s": 80}},
        }
        assert check_regression.collect_metrics(report) == {
            "single.steps_per_s": 100.0,
            "scaling.1.steps_per_s": 90.0,
            "scaling.4.steps_per_s": 80.0,
        }

    def test_walks_lists_and_skips_non_numeric(self):
        report = {"runs": [{"steps_per_s": 10}, {"steps_per_s": "n/a"}]}
        assert check_regression.collect_metrics(report) == {
            "runs[0].steps_per_s": 10.0
        }

    def test_stamps_node_count_into_the_key(self):
        report = {
            "generation": {
                "iid": {"T": 100, "n": 64, "steps_per_s": 50},
                "zipf": {"steps_per_s": 40},
            }
        }
        assert check_regression.collect_metrics(report) == {
            "generation.iid.steps_per_s(n=64)": 50.0,
            "generation.zipf.steps_per_s": 40.0,
        }

    def test_different_node_counts_never_pair_up(self):
        """A cell measured at another n must not compare (per-step rates
        scale with n for vectorized workloads)."""
        base = check_regression.collect_metrics({"x": {"n": 64, "steps_per_s": 100}})
        fresh = check_regression.collect_metrics({"x": {"n": 32, "steps_per_s": 100}})
        rows, failures = check_regression.compare(base, fresh, min_ratio=0.7)
        assert rows == []
        assert failures == []


class TestCompare:
    def test_only_shared_paths_count(self):
        rows, failures = check_regression.compare(
            {"a.steps_per_s": 100.0, "full_only.steps_per_s": 5.0},
            {"a.steps_per_s": 95.0, "ci_only.steps_per_s": 1.0},
            min_ratio=0.7,
        )
        assert [row[0] for row in rows] == ["a.steps_per_s"]
        assert failures == []

    def test_detects_a_drop_beyond_tolerance(self):
        rows, failures = check_regression.compare(
            {"a.steps_per_s": 100.0, "b.steps_per_s": 100.0},
            {"a.steps_per_s": 69.0, "b.steps_per_s": 71.0},
            min_ratio=0.7,
        )
        assert failures == ["a.steps_per_s"]
        assert len(rows) == 2


class TestMain:
    def run(self, tmp_path, baseline, fresh, *extra):
        base = tmp_path / "base.json"
        new = tmp_path / "new.json"
        base.write_text(json.dumps(baseline))
        new.write_text(json.dumps(fresh))
        return check_regression.main(
            ["--baseline", str(base), "--fresh", str(new), *extra]
        )

    def test_passes_within_tolerance(self, tmp_path, capsys):
        ok = {"x": {"steps_per_s": 100}}
        assert self.run(tmp_path, ok, {"x": {"steps_per_s": 80}}) == 0
        assert "1 shared metrics" in capsys.readouterr().out

    def test_fails_on_regression(self, tmp_path, capsys):
        base = {"x": {"steps_per_s": 100}}
        assert self.run(tmp_path, base, {"x": {"steps_per_s": 50}}) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_min_ratio_is_configurable(self, tmp_path):
        base = {"x": {"steps_per_s": 100}}
        fresh = {"x": {"steps_per_s": 50}}
        assert self.run(tmp_path, base, fresh, "--min-ratio", "0.4") == 0

    def test_zero_overlap_is_an_error(self, tmp_path, capsys):
        code = self.run(tmp_path, {"a": {"steps_per_s": 1}}, {"b": {"steps_per_s": 1}})
        assert code == 1
        assert "no overlapping" in capsys.readouterr().err

    def test_unreadable_input_is_exit_2(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text("{not json")
        code = check_regression.main(["--baseline", str(base), "--fresh", str(base)])
        assert code == 2

    def test_real_baselines_pass_against_themselves(self):
        repo = _SCRIPT.parents[1]
        for name in ("BENCH_streams.json", "BENCH_service.json"):
            path = repo / name
            code = check_regression.main(
                ["--baseline", str(path), "--fresh", str(path)]
            )
            assert code == 0, name


class TestMetricsOverheadGate:
    """The absolute ceiling on metrics_overhead.overhead_x."""

    BASE = {"x": {"steps_per_s": 100}, "metrics_overhead": {"overhead_x": 1.01}}

    def run(self, tmp_path, baseline, fresh, *extra):
        return TestMain.run(self, tmp_path, baseline, fresh, *extra)

    def test_under_the_ceiling_passes(self, tmp_path, capsys):
        fresh = {"x": {"steps_per_s": 100}, "metrics_overhead": {"overhead_x": 1.015}}
        assert self.run(tmp_path, self.BASE, fresh) == 0
        assert "metrics_overhead.overhead_x" in capsys.readouterr().out

    def test_over_the_ceiling_fails(self, tmp_path, capsys):
        fresh = {"x": {"steps_per_s": 100}, "metrics_overhead": {"overhead_x": 1.05}}
        assert self.run(tmp_path, self.BASE, fresh) == 1
        assert "exceeds" in capsys.readouterr().err

    def test_ceiling_is_configurable(self, tmp_path):
        fresh = {"x": {"steps_per_s": 100}, "metrics_overhead": {"overhead_x": 1.05}}
        code = self.run(tmp_path, self.BASE, fresh, "--max-metrics-overhead", "1.1")
        assert code == 0

    def test_fresh_report_may_not_drop_a_pinned_cell(self, tmp_path, capsys):
        assert self.run(tmp_path, self.BASE, {"x": {"steps_per_s": 100}}) == 1
        assert "silently drop" in capsys.readouterr().err

    def test_pre_ops_plane_baselines_skip_the_gate(self, tmp_path):
        base = {"x": {"steps_per_s": 100}}
        assert self.run(tmp_path, base, {"x": {"steps_per_s": 100}}) == 0


class TestDurabilityOverheadGate:
    """The absolute ceiling on durability_overhead.overhead_x."""

    BASE = {"x": {"steps_per_s": 100}, "durability_overhead": {"overhead_x": 1.1}}

    def run(self, tmp_path, baseline, fresh, *extra):
        return TestMain.run(self, tmp_path, baseline, fresh, *extra)

    def test_under_the_ceiling_passes(self, tmp_path, capsys):
        fresh = {"x": {"steps_per_s": 100}, "durability_overhead": {"overhead_x": 1.2}}
        assert self.run(tmp_path, self.BASE, fresh) == 0
        assert "durability_overhead.overhead_x" in capsys.readouterr().out

    def test_over_the_ceiling_fails(self, tmp_path, capsys):
        fresh = {"x": {"steps_per_s": 100}, "durability_overhead": {"overhead_x": 1.4}}
        assert self.run(tmp_path, self.BASE, fresh) == 1
        assert "exceeds" in capsys.readouterr().err

    def test_ceiling_is_configurable(self, tmp_path):
        fresh = {"x": {"steps_per_s": 100}, "durability_overhead": {"overhead_x": 1.4}}
        code = self.run(
            tmp_path, self.BASE, fresh, "--max-durability-overhead", "1.5"
        )
        assert code == 0

    def test_fresh_report_may_not_drop_a_pinned_cell(self, tmp_path, capsys):
        assert self.run(tmp_path, self.BASE, {"x": {"steps_per_s": 100}}) == 1
        assert "silently drop" in capsys.readouterr().err

    def test_both_gates_report_together(self, tmp_path, capsys):
        base = dict(self.BASE, metrics_overhead={"overhead_x": 1.0})
        fresh = {
            "x": {"steps_per_s": 100},
            "metrics_overhead": {"overhead_x": 1.5},
            "durability_overhead": {"overhead_x": 1.5},
        }
        assert self.run(tmp_path, base, fresh) == 1
        err = capsys.readouterr().err
        assert "telemetry" in err and "durability" in err

    def test_pre_durability_baselines_skip_the_gate(self, tmp_path):
        base = {"x": {"steps_per_s": 100}}
        assert self.run(tmp_path, base, {"x": {"steps_per_s": 100}}) == 0


@pytest.mark.parametrize("key", sorted(check_regression.THROUGHPUT_KEYS))
def test_throughput_keys_appear_in_committed_baselines(key):
    """Every gated key exists somewhere in a committed baseline, so the
    allowlist cannot silently rot as benchmark schemas evolve."""
    repo = _SCRIPT.parents[1]
    streams = (repo / "BENCH_streams.json").read_text()
    service = (repo / "BENCH_service.json").read_text()
    assert f'"{key}"' in streams + service
