"""Integration: every algorithm × every workload, laws enforced per step."""

import numpy as np
import pytest

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.exact_monitor import ExactTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.core.naive import SendAlwaysMonitor, SendOnChangeMonitor
from repro.core.topk_protocol import TopKMonitor
from repro.model.engine import MonitoringEngine
from repro.streams.adversarial import oscillation_trace
from repro.streams.synthetic import iid_uniform, random_walk, sine_drift, step_levels
from repro.streams.transforms import make_distinct
from repro.streams.workloads import cluster_load, sensor_field

K = 3
N = 12
T = 120
EPS = 0.15


def workloads():
    return {
        "walk": make_distinct(random_walk(T, N, high=4096, step=64, rng=10)),
        "iid": make_distinct(iid_uniform(T, N, high=4096, rng=11)),
        "sine": make_distinct(sine_drift(T, N, rng=12)),
        "levels": make_distinct(step_levels(T, N, rng=13)),
        "cluster": make_distinct(cluster_load(T, N, rng=14)),
        "sensor": sensor_field(T, N, K, eps=EPS, band=7, rng=15),
        "oscillation": oscillation_trace(T, N, K, rng=16),
    }


ALGORITHMS = {
    "exact-cor3.3": (lambda: ExactTopKMonitor(K), 0.0),
    "exact-ipdps15": (lambda: ExactTopKMonitor(K, use_existence=False), 0.0),
    "topk-protocol": (lambda: TopKMonitor(K, EPS), EPS),
    "approx-monitor": (lambda: ApproxTopKMonitor(K, EPS), EPS),
    "halfeps-monitor": (lambda: HalfEpsMonitor(K, EPS), EPS),
    "send-always": (lambda: SendAlwaysMonitor(K), 0.0),
    "send-on-change": (lambda: SendOnChangeMonitor(K), 0.0),
}


@pytest.mark.parametrize("workload", sorted(workloads()))
@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
def test_all_pairs_stay_valid(algo_name, workload):
    """The model's three laws hold at every time step for every pair."""
    factory, eps = ALGORITHMS[algo_name]
    trace = workloads()[workload]
    engine = MonitoringEngine(trace, factory(), k=K, eps=eps, seed=1, check=True)
    result = engine.run()
    assert result.num_steps == T
    assert len(result.ledger.per_step) == T


def test_rounds_stay_polylog():
    """The model allows polylog rounds between steps; audit the worst case."""
    trace = make_distinct(cluster_load(200, 32, rng=17))
    for factory, eps in (ALGORITHMS["exact-cor3.3"], ALGORITHMS["approx-monitor"]):
        engine = MonitoringEngine(trace, factory(), k=K, eps=eps, seed=1)
        result = engine.run()
        # Generous polylog budget: c * log^3(n * Delta).
        budget = 30 * np.log2(32 * trace.delta) ** 2
        assert result.ledger.max_rounds_per_step < budget


def test_deterministic_given_seed():
    trace = make_distinct(random_walk(100, 10, high=2048, step=64, rng=3))
    runs = [
        MonitoringEngine(trace, ApproxTopKMonitor(K, EPS), k=K, eps=EPS, seed=5).run().messages
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_different_seeds_vary_only_in_randomized_cost():
    trace = make_distinct(random_walk(100, 10, high=2048, step=64, rng=3))
    msgs = {
        MonitoringEngine(trace, ApproxTopKMonitor(K, EPS), k=K, eps=EPS, seed=s).run().messages
        for s in range(4)
    }
    # Costs differ across seeds (Las Vegas) but within a sane band.
    assert max(msgs) < 3 * min(msgs)
