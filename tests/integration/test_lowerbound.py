"""Integration: the Theorem 5.1 lower bound bites every filter-based monitor."""

import pytest

from repro.core.approx_monitor import ApproxTopKMonitor
from repro.core.halfeps import HalfEpsMonitor
from repro.model.engine import MonitoringEngine
from repro.offline.opt import offline_opt
from repro.streams.adversarial import LowerBoundAdversary

N, K, SIGMA, EPS = 24, 3, 16, 0.2


@pytest.mark.parametrize(
    "factory",
    [lambda: ApproxTopKMonitor(K, EPS), lambda: HalfEpsMonitor(K, EPS)],
    ids=["approx", "halfeps"],
)
def test_online_pays_sigma_minus_k_per_epoch(factory):
    adv = LowerBoundAdversary(N, K, SIGMA, eps=EPS, epochs=3, rng=1)
    engine = MonitoringEngine(adv, factory(), k=K, eps=EPS, seed=0, check=True)
    result = engine.run()
    # Every forced drop violated a filter => at least one message each.
    assert adv.forced_drops >= 3 * (SIGMA - K) - SIGMA  # allow slack on epoch 1
    assert result.messages >= adv.forced_drops


def test_ratio_grows_with_sigma():
    """The measured ratio versus the explicit offline player is Ω(σ/k)."""
    ratios = []
    for sigma in (8, 16, 24):
        adv = LowerBoundAdversary(32, K, sigma, eps=EPS, epochs=3, rng=2)
        engine = MonitoringEngine(adv, ApproxTopKMonitor(K, EPS), k=K, eps=EPS, seed=0)
        result = engine.run()
        ratios.append(result.messages / adv.offline_reference_cost())
    assert ratios[0] < ratios[-1]
    # And each ratio is at least the theoretical floor (σ-k)/(k+1).
    for sigma, ratio in zip((8, 16, 24), ratios):
        assert ratio >= (sigma - K) / (K + 1) * 0.9


def test_offline_opt_on_played_trace_is_cheap():
    """The adversary's instance really is easy for an offline player."""
    adv = LowerBoundAdversary(N, K, SIGMA, eps=EPS, epochs=4, rng=3)
    engine = MonitoringEngine(adv, ApproxTopKMonitor(K, EPS), k=K, eps=EPS, seed=0)
    engine.run()
    opt = offline_opt(adv.trace, K, EPS)
    # One window per epoch (plus slack for the boundary steps).
    assert opt.phases <= 2 * adv.epochs + 1
