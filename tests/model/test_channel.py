"""Unit tests for :mod:`repro.model.channel` — cost-metered primitives.

The message-accounting contracts tested here are what every competitive
measurement in the experiment suite rests on.
"""

import numpy as np

from repro.model.channel import Channel
from repro.model.ledger import CostLedger
from repro.model.node import NodeArray, VIOLATION_ABOVE, VIOLATION_BELOW
from repro.util.intervals import Interval


def make_channel(values, seed=0):
    nodes = NodeArray(len(values))
    nodes.deliver(np.asarray(values, dtype=float))
    ledger = CostLedger()
    return Channel(nodes, ledger, seed), nodes, ledger


class TestDownstream:
    def test_announce_costs_one_broadcast(self):
        ch, _, led = make_channel([1, 2, 3])
        ch.announce()
        assert led.broadcasts == 1 and led.messages == 1

    def test_broadcast_filters_single_cost(self):
        ch, nodes, led = make_channel([1, 2, 3, 4])
        ch.broadcast_filters(
            [
                (np.array([0, 1]), Interval.at_most(10.0)),
                (np.array([2, 3]), Interval.at_least(5.0)),
            ]
        )
        assert led.messages == 1
        assert nodes.get_filter(0) == Interval.at_most(10.0)
        assert nodes.get_filter(3) == Interval.at_least(5.0)

    def test_broadcast_filters_accepts_boolean_mask(self):
        ch, nodes, _ = make_channel([1, 2, 3])
        ch.broadcast_filters([(np.array([True, False, True]), Interval(0, 9))])
        assert nodes.get_filter(0) == Interval(0, 9)
        assert nodes.get_filter(1).hi == np.inf

    def test_later_groups_override(self):
        ch, nodes, _ = make_channel([1, 2])
        ch.broadcast_filters(
            [
                (np.array([0, 1]), Interval(0, 5)),
                (np.array([1]), Interval(0, 7)),
            ]
        )
        assert nodes.get_filter(1) == Interval(0, 7)

    def test_unicast_filter(self):
        ch, nodes, led = make_channel([1, 2])
        ch.unicast_filter(1, Interval(0, 3))
        assert led.server_to_node == 1 and led.messages == 1
        assert nodes.get_filter(1) == Interval(0, 3)

    def test_request_value_costs_two(self):
        ch, _, led = make_channel([7, 8])
        assert ch.request_value(1) == 8.0
        assert led.messages == 2

    def test_notify_costs_one(self):
        ch, _, led = make_channel([1, 2])
        ch.notify(0)
        assert led.server_to_node == 1


class TestExistence:
    def test_silence_costs_nothing(self):
        ch, _, led = make_channel([1, 2, 3, 4])
        assert not ch.existence_any(np.zeros(4, dtype=bool))
        assert led.messages == 0
        assert led.rounds > 0  # rounds happened, but rounds are free

    def test_fires_when_active(self):
        ch, _, led = make_channel([1, 2, 3, 4])
        assert ch.existence_any(np.array([False, True, False, False]))
        assert led.node_to_server >= 1

    def test_las_vegas_always_correct(self):
        """Over many trials, never a false negative/positive."""
        for seed in range(50):
            ch, _, _ = make_channel([1] * 8, seed=seed)
            assert ch.existence_any(np.array([False] * 7 + [True]))
            assert not ch.existence_any(np.zeros(8, dtype=bool))

    def test_expected_messages_bounded(self):
        """Lemma 3.1: E[messages] <= 6 regardless of n and b."""
        rng = np.random.default_rng(123)
        for n, b in [(64, 1), (64, 32), (64, 64), (512, 1), (512, 511)]:
            total = 0
            trials = 300
            for _ in range(trials):
                nodes = NodeArray(n)
                nodes.deliver(np.zeros(n))
                led = CostLedger()
                ch = Channel(nodes, led, rng)
                mask = np.zeros(n, dtype=bool)
                mask[:b] = True
                ch.existence_any(mask)
                total += led.messages
            mean = total / trials
            assert mean <= 7.0, f"n={n}, b={b}: mean {mean} exceeds Lemma 3.1 bound"

    def test_rounds_bounded_by_log_n(self):
        ch, _, led = make_channel([0] * 256, seed=1)
        ch.existence_any(np.ones(256, dtype=bool))
        assert led.rounds <= 9  # ceil(log2 256) + 1

    def test_existence_violations_reports_kind(self):
        ch, nodes, _ = make_channel([10.0, 50.0])
        nodes.set_filter(0, Interval.at_least(20.0))  # v=10 -> from above
        nodes.set_filter(1, Interval(0, 40.0))  # v=50 -> from below
        seen_kinds = set()
        for seed in range(30):
            ch2 = Channel(nodes, CostLedger(), seed)
            for rep in ch2.existence_violations():
                seen_kinds.add(rep.kind)
                if rep.node == 0:
                    assert rep.kind == VIOLATION_ABOVE and rep.value == 10.0
                else:
                    assert rep.kind == VIOLATION_BELOW and rep.value == 50.0
        assert seen_kinds == {VIOLATION_ABOVE, VIOLATION_BELOW}

    def test_existence_above_with_exclusion(self):
        ch, _, _ = make_channel([5.0, 10.0, 20.0])
        ids, values = ch.existence_above(1.0, exclude=np.array([1, 2]))
        assert set(ids.tolist()) <= {0}
        assert all(v == 5.0 for v in values)


class TestCollect:
    def test_collect_above_cost_and_content(self):
        ch, _, led = make_channel([1.0, 5.0, 9.0, 13.0])
        ids, values = ch.collect_above(5.0)
        assert ids.tolist() == [2, 3]
        assert values.tolist() == [9.0, 13.0]
        assert led.broadcasts == 1 and led.node_to_server == 2

    def test_collect_above_nonstrict(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0])
        ids, _ = ch.collect_above(5.0, strict=False)
        assert ids.tolist() == [1, 2]

    def test_collect_below(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0])
        ids, _ = ch.collect_below(5.0)
        assert ids.tolist() == [0]

    def test_collect_between_inclusive(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0, 13.0])
        ids, _ = ch.collect_between(5.0, 9.0)
        assert ids.tolist() == [1, 2]

    def test_count_helpers(self):
        ch, _, _ = make_channel([1.0, 5.0, 9.0])
        assert ch.count_above(4.0) == 2
        assert ch.count_below(6.0) == 2

    def test_empty_collect_still_costs_query(self):
        ch, _, led = make_channel([1.0, 2.0])
        ids, _ = ch.collect_above(100.0)
        assert ids.size == 0 and led.broadcasts == 1 and led.node_to_server == 0


class TestBisectionSupport:
    def test_range_has_violator(self):
        ch, nodes, led = make_channel([10.0, 20.0, 30.0])
        nodes.set_filter(2, Interval(0.0, 25.0))  # node 2 violates
        assert not ch.range_has_violator(0, 1)
        assert ch.range_has_violator(2, 2)
        # Costs: 2 broadcasts + 1 hit reply.
        assert led.broadcasts == 2 and led.node_to_server == 1

    def test_violation_report(self):
        ch, nodes, led = make_channel([10.0, 20.0])
        nodes.set_filter(1, Interval(0.0, 15.0))
        rep = ch.violation_report(1)
        assert rep is not None and rep.from_below and rep.value == 20.0
        assert ch.violation_report(0) is None
        assert led.messages == 4  # two round trips


class TestFreeze:
    def test_broadcast_freeze(self):
        ch, nodes, led = make_channel([3.0, 4.0])
        ch.broadcast_freeze()
        assert led.broadcasts == 1
        assert nodes.get_filter(0) == Interval.point(3.0)

    def test_self_freeze_is_free(self):
        ch, nodes, led = make_channel([3.0, 4.0])
        ch.self_freeze(1)
        assert led.messages == 0
        assert nodes.get_filter(1) == Interval.point(4.0)
